//! Incrementally maintained analysis state for admission-control workloads.
//!
//! An [`AnalysisContext`] is the right tool
//! when the flow set is fixed: build once, analyse many times. Admission
//! control inverts that pattern — the flow set itself changes (a flow asks
//! to join, a flow retires) and after every change the *whole* system must
//! be re-certified. Rebuilding the interference graph and re-solving every
//! flow per change wastes nearly all of that work: a single flow only
//! touches the interference neighbourhood its route overlaps.
//!
//! [`IncrementalContext`] keeps the derived structure **and** the last
//! solve's results alive across mutations:
//!
//! * [`IncrementalContext::add_flow`] / [`IncrementalContext::remove_flow`]
//!   update the owned [`InterferenceGraph`] through its delta methods
//!   ([`InterferenceGraph::add_flow`] / [`InterferenceGraph::remove_flow`]),
//!   which recompute only the affected neighbourhood and report exactly
//!   which flows' interference sets changed;
//! * those flows are marked dirty in a per-analysis solve cache; the next
//!   [`IncrementalContext::analyze`] propagates dirtiness down the priority
//!   order (a flow is re-solved iff a member of `S^D ∪ S^I` — all strictly
//!   higher priority — is dirty) and reuses the cached response time of
//!   every clean flow.
//!
//! The result is bit-identical to a from-scratch
//! [`AnalysisContext::new`] + solve —
//! pinned by the `incremental_equivalence` integration test — at a small
//! fraction of the cost when changes are local.
//!
//! ```
//! use noc_model::prelude::*;
//! use noc_analysis::prelude::*;
//!
//! # let topology = Topology::mesh(3, 1);
//! # let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(2))
//! #     .priority(Priority::new(1)).period(Cycles::new(1_000)).length_flits(16).build()])?;
//! # let system = System::new(topology, NocConfig::default(), flows, &XyRouting)?;
//! let mut ctx = IncrementalContext::new(system)?;
//! let before = ctx.analyze(AnalysisKind::BufferAware)?;
//!
//! // Admission what-if: add the candidate, re-analyse, roll back.
//! let candidate = Flow::builder(NodeId::new(1), NodeId::new(2))
//!     .priority(Priority::new(2))
//!     .period(Cycles::new(2_000))
//!     .length_flits(8)
//!     .build();
//! let id = ctx.add_flow(candidate, &XyRouting)?;
//! let admitted = ctx.analyze(AnalysisKind::BufferAware)?.is_schedulable();
//! ctx.remove_flow(id)?;
//! assert_eq!(ctx.analyze(AnalysisKind::BufferAware)?, before);
//! # assert!(admitted);
//! # Ok::<(), noc_analysis::error::AnalysisError>(())
//! ```

use noc_model::contention::InterferenceGraph;
use noc_model::flow::Flow;
use noc_model::ids::{FlowId, RouterId};
use noc_model::routing::RoutingAlgorithm;
use noc_model::system::System;
use noc_model::topology::Endpoint;

use crate::analysis::AnalysisKind;
use crate::budget::Budget;
use crate::context::AnalysisContext;
use crate::engine::{SolveCache, Solver};
use crate::error::AnalysisError;
use crate::metrics;
use crate::report::AnalysisReport;

/// One mutation of the flow set, for batch application via
/// [`IncrementalContext::apply`].
#[derive(Debug, Clone)]
pub enum Delta {
    /// Admit a new flow; it is routed when the delta is applied and takes
    /// the next dense [`FlowId`].
    Add(Flow),
    /// Retire the flow with this id. Every larger id shifts down by one
    /// (flow ids are dense indices).
    Remove(FlowId),
    /// Resize the per-VC input buffers of one router — the heterogeneous
    /// buffer what-if. Only the buffer-aware analysis reads buffer depths,
    /// so only its cache is invalidated, and only for the flows whose
    /// contention domains cross the resized router.
    ResizeBuffer {
        /// The router whose input-VC depth changes.
        router: RouterId,
        /// The new per-VC depth in flits (≥ 1).
        depth: u32,
    },
}

/// A [`System`] plus its derived analysis structure, maintained
/// incrementally under flow additions and removals.
///
/// Unlike [`AnalysisContext`], which borrows its system and shares an
/// immutable graph, this type **owns** both so it can mutate them in place.
/// See the [module docs](self) for the admission-control pattern it serves.
#[derive(Debug, Clone)]
pub struct IncrementalContext {
    system: System,
    graph: InterferenceGraph,
    priority_order: Vec<FlowId>,
    zero_load: Vec<u128>,
    /// One solve cache per [`AnalysisKind`], indexed by `AnalysisKind::index`.
    caches: [SolveCache; AnalysisKind::ALL.len()],
}

impl IncrementalContext {
    /// Builds the full derived structure for `system`, taking ownership.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Model`] if the system violates the
    /// contiguous contention-domain assumption.
    pub fn new(system: System) -> Result<IncrementalContext, AnalysisError> {
        let graph = InterferenceGraph::new(&system)?;
        Ok(Self::assemble(system, graph))
    }

    /// Builds an incremental context from an existing [`AnalysisContext`],
    /// cloning its system and interference graph instead of re-deriving
    /// them — the cheap way to fork per-thread mutable state off one shared
    /// base context.
    pub fn from_context(ctx: &AnalysisContext<'_>) -> IncrementalContext {
        Self::assemble(ctx.system().clone(), ctx.graph().clone())
    }

    fn assemble(system: System, graph: InterferenceGraph) -> IncrementalContext {
        let priority_order = system.flows().ids_by_priority();
        let zero_load: Vec<u128> = system
            .flows()
            .ids()
            .map(|id| u128::from(system.zero_load_latency(id).as_u64()))
            .collect();
        let n = zero_load.len();
        IncrementalContext {
            system,
            graph,
            priority_order,
            zero_load,
            caches: std::array::from_fn(|_| SolveCache::all_dirty(n)),
        }
    }

    /// Admits `flow`, routed by `routing`, and returns its new dense id.
    ///
    /// Only the interference neighbourhood the new route overlaps is
    /// recomputed, and only the flows in it are marked for re-solving.
    ///
    /// # Errors
    ///
    /// Propagates routing and validation failures from
    /// [`System::with_added_flow`] and contiguity violations from
    /// [`InterferenceGraph::add_flow`]; the context is unchanged on error.
    pub fn add_flow(
        &mut self,
        flow: Flow,
        routing: &dyn RoutingAlgorithm,
    ) -> Result<FlowId, AnalysisError> {
        let (system, id) = self.system.with_added_flow(flow, routing)?;
        let affected = self.graph.add_flow(&system, id)?;
        self.system = system;
        self.priority_order = self.system.flows().ids_by_priority();
        self.zero_load
            .push(u128::from(self.system.zero_load_latency(id).as_u64()));
        for cache in &mut self.caches {
            cache.push_flow();
            for &a in &affected {
                cache.mark_dirty(a.index());
            }
        }
        metrics::INCREMENTAL_DELTAS.incr();
        metrics::INCREMENTAL_FLOWS_DIRTIED.add(affected.len() as u64);
        Ok(id)
    }

    /// Retires the flow `id`, renumbering every larger id one down.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Model`] if `id` is out of bounds; the
    /// context is unchanged in that case.
    pub fn remove_flow(&mut self, id: FlowId) -> Result<(), AnalysisError> {
        let system = self.system.without_flow(id)?;
        let affected = self.graph.remove_flow(&system, id);
        self.system = system;
        self.priority_order = self.system.flows().ids_by_priority();
        self.zero_load.remove(id.index());
        for cache in &mut self.caches {
            cache.remove_flow(id.index());
            for &a in &affected {
                cache.mark_dirty(a.index());
            }
        }
        metrics::INCREMENTAL_DELTAS.incr();
        metrics::INCREMENTAL_FLOWS_DIRTIED.add(affected.len() as u64);
        Ok(())
    }

    /// Resizes the per-VC buffers of `router` to `depth` flits.
    ///
    /// Routes, flows, zero-load latencies and the interference graph are
    /// all unaffected by buffer depths, so the only state invalidated is
    /// the buffer-aware analysis cache — and within it only the flows that
    /// actually read the resized router's depth: a solve of τᵢ reads
    /// `buf(ξ)` exclusively through Equation 6 terms `bi(x, y)` over direct
    /// pairs (`y ∈ S^D_x`), at `x = i` directly and at deeper victims
    /// through the recursive `Idown` chain. Marking every such *victim* `x`
    /// whose `cd(x, y)` contains a link into `router` suffices: the deeper
    /// victims are members of `S^D ∪ S^I` chains above τᵢ, so
    /// `solve_cached`'s one-pass propagation down the priority order dirties
    /// every transitive reader — the same closure argument its docs make
    /// for flow additions and removals. Bit-identity to a from-scratch
    /// solve is pinned by `tests/incremental_equivalence.rs`.
    ///
    /// # Panics
    ///
    /// Panics if `router` is out of bounds or `depth` is zero (mirroring
    /// [`System::with_router_buffer_depth`]); serving layers validate
    /// queries before applying them.
    pub fn resize_buffer(&mut self, router: RouterId, depth: u32) {
        let affected = self.buffer_dependents(router);
        self.system = self.system.with_router_buffer_depth(router, depth);
        let cache = &mut self.caches[AnalysisKind::BufferAware.index()];
        for &a in &affected {
            cache.mark_dirty(a.index());
        }
        metrics::INCREMENTAL_DELTAS.incr();
        metrics::INCREMENTAL_FLOWS_DIRTIED.add(affected.len() as u64);
    }

    /// Flows whose buffer-aware bound reads the depth of `router`: the
    /// victims of direct interference pairs whose contention domain
    /// contains a link targeting it.
    fn buffer_dependents(&self, router: RouterId) -> Vec<FlowId> {
        let topology = self.system.topology();
        let mut out = Vec::new();
        for i in self.system.flows().ids() {
            let touches = self.graph.direct_set(i).iter().any(|&j| {
                self.graph.contention_domain(i, j).is_some_and(|cd| {
                    cd.links()
                        .iter()
                        .any(|&l| topology.link(l).target() == Endpoint::Router(router))
                })
            });
            if touches {
                out.push(i);
            }
        }
        out
    }

    /// Applies one [`Delta`], returning the assigned id for an addition.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IncrementalContext::add_flow`] and
    /// [`IncrementalContext::remove_flow`].
    ///
    /// # Panics
    ///
    /// [`Delta::ResizeBuffer`] panics on an unknown router or a zero depth
    /// — see [`IncrementalContext::resize_buffer`].
    pub fn apply(
        &mut self,
        delta: Delta,
        routing: &dyn RoutingAlgorithm,
    ) -> Result<Option<FlowId>, AnalysisError> {
        match delta {
            Delta::Add(flow) => self.add_flow(flow, routing).map(Some),
            Delta::Remove(id) => self.remove_flow(id).map(|()| None),
            Delta::ResizeBuffer { router, depth } => {
                self.resize_buffer(router, depth);
                Ok(None)
            }
        }
    }

    /// Runs `kind` over the current flow set, re-solving only the flows
    /// whose interference inputs changed since this kind last ran.
    ///
    /// Bit-identical to `kind` analysed from scratch over
    /// [`IncrementalContext::system`].
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::ConvergenceCap`] if a re-solved flow's
    /// fixed-point iteration exhausts the solver's safety cap; this kind's
    /// cache is then marked all-dirty, so a later call (after the offending
    /// flow is removed) recovers with a full solve.
    pub fn analyze(&mut self, kind: AnalysisKind) -> Result<AnalysisReport, AnalysisError> {
        let (downstream, jitter) = kind.models();
        let solver = Solver::from_parts(
            &self.system,
            &self.graph,
            &self.priority_order,
            &self.zero_load,
            downstream,
            jitter,
        );
        solver.solve_cached(kind.name(), &mut self.caches[kind.index()])
    }

    /// [`IncrementalContext::analyze`] under a cooperative [`Budget`]: the
    /// solver polls the budget and aborts once it is exceeded, so serving
    /// layers can bound the wall-clock cost of a single query.
    ///
    /// With an [`unlimited`](Budget::unlimited) budget this is bit-identical
    /// to [`IncrementalContext::analyze`].
    ///
    /// # Errors
    ///
    /// [`AnalysisError::DeadlineExceeded`] when the budget expires
    /// mid-solve, plus the conditions of [`IncrementalContext::analyze`].
    /// On any error this kind's cache is marked all-dirty, so a later call
    /// (with a fresh budget) recovers with a full solve — pinned by the
    /// `incremental_equivalence` integration test.
    pub fn analyze_with_budget(
        &mut self,
        kind: AnalysisKind,
        budget: &Budget,
    ) -> Result<AnalysisReport, AnalysisError> {
        let (downstream, jitter) = kind.models();
        let solver = Solver::from_parts(
            &self.system,
            &self.graph,
            &self.priority_order,
            &self.zero_load,
            downstream,
            jitter,
        )
        .with_budget(budget);
        solver.solve_cached(kind.name(), &mut self.caches[kind.index()])
    }

    /// The cheap, non-iterative conservative bound over the current flow
    /// set — the degraded-mode answer when
    /// [`IncrementalContext::analyze_with_budget`] runs out of budget (see
    /// [`crate::conservative`] for the bound and its soundness argument).
    ///
    /// Total (never fails), does not touch the solve caches, and does not
    /// depend on them: it reads only the incrementally maintained structure.
    pub fn conservative_report(&self) -> AnalysisReport {
        crate::conservative::conservative_from_parts(
            &self.system,
            &self.graph,
            &self.priority_order,
            &self.zero_load,
        )
    }

    /// The current system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// The incrementally maintained interference graph.
    pub fn graph(&self) -> &InterferenceGraph {
        &self.graph
    }

    /// Number of flows currently covered.
    pub fn len(&self) -> usize {
        self.zero_load.len()
    }

    /// `true` for an empty flow set.
    pub fn is_empty(&self) -> bool {
        self.zero_load.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::prelude::*;

    fn mesh_flow((src, dst, p, t): (u32, u32, u32, u64)) -> Flow {
        Flow::builder(NodeId::new(src), NodeId::new(dst))
            .priority(Priority::new(p))
            .period(Cycles::new(t))
            .length_flits(8)
            .build()
    }

    fn mesh_system(specs: &[(u32, u32, u32, u64)]) -> System {
        let flows = FlowSet::new(specs.iter().copied().map(mesh_flow).collect()).unwrap();
        System::new(
            Topology::mesh(4, 4),
            NocConfig::default(),
            flows,
            &XyRouting,
        )
        .unwrap()
    }

    const SPECS: [(u32, u32, u32, u64); 6] = [
        (0, 15, 1, 1000),
        (4, 7, 2, 1500),
        (12, 3, 3, 2000),
        (1, 13, 4, 2500),
        (5, 6, 5, 3000),
        (0, 10, 6, 3500),
    ];

    /// Every kind's incremental report must equal the from-scratch trait
    /// path over the same system.
    fn assert_matches_scratch(ctx: &mut IncrementalContext) {
        let sys = ctx.system().clone();
        let scratch = AnalysisContext::new(&sys).unwrap();
        for (kind, analysis) in AnalysisKind::ALL
            .iter()
            .zip(crate::analysis::all_analyses())
        {
            let expected = analysis.analyze_with(&scratch).unwrap();
            assert_eq!(ctx.analyze(*kind).unwrap(), expected, "{}", kind.name());
        }
    }

    #[test]
    fn kind_names_match_trait_names() {
        for (kind, analysis) in AnalysisKind::ALL
            .iter()
            .zip(crate::analysis::all_analyses())
        {
            assert_eq!(kind.name(), analysis.name());
        }
    }

    #[test]
    fn additions_match_from_scratch_solves() {
        let mut ctx = IncrementalContext::new(mesh_system(&SPECS[..1])).unwrap();
        for &spec in &SPECS[1..] {
            let id = ctx.add_flow(mesh_flow(spec), &XyRouting).unwrap();
            assert_eq!(id.index() + 1, ctx.len());
            assert_matches_scratch(&mut ctx);
        }
    }

    #[test]
    fn removals_match_from_scratch_solves() {
        let mut ctx = IncrementalContext::new(mesh_system(&SPECS)).unwrap();
        for victim in [2u32, 0, 2] {
            ctx.remove_flow(FlowId::new(victim)).unwrap();
            assert_matches_scratch(&mut ctx);
        }
    }

    #[test]
    fn admission_roundtrip_restores_reports() {
        let mut ctx = IncrementalContext::new(mesh_system(&SPECS[..4])).unwrap();
        let before: Vec<AnalysisReport> = AnalysisKind::ALL
            .iter()
            .map(|&k| ctx.analyze(k).unwrap())
            .collect();
        let id = ctx.add_flow(mesh_flow(SPECS[4]), &XyRouting).unwrap();
        let _ = ctx.analyze(AnalysisKind::BufferAware).unwrap();
        ctx.remove_flow(id).unwrap();
        for (&kind, report) in AnalysisKind::ALL.iter().zip(&before) {
            assert_eq!(&ctx.analyze(kind).unwrap(), report, "{}", kind.name());
        }
    }

    #[test]
    fn apply_routes_additions_and_removals() {
        let mut ctx = IncrementalContext::new(mesh_system(&SPECS[..2])).unwrap();
        let id = ctx
            .apply(Delta::Add(mesh_flow(SPECS[2])), &XyRouting)
            .unwrap();
        assert_eq!(id, Some(FlowId::new(2)));
        assert_eq!(
            ctx.apply(Delta::Remove(FlowId::new(1)), &XyRouting)
                .unwrap(),
            None
        );
        assert_eq!(ctx.len(), 2);
        assert_matches_scratch(&mut ctx);
    }

    #[test]
    fn from_context_matches_new() {
        let sys = mesh_system(&SPECS);
        let base = AnalysisContext::new(&sys).unwrap();
        let mut forked = IncrementalContext::from_context(&base);
        let mut fresh = IncrementalContext::new(sys.clone()).unwrap();
        for &kind in &AnalysisKind::ALL {
            assert_eq!(forked.analyze(kind).unwrap(), fresh.analyze(kind).unwrap());
        }
    }

    #[test]
    fn budgeted_analysis_matches_unbudgeted_and_recovers() {
        let mut ctx = IncrementalContext::new(mesh_system(&SPECS)).unwrap();
        let clean = ctx.analyze(AnalysisKind::BufferAware).unwrap();

        // An unlimited budget is bit-identical to no budget.
        let mut unbudgeted = IncrementalContext::new(mesh_system(&SPECS)).unwrap();
        assert_eq!(
            unbudgeted
                .analyze_with_budget(AnalysisKind::BufferAware, &Budget::unlimited())
                .unwrap(),
            clean
        );

        // A pre-expired budget aborts with the structured deadline error …
        let mut starved = IncrementalContext::new(mesh_system(&SPECS)).unwrap();
        let err = starved
            .analyze_with_budget(
                AnalysisKind::BufferAware,
                &Budget::with_deadline(std::time::Duration::ZERO),
            )
            .unwrap_err();
        assert!(matches!(err, AnalysisError::DeadlineExceeded { .. }));

        // … the conservative fallback still answers, bounding every clean R …
        let degraded = starved.conservative_report();
        for (id, v) in clean.iter() {
            if let Some(r) = v.response_time() {
                let b = match degraded.verdict(id) {
                    crate::report::FlowVerdict::Schedulable { response_time } => response_time,
                    crate::report::FlowVerdict::DeadlineMiss { exceeded_at } => exceeded_at,
                    other => panic!("conservative produced {other:?}"),
                };
                assert!(b >= r, "degraded bound {b} below exact {r} for {id}");
            }
        }

        // … and a later solve with a fresh (absent) budget fully recovers.
        assert_eq!(starved.analyze(AnalysisKind::BufferAware).unwrap(), clean);
    }

    #[test]
    fn buffer_resizes_match_from_scratch_solves() {
        let mut ctx = IncrementalContext::new(mesh_system(&SPECS)).unwrap();
        // Warm every cache first so a lazy dirty rule would be caught.
        assert_matches_scratch(&mut ctx);
        for (router, depth) in [(5u32, 8u32), (0, 1), (5, 2), (10, 64)] {
            ctx.resize_buffer(RouterId::new(router), depth);
            assert!(ctx.system().has_heterogeneous_buffers() || depth == 2);
            assert_matches_scratch(&mut ctx);
        }
    }

    #[test]
    fn resize_roundtrip_restores_reports() {
        let mut ctx = IncrementalContext::new(mesh_system(&SPECS)).unwrap();
        let before: Vec<AnalysisReport> = AnalysisKind::ALL
            .iter()
            .map(|&k| ctx.analyze(k).unwrap())
            .collect();
        let router = RouterId::new(7);
        let original = ctx.system().buffer_depth_at(router);
        ctx.resize_buffer(router, 32);
        let _ = ctx.analyze(AnalysisKind::BufferAware).unwrap();
        ctx.resize_buffer(router, original);
        for (&kind, report) in AnalysisKind::ALL.iter().zip(&before) {
            assert_eq!(&ctx.analyze(kind).unwrap(), report, "{}", kind.name());
        }
    }

    #[test]
    fn resize_delta_applies_through_apply() {
        let mut ctx = IncrementalContext::new(mesh_system(&SPECS[..3])).unwrap();
        let out = ctx
            .apply(
                Delta::ResizeBuffer {
                    router: RouterId::new(4),
                    depth: 16,
                },
                &XyRouting,
            )
            .unwrap();
        assert_eq!(out, None);
        assert_eq!(ctx.system().buffer_depth_at(RouterId::new(4)), 16);
        assert_matches_scratch(&mut ctx);
    }

    #[test]
    #[should_panic(expected = "buffer depth")]
    fn zero_depth_resize_panics() {
        let mut ctx = IncrementalContext::new(mesh_system(&SPECS[..2])).unwrap();
        ctx.resize_buffer(RouterId::new(0), 0);
    }

    #[test]
    fn out_of_bounds_removal_is_rejected() {
        let mut ctx = IncrementalContext::new(mesh_system(&SPECS[..2])).unwrap();
        assert!(ctx.remove_flow(FlowId::new(9)).is_err());
        assert_eq!(ctx.len(), 2);
    }
}
