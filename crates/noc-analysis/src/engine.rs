//! The shared fixed-point response-time engine.
//!
//! Every analysis in this crate instantiates the same solver with a choice
//! of **downstream-interference model** (how multi-point progressive
//! blocking is charged) and **jitter model** (what inflates the interference
//! window of a direct interferer). The response-time recurrence is the
//! paper's Equation 5 skeleton:
//!
//! ```text
//! Rᵢ = Cᵢ·(σᵢ + 1) + Σ_{τⱼ ∈ S^D_i} ηⱼ(Rᵢ + jitterⱼ) · (Cⱼ + Idown(j,i))
//! ```
//!
//! solved highest-priority-first so that every `Rⱼ` referenced by the
//! interference terms of τᵢ is already final. The hit count comes from each
//! interferer's [arrival curve](noc_model::arrival):
//! `ηⱼ(w) = ⌈(w + Jⱼ)/Tⱼ⌉ + σⱼ`, the paper's Eq. 5 window arithmetic plus
//! the burst allowance σⱼ. For strictly periodic flow sets (every σ = 0)
//! this is **bit-identical** to the paper's recurrence; for bursty flows
//! the extra σⱼ hits per interferer and the `σᵢ·Cᵢ` self-backlog charge
//! (the σᵢ same-priority predecessor packets released in the same burst,
//! each occupying the route for at most Cᵢ) make every bound *conservative*
//! rather than exact — see the crate docs for the per-axis exactness table.
//!
//! The solver does not derive anything from the [`System`] itself: the
//! interference graph, priority order and zero-load latencies all come from
//! a borrowed [`AnalysisContext`], so running all five analyses (or one
//! analysis at several buffer depths) pays for that structure exactly once.

use std::collections::HashMap;

use noc_model::arrival::{ArrivalCurve, LeakyBucket};
use noc_model::contention::InterferenceGraph;
use noc_model::ids::FlowId;
use noc_model::system::System;
use noc_model::time::Cycles;

use crate::budget::Budget;
use crate::context::AnalysisContext;
use crate::error::AnalysisError;
use crate::metrics;
use crate::report::{AnalysisReport, FlowExplanation, FlowVerdict, InterferenceTerm};

/// How downstream indirect interference (the MPB effect) is charged per hit
/// of an indirect interferer τₖ on a direct interferer τⱼ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DownstreamModel {
    /// Not charged at all — the (unsafe under MPB) SB family.
    Ignore,
    /// Charged as direct interference: per hit `Cₖ + Idown(k,j)` (Eq. 3),
    /// the XLWX model.
    Xlwx,
    /// Buffer-aware: per hit `min(bi(i,j), Cₖ + Idown(k,j))` (Eq. 8) when
    /// τⱼ suffers no upstream indirect interference, falling back to the
    /// XLWX charge otherwise — the paper's proposed IBN analysis (§IV).
    BufferAware,
}

/// What inflates the interference window `⌈(Rᵢ + Jⱼ + ⋅)/Tⱼ⌉` of a direct
/// interferer τⱼ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JitterModel {
    /// Nothing (a deliberately naive baseline).
    None,
    /// The interference jitter `J^I_j = Rⱼ − Cⱼ`, charged iff τⱼ suffers
    /// interference from a member of `S^I_i` — the SB rule, kept by the
    /// corrected XLWX (\[6\]/\[13\]) and by IBN.
    InterferenceJitter,
    /// The upstream indirect interference term `Iup(j,i)` of the original
    /// (GLSVLSI 2016) Xiong et al. analysis — Equation 4, shown optimistic
    /// by \[6\]; kept for ablation studies.
    UpstreamInterference,
}

/// Iteration safety cap; monotone integer iterations converge or blow past
/// the deadline long before this on sane inputs. Exhausting it aborts the
/// solve with [`AnalysisError::ConvergenceCap`] naming the flow (and bumps
/// [`metrics::SOLVER_CAP_HITS`]) instead of silently reporting an opaque
/// non-verdict.
const MAX_ITERATIONS: usize = 100_000;

pub(crate) struct Solver<'a> {
    system: &'a System,
    graph: &'a InterferenceGraph,
    /// Highest-priority-first solve order, borrowed from the context.
    order: &'a [FlowId],
    downstream: DownstreamModel,
    jitter: JitterModel,
    /// Zero-load latencies Cᵢ, borrowed from the context.
    c: &'a [u128],
    /// Final response times, filled highest-priority-first.
    r: Vec<Option<u128>>,
    /// Memoised `Idown(j,i)` values keyed by the (j, i) pair.
    idown_memo: HashMap<(FlowId, FlowId), u128>,
    /// Optional cooperative deadline/cancellation token, polled once per
    /// flow and every [`Budget::POLL_ITERATIONS`] fixed-point iterations.
    /// With no budget installed the per-iteration overhead is the one
    /// `Option` discriminant branch.
    budget: Option<&'a Budget>,
}

impl<'a> Solver<'a> {
    pub(crate) fn new(
        ctx: &'a AnalysisContext<'a>,
        downstream: DownstreamModel,
        jitter: JitterModel,
    ) -> Self {
        Self::from_parts(
            ctx.system(),
            ctx.graph(),
            ctx.priority_order(),
            ctx.zero_load_raw(),
            downstream,
            jitter,
        )
    }

    /// Builds a solver from raw parts — the entry point for owners of the
    /// derived structure that are not an [`AnalysisContext`], such as the
    /// incremental context (which owns its graph by value).
    pub(crate) fn from_parts(
        system: &'a System,
        graph: &'a InterferenceGraph,
        order: &'a [FlowId],
        zero_load: &'a [u128],
        downstream: DownstreamModel,
        jitter: JitterModel,
    ) -> Self {
        Solver {
            system,
            graph,
            order,
            downstream,
            jitter,
            c: zero_load,
            r: vec![None; order.len()],
            idown_memo: HashMap::new(),
            budget: None,
        }
    }

    /// Installs a cooperative solve budget: the fixed-point loops will
    /// abort with [`AnalysisError::DeadlineExceeded`] once it expires.
    pub(crate) fn with_budget(mut self, budget: &'a Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Runs the analysis over the whole flow set.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::ConvergenceCap`] if any flow's fixed-point
    /// iteration exhausts the safety cap.
    pub(crate) fn solve(self, name: &'static str) -> Result<AnalysisReport, AnalysisError> {
        Ok(self.solve_explained(name)?.0)
    }

    /// Runs the analysis and additionally returns the per-flow
    /// interference breakdowns at the fixed points.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Solver::solve`].
    pub(crate) fn solve_explained(
        mut self,
        name: &'static str,
    ) -> Result<(AnalysisReport, Vec<FlowExplanation>), AnalysisError> {
        let _span = metrics::SOLVE_NS.span();
        let order = self.order;
        let n = order.len();
        let mut verdicts = vec![FlowVerdict::NotConverged; n];
        let mut explanations: Vec<Option<FlowExplanation>> = (0..n).map(|_| None).collect();
        for &i in order {
            let (verdict, terms) = self.solve_flow(i)?;
            if let FlowVerdict::Schedulable { response_time } = verdict {
                self.r[i.index()] = Some(u128::from(response_time.as_u64()));
            }
            verdicts[i.index()] = verdict;
            explanations[i.index()] = Some(FlowExplanation {
                flow: i,
                zero_load: clamp_cycles(self.c[i.index()]),
                verdict,
                terms,
            });
        }
        let explanations = explanations
            .into_iter()
            .map(|e| e.expect("every flow solved"))
            .collect();
        Ok((AnalysisReport::new(name, verdicts), explanations))
    }

    /// Runs the analysis against `cache`, re-solving only the flows whose
    /// interference inputs changed since the cache was last brought up to
    /// date; every other flow's verdict (and response time) is reused
    /// verbatim, so the result is bit-identical to a full
    /// [`Solver::solve`] by construction.
    ///
    /// Dirtiness propagates down the priority order first: every member of
    /// `S^D_i ∪ S^I_i` has strictly higher priority than τᵢ (both sets are
    /// built from higher-priority flows only), and the fixed point of τᵢ
    /// reads nothing outside those sets — including through the recursive
    /// downstream term, whose every `R`- and structure-reference follows
    /// chains of such edges. One pass in solve order therefore reaches the
    /// whole transitive closure.
    ///
    /// On return the cache is clean (all dirty bits cleared) and holds the
    /// verdicts of the report.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::ConvergenceCap`] if a dirty flow's
    /// fixed-point iteration exhausts the safety cap; the cache is then
    /// poisoned all-dirty so the next solve through it is a full solve.
    ///
    /// # Panics
    ///
    /// Panics if `cache` was sized for a different number of flows.
    pub(crate) fn solve_cached(
        mut self,
        name: &'static str,
        cache: &mut SolveCache,
    ) -> Result<AnalysisReport, AnalysisError> {
        let _span = metrics::SOLVE_NS.span();
        assert_eq!(
            cache.r.len(),
            self.order.len(),
            "solve cache does not match the flow set"
        );
        // An exceeded budget must abort even when every flow is clean —
        // otherwise a cancelled solve answers from the warm cache and the
        // outcome depends on what happened to run on this context earlier.
        // No work has been done yet, so the cache stays valid (no poison).
        if let Some(budget) = self.budget {
            if budget.is_exceeded() {
                if let Some(&first) = self.order.first() {
                    metrics::SOLVER_DEADLINE_HITS.incr();
                    return Err(AnalysisError::DeadlineExceeded {
                        flow: first,
                        iterations: 0,
                    });
                }
            }
        }
        for &i in self.order {
            if !cache.dirty[i.index()] {
                let deps_dirty = self
                    .graph
                    .direct_set(i)
                    .iter()
                    .chain(self.graph.indirect_set(i).iter())
                    .any(|&j| cache.dirty[j.index()]);
                cache.dirty[i.index()] = deps_dirty;
            }
        }
        let (mut dirty_solved, mut clean_reused) = (0u64, 0u64);
        for &i in self.order {
            if cache.dirty[i.index()] {
                dirty_solved += 1;
                let verdict = match self.solve_flow(i) {
                    Ok((verdict, _)) => verdict,
                    Err(e) => {
                        // Half the flows are solved, half are stale; the
                        // only consistent cache state is "everything needs
                        // a re-solve".
                        cache.poison();
                        return Err(e);
                    }
                };
                if let FlowVerdict::Schedulable { response_time } = verdict {
                    self.r[i.index()] = Some(u128::from(response_time.as_u64()));
                }
                cache.verdicts[i.index()] = verdict;
            } else {
                // Clean flow: its fixed point is unchanged; republish the
                // cached response time for lower-priority flows to read.
                clean_reused += 1;
                self.r[i.index()] = cache.r[i.index()];
            }
        }
        cache.r = self.r;
        for d in cache.dirty.iter_mut() {
            *d = false;
        }
        metrics::CACHE_DIRTY_SOLVED.add(dirty_solved);
        metrics::CACHE_CLEAN_REUSED.add(clean_reused);
        // Argument construction allocates, so gate the emission itself.
        if noc_telemetry::enabled() {
            noc_telemetry::events::emit(
                "analysis.solve_cached",
                &[
                    ("analysis", name.into()),
                    ("dirty_solved", dirty_solved.into()),
                    ("clean_reused", clean_reused.into()),
                ],
            );
        }
        Ok(AnalysisReport::new(name, cache.verdicts.clone()))
    }

    /// Computes the verdict for one flow; every higher-priority flow has
    /// been solved already.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::ConvergenceCap`] if the fixed-point
    /// iteration exhausts [`MAX_ITERATIONS`].
    fn solve_flow(
        &mut self,
        i: FlowId,
    ) -> Result<(FlowVerdict, Vec<InterferenceTerm>), AnalysisError> {
        // Per-flow budget poll: catches an expired budget even when every
        // individual fixed point converges in a handful of iterations, and
        // makes a pre-cancelled budget abort deterministically at the first
        // flow of the solve order.
        if let Some(budget) = self.budget {
            if budget.is_exceeded() {
                metrics::SOLVER_DEADLINE_HITS.incr();
                return Err(AnalysisError::DeadlineExceeded {
                    flow: i,
                    iterations: 0,
                });
            }
        }
        metrics::SOLVER_FLOWS_SOLVED.incr();
        let flow = self.system.flow(i);
        let deadline = u128::from(flow.deadline().as_u64());
        let direct: Vec<FlowId> = self.graph.direct_set(i).to_vec();
        // Taint: a failed direct interferer leaves τᵢ without a valid bound.
        if direct.iter().any(|&j| self.r[j.index()].is_none()) {
            return Ok((FlowVerdict::Tainted, Vec::new()));
        }
        // Per-interferer constants of the recurrence (independent of Rᵢ):
        // each interferer contributes hits from its own arrival curve,
        // evaluated on the window inflated by the model-specific jitter.
        let mut terms = Vec::with_capacity(direct.len());
        for &j in &direct {
            let curve = self.system.flow(j).arrival_curve();
            let extra_jitter = self.window_jitter(i, j);
            let downstream = self.downstream_term(j, i);
            let charge = self.c[j.index()].saturating_add(downstream);
            terms.push(Term {
                interferer: j,
                curve,
                extra_jitter,
                charge,
                downstream,
            });
        }
        let explain = |r: u128, terms: &[Term]| {
            terms
                .iter()
                .map(|t| InterferenceTerm {
                    interferer: t.interferer,
                    hits: u64::try_from(t.curve.max_arrivals_raw(r.saturating_add(t.extra_jitter)))
                        .unwrap_or(u64::MAX),
                    charge_per_hit: clamp_cycles(t.charge),
                    downstream_term: clamp_cycles(t.downstream),
                    window_jitter: clamp_cycles(t.extra_jitter),
                })
                .collect::<Vec<_>>()
        };
        // Monotone fixed-point iteration from Rᵢ⁰ = Cᵢ·(σᵢ + 1): a bursty
        // flow's packet can sit behind up to σᵢ same-burst predecessors,
        // each occupying the route for at most Cᵢ. σᵢ = 0 degenerates to
        // the paper's Rᵢ⁰ = Cᵢ exactly.
        let c_i = self.c[i.index()].saturating_mul(u128::from(flow.burst()) + 1);
        let mut r = c_i;
        let mut iterations = 0u64;
        for _ in 0..MAX_ITERATIONS {
            iterations += 1;
            // Cooperative cancellation: poll the budget's atomic flag (and
            // clock, while a deadline is pending) every POLL_ITERATIONS
            // rounds. Without a budget this whole block is one predicted
            // branch on the cached `Option` discriminant.
            if let Some(budget) = self.budget {
                if iterations.is_multiple_of(Budget::POLL_ITERATIONS) && budget.is_exceeded() {
                    metrics::SOLVER_ITERATIONS.add(iterations);
                    metrics::SOLVER_DEADLINE_HITS.incr();
                    return Err(AnalysisError::DeadlineExceeded {
                        flow: i,
                        iterations,
                    });
                }
            }
            let mut next = c_i;
            for t in &terms {
                let window = r.saturating_add(t.extra_jitter);
                let hits = t.curve.max_arrivals_raw(window);
                next = next.saturating_add(hits.saturating_mul(t.charge));
            }
            if next > deadline {
                metrics::SOLVER_ITERATIONS.add(iterations);
                return Ok((
                    FlowVerdict::DeadlineMiss {
                        exceeded_at: clamp_cycles(next),
                    },
                    explain(r, &terms),
                ));
            }
            if next == r {
                metrics::SOLVER_ITERATIONS.add(iterations);
                return Ok((
                    FlowVerdict::Schedulable {
                        response_time: clamp_cycles(r),
                    },
                    explain(r, &terms),
                ));
            }
            r = next;
        }
        metrics::SOLVER_ITERATIONS.add(iterations);
        metrics::SOLVER_CAP_HITS.incr();
        Err(AnalysisError::ConvergenceCap {
            flow: i,
            iterations,
            last_bound: clamp_cycles(r),
        })
    }

    /// The jitter added to τⱼ's interference window when bounding τᵢ.
    fn window_jitter(&mut self, i: FlowId, j: FlowId) -> u128 {
        match self.jitter {
            JitterModel::None => 0,
            JitterModel::InterferenceJitter => {
                // J^I_j = Rⱼ − Cⱼ iff τⱼ suffers interference from S^I_i.
                if self.graph.has_indirect_via(i, j) {
                    let r_j = self.r[j.index()].expect("solved before use");
                    r_j.saturating_sub(self.c[j.index()])
                } else {
                    0
                }
            }
            JitterModel::UpstreamInterference => self.upstream_term(j, i),
        }
    }

    /// `Iup(j,i)` — Equation 2: the interference τⱼ suffers from upstream
    /// indirect interferers of τᵢ, charged as hit-count × Cₖ.
    fn upstream_term(&mut self, j: FlowId, i: FlowId) -> u128 {
        let part = self.graph.partition_indirect(i, j);
        let r_j = self.r[j.index()].expect("solved before use");
        let mut total: u128 = 0;
        for &k in &part.upstream {
            let hits = self.hits_on(r_j, k);
            total = total.saturating_add(hits.saturating_mul(self.c[k.index()]));
        }
        total
    }

    /// `Idown(j,i)` for the configured downstream model, memoised per pair.
    fn downstream_term(&mut self, j: FlowId, i: FlowId) -> u128 {
        if matches!(self.downstream, DownstreamModel::Ignore) {
            return 0;
        }
        if let Some(&v) = self.idown_memo.get(&(j, i)) {
            return v;
        }
        let part = self.graph.partition_indirect(i, j);
        // Eq. 8 applies when τⱼ does not suffer *both* upstream and
        // downstream indirect interference; with no downstream interferers
        // the sum is zero either way, so testing the upstream set suffices.
        let buffer_bound = match self.downstream {
            DownstreamModel::BufferAware if part.upstream.is_empty() => {
                Some(self.buffered_interference(i, j))
            }
            _ => None,
        };
        let r_j = self.r[j.index()].expect("solved before use");
        let mut total: u128 = 0;
        for &k in &part.downstream {
            // One hit of τₖ on τⱼ blocks τⱼ for τₖ's own latency plus any
            // downstream interference τₖ itself suffers (recursive MPB).
            let inner = self.c[k.index()].saturating_add(self.downstream_term(k, j));
            let per_hit = match buffer_bound {
                Some(bi) => bi.min(inner),
                None => inner,
            };
            let hits = self.hits_on(r_j, k);
            total = total.saturating_add(hits.saturating_mul(per_hit));
        }
        self.idown_memo.insert((j, i), total);
        total
    }

    /// `ηₖ(Rⱼ) = ⌈(Rⱼ + Jₖ)/Tₖ⌉ + σₖ` — the number of τₖ packets that can
    /// hit τⱼ's packet during its response window (Eq. 7/8, generalised to
    /// τₖ's arrival curve; exact Eq. 7/8 when σₖ = 0).
    fn hits_on(&self, r_j: u128, k: FlowId) -> u128 {
        self.system.flow(k).arrival_curve().max_arrivals_raw(r_j)
    }

    /// Equation 6: `bi(i,j) = buf(Ξ) · linkl(Ξ) · |cd(i,j)|` — the time for
    /// one contention-domain's worth of buffered τⱼ flits to drain past τᵢ.
    ///
    /// Generalised to heterogeneous routers as
    /// `linkl(Ξ) · Σ_{λ ∈ cd(i,j)} buf(target(λ))`: the flits that can pile
    /// up inside the contention domain sit in the input buffers at the
    /// downstream end of each shared link. For homogeneous systems this is
    /// exactly the paper's product form.
    fn buffered_interference(&self, i: FlowId, j: FlowId) -> u128 {
        let linkl = u128::from(self.system.config().link_latency().as_u64());
        if !self.system.has_heterogeneous_buffers() {
            let buf = u128::from(self.system.config().buffer_depth());
            let cd_len = self.graph.contention_len(i, j) as u128;
            return buf * linkl * cd_len;
        }
        let cd = self
            .graph
            .contention_domain(i, j)
            .expect("buffered_interference requires a contention domain");
        let total_buf: u128 = cd
            .links()
            .iter()
            .map(|&l| u128::from(self.system.buffer_depth_of_link(l).unwrap_or(0)))
            .sum();
        linkl * total_buf
    }
}

/// One direct interferer's precomputed contribution to the recurrence of
/// the flow under analysis: everything except the window length is fixed
/// before the fixed-point iteration starts.
struct Term {
    interferer: FlowId,
    /// The interferer's arrival curve ηⱼ — supplies hit counts per window.
    curve: LeakyBucket,
    /// Model-specific window inflation beyond the curve's own jitter
    /// (interference jitter or upstream interference, per [`JitterModel`]).
    extra_jitter: u128,
    /// Cost per hit: Cⱼ + Idown(j,i).
    charge: u128,
    /// The Idown(j,i) part of the charge, kept for explanations.
    downstream: u128,
}

/// Memoised solve state of **one** analysis over an evolving flow set: the
/// response times and verdicts of the last solve plus a per-flow dirty bit.
///
/// Owned per analysis kind by the incremental context; consumed and
/// refreshed by [`Solver::solve_cached`]. A freshly created cache is
/// all-dirty, so the first solve through it is exactly a full solve.
#[derive(Debug, Clone)]
pub(crate) struct SolveCache {
    /// Final response times of the last solve (`None` for flows without a
    /// valid bound), indexed by flow.
    r: Vec<Option<u128>>,
    /// Verdicts of the last solve, indexed by flow.
    verdicts: Vec<FlowVerdict>,
    /// Flows whose interference inputs changed since the last solve.
    dirty: Vec<bool>,
}

impl SolveCache {
    /// A cache for `n` flows with every flow marked dirty.
    pub(crate) fn all_dirty(n: usize) -> SolveCache {
        SolveCache {
            r: vec![None; n],
            verdicts: vec![FlowVerdict::NotConverged; n],
            dirty: vec![true; n],
        }
    }

    /// Appends state for a newly added flow (dense id = old length),
    /// marked dirty.
    pub(crate) fn push_flow(&mut self) {
        self.r.push(None);
        self.verdicts.push(FlowVerdict::NotConverged);
        self.dirty.push(true);
    }

    /// Drops the state of the flow at `index`; the dense renumbering of the
    /// flows above it is the same `Vec::remove` shift.
    pub(crate) fn remove_flow(&mut self, index: usize) {
        self.r.remove(index);
        self.verdicts.remove(index);
        self.dirty.remove(index);
    }

    /// Marks one flow's inputs as changed.
    pub(crate) fn mark_dirty(&mut self, index: usize) {
        self.dirty[index] = true;
    }

    /// Marks every flow dirty — the recovery state after an aborted
    /// cached solve left the cache half-refreshed.
    pub(crate) fn poison(&mut self) {
        for d in self.dirty.iter_mut() {
            *d = true;
        }
    }
}

fn clamp_cycles(v: u128) -> Cycles {
    Cycles::new(u64::try_from(v).unwrap_or(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_saturates() {
        assert_eq!(clamp_cycles(5), Cycles::new(5));
        assert_eq!(clamp_cycles(u128::MAX), Cycles::MAX);
    }
}
