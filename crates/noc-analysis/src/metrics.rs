//! Telemetry surface of the analysis engine.
//!
//! All metrics are no-ops unless telemetry is enabled (the `NOC_TELEMETRY`
//! env var, plus the default-on `telemetry` cargo feature); see
//! [`noc_telemetry`] for the gating model. Recording never changes any
//! analysis result — the workspace's `telemetry_neutrality` test pins
//! bit-identical reports with telemetry on and off.

use noc_telemetry::{Counter, Histogram};

/// Total fixed-point iterations across all solved flows (the inner-loop
/// work of Equation 5's recurrence).
pub static SOLVER_ITERATIONS: Counter = Counter::new("analysis.solver.iterations");

/// Flows taken through the fixed-point loop (full and dirty re-solves).
pub static SOLVER_FLOWS_SOLVED: Counter = Counter::new("analysis.solver.flows_solved");

/// Fixed-point loops aborted by the iteration safety cap. Each hit also
/// surfaces as [`AnalysisError::ConvergenceCap`](crate::error::AnalysisError).
pub static SOLVER_CAP_HITS: Counter = Counter::new("analysis.solver.cap_hits");

/// Solves aborted because their [`Budget`](crate::budget::Budget) expired
/// (wall-clock deadline or cooperative cancellation). Each hit also
/// surfaces as
/// [`AnalysisError::DeadlineExceeded`](crate::error::AnalysisError).
pub static SOLVER_DEADLINE_HITS: Counter = Counter::new("analysis.solver.deadline_hits");

/// Conservative (non-iterative) bound computations served, typically as
/// the degraded fallback after a deadline or convergence failure.
pub static CONSERVATIVE_SOLVES: Counter = Counter::new("analysis.conservative.solves");

/// Wall-clock time of whole-report solves (all flows of one analysis),
/// full and cached alike.
pub static SOLVE_NS: Histogram = Histogram::new("analysis.solver.solve_ns");

/// Dirty flows re-solved by cached (incremental) solves.
pub static CACHE_DIRTY_SOLVED: Counter = Counter::new("analysis.cache.dirty_solved");

/// Clean flows whose cached verdict and response time were reused
/// (republished for lower-priority flows to read) by cached solves.
pub static CACHE_CLEAN_REUSED: Counter = Counter::new("analysis.cache.clean_reused");

/// Flow-set deltas (additions + removals) applied to incremental contexts.
pub static INCREMENTAL_DELTAS: Counter = Counter::new("analysis.incremental.deltas");

/// Flows marked dirty by delta application (the size of the touched
/// interference neighbourhood, summed over deltas; excludes the added
/// flow itself, which starts dirty).
pub static INCREMENTAL_FLOWS_DIRTIED: Counter = Counter::new("analysis.incremental.flows_dirtied");
