//! A cheap, non-iterative conservative bound — the degraded-mode fallback.
//!
//! When a full fixed-point solve cannot finish inside its
//! [`Budget`](crate::budget::Budget) (or trips the convergence safety cap),
//! an admission answer under duress must still be *sound*: saying
//! "schedulable" may never be wrong, only pessimistic. This module computes
//! such an answer in a single pass with **no fixed-point iteration at
//! all** — the layered fast-model/slow-model pattern of Mandal et al.
//! (arXiv:1908.02408), with this bound as the fast model and the crate's
//! fixed-point solver as the slow one.
//!
//! # The bound
//!
//! For every flow τᵢ the deadline Dᵢ is substituted for the unknown fixed
//! point Rᵢ in the response recurrence, and every model-dependent term is
//! replaced by one that dominates it across *all five* analyses:
//!
//! ```text
//! Bᵢ = Cᵢ·(σᵢ+1) + Σ_{τⱼ ∈ S^D_i} ηⱼ(Dᵢ + (Dⱼ − Cⱼ) + Iup*(j,i)) · (Cⱼ + Idown*(j,i))
//! ```
//!
//! where `ηⱼ(w) = ⌈(w + Jⱼ)/Tⱼ⌉ + σⱼ` is τⱼ's arrival curve (the paper's
//! hit count plus the burst allowance, matching the solver's), and
//! `Idown*`/`Iup*` are the XLWX downstream charge (Eq. 3) and the
//! upstream term (Eq. 2) evaluated over windows of length Dⱼ instead of Rⱼ.
//! The window jitter `(Dⱼ − Cⱼ) + Iup*` dominates both the interference
//! jitter `J^I_j = Rⱼ − Cⱼ` (for schedulable τⱼ, Rⱼ ≤ Dⱼ) and the original
//! Xiong `Iup` jitter; the XLWX charge dominates both the ignore-downstream
//! (SB) charge and the buffer-capped (IBN) charge. Burst terms match the
//! solver's exactly — the same `+σ` per hit count and the same
//! `σᵢ·Cᵢ` self-backlog base — so domination is preserved on the bursty
//! axis, and heterogeneous buffer maps cannot weaken it (buffer depths only
//! ever *cap* the IBN charge below the XLWX charge used here).
//!
//! # Soundness, in both directions that matter
//!
//! Write `f` for the true response function of any of the five analyses and
//! `g ≥ f` for the bound above (both monotone in the window length):
//!
//! * **Conservative acceptance.** If `Bᵢ = gᵢ(Dᵢ) ≤ Dᵢ` then `fᵢ(Dᵢ) ≤ Dᵢ`,
//!   so the true fixed point satisfies `Rᵢ ≤ Dᵢ`: a flow this bound accepts
//!   is genuinely schedulable (given its direct interferers are, which the
//!   report's per-flow reading preserves: a truly missed deadline always
//!   shows up as a miss here too, because `gᵢ(Dᵢ) ≥ fᵢ(Dᵢ) > Dᵢ`).
//! * **Never below the true response time.** For a flow the full solve
//!   proves schedulable, `Bᵢ = gᵢ(Dᵢ) ≥ gᵢ(Rᵢ) ≥ fᵢ(Rᵢ) = Rᵢ` — the
//!   degraded answer is an upper bound on the exact one, pinned by the
//!   workspace's `chaos_serving` test.
//!
//! A flow the full solve marks [`FlowVerdict::Tainted`] (its bound depends
//! on a failed higher-priority flow) may be reported schedulable here, but
//! the root-cause flow itself is always reported as a miss, so the
//! *whole-set* verdict ([`AnalysisReport::is_schedulable`]) is conservative:
//! this bound accepts a system only if every analysis would.

use std::collections::HashMap;

use noc_model::arrival::ArrivalCurve;
use noc_model::contention::InterferenceGraph;
use noc_model::ids::FlowId;
use noc_model::system::System;
use noc_model::time::Cycles;

use crate::context::AnalysisContext;
use crate::metrics;
use crate::report::{AnalysisReport, FlowVerdict};

/// The analysis name carried by conservative reports.
pub const CONSERVATIVE_NAME: &str = "Conservative";

/// Computes the conservative bound for every flow of the context's system.
///
/// Single-pass and total: no fixed-point iteration, no failure mode. See
/// the [module docs](self) for the bound and its soundness argument.
pub fn conservative_with(ctx: &AnalysisContext<'_>) -> AnalysisReport {
    conservative_from_parts(
        ctx.system(),
        ctx.graph(),
        ctx.priority_order(),
        ctx.zero_load_raw(),
    )
}

/// [`conservative_with`] from raw derived structure — the entry point for
/// owners that are not an [`AnalysisContext`], such as the incremental
/// context.
pub(crate) fn conservative_from_parts(
    system: &System,
    graph: &InterferenceGraph,
    order: &[FlowId],
    zero_load: &[u128],
) -> AnalysisReport {
    metrics::CONSERVATIVE_SOLVES.incr();
    let mut bounder = Bounder {
        system,
        graph,
        c: zero_load,
        idown_memo: HashMap::new(),
    };
    let mut verdicts = vec![FlowVerdict::NotConverged; order.len()];
    for &i in order {
        let d_i = u128::from(system.flow(i).deadline().as_u64());
        // The same σᵢ·Cᵢ self-backlog base as the solver's recurrence.
        let mut bound = bounder.c[i.index()].saturating_mul(u128::from(system.flow(i).burst()) + 1);
        for &j in graph.direct_set(i) {
            let f_j = system.flow(j);
            let d_j = u128::from(f_j.deadline().as_u64());
            let c_j = bounder.c[j.index()];
            let jitter = d_j
                .saturating_sub(c_j)
                .saturating_add(bounder.iup_bound(i, j));
            // ηⱼ adds Jⱼ and σⱼ itself, mirroring the solver's hit count.
            let window = d_i.saturating_add(jitter);
            let hits = f_j.arrival_curve().max_arrivals_raw(window);
            let charge = c_j.saturating_add(bounder.idown_bound(j, i));
            bound = bound.saturating_add(hits.saturating_mul(charge));
        }
        verdicts[i.index()] = if bound <= d_i {
            FlowVerdict::Schedulable {
                response_time: clamp_cycles(bound),
            }
        } else {
            FlowVerdict::DeadlineMiss {
                exceeded_at: clamp_cycles(bound),
            }
        };
    }
    AnalysisReport::new(CONSERVATIVE_NAME, verdicts)
}

/// Shared state of one conservative pass: the `Idown*` memo mirrors the
/// solver's, keyed by the (j, i) pair.
struct Bounder<'a> {
    system: &'a System,
    graph: &'a InterferenceGraph,
    c: &'a [u128],
    idown_memo: HashMap<(FlowId, FlowId), u128>,
}

impl Bounder<'_> {
    /// `ηₖ(Dⱼ) = ⌈(Dⱼ + Jₖ)/Tₖ⌉ + σₖ` — the hit count of Eq. 7/8 with the
    /// window widened from Rⱼ to Dⱼ, from τₖ's arrival curve.
    fn hits_in_deadline(&self, j: FlowId, k: FlowId) -> u128 {
        let d_j = u128::from(self.system.flow(j).deadline().as_u64());
        self.system.flow(k).arrival_curve().max_arrivals_raw(d_j)
    }

    /// `Iup*(j,i)` — Equation 2 over a Dⱼ-length window.
    fn iup_bound(&mut self, i: FlowId, j: FlowId) -> u128 {
        let part = self.graph.partition_indirect(i, j);
        let mut total: u128 = 0;
        for &k in &part.upstream {
            total = total.saturating_add(
                self.hits_in_deadline(j, k)
                    .saturating_mul(self.c[k.index()]),
            );
        }
        total
    }

    /// `Idown*(j,i)` — the XLWX downstream charge (Eq. 3) over Dⱼ-length
    /// windows, memoised per (j, i) pair exactly like the solver's.
    fn idown_bound(&mut self, j: FlowId, i: FlowId) -> u128 {
        if let Some(&v) = self.idown_memo.get(&(j, i)) {
            return v;
        }
        let part = self.graph.partition_indirect(i, j);
        let mut total: u128 = 0;
        for &k in &part.downstream {
            let inner = self.c[k.index()].saturating_add(self.idown_bound(k, j));
            total = total.saturating_add(self.hits_in_deadline(j, k).saturating_mul(inner));
        }
        self.idown_memo.insert((j, i), total);
        total
    }
}

fn clamp_cycles(v: u128) -> Cycles {
    Cycles::new(u64::try_from(v).unwrap_or(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{all_analyses, AnalysisKind};
    use noc_model::prelude::*;

    fn mesh_flow((src, dst, p, t): (u32, u32, u32, u64)) -> Flow {
        Flow::builder(NodeId::new(src), NodeId::new(dst))
            .priority(Priority::new(p))
            .period(Cycles::new(t))
            .length_flits(8)
            .build()
    }

    fn mesh_system(specs: &[(u32, u32, u32, u64)]) -> System {
        let flows = FlowSet::new(specs.iter().copied().map(mesh_flow).collect()).unwrap();
        System::new(
            Topology::mesh(4, 4),
            NocConfig::default(),
            flows,
            &XyRouting,
        )
        .unwrap()
    }

    /// The conservative bound dominates every analysis on every flow either
    /// analysis proves schedulable, and never accepts a flow set any
    /// analysis rejects.
    #[test]
    fn dominates_all_five_analyses() {
        let sys = mesh_system(&[
            (0, 15, 1, 1000),
            (4, 7, 2, 1500),
            (12, 3, 3, 2000),
            (1, 13, 4, 2500),
            (5, 6, 5, 3000),
            (0, 10, 6, 3500),
        ]);
        let ctx = AnalysisContext::new(&sys).unwrap();
        let conservative = conservative_with(&ctx);
        assert_eq!(conservative.analysis(), CONSERVATIVE_NAME);
        for analysis in all_analyses() {
            let exact = analysis.analyze_with(&ctx).unwrap();
            for (id, verdict) in exact.iter() {
                if let Some(r) = verdict.response_time() {
                    let b = match conservative.verdict(id) {
                        FlowVerdict::Schedulable { response_time } => response_time,
                        FlowVerdict::DeadlineMiss { exceeded_at } => exceeded_at,
                        other => panic!("conservative produced {other:?}"),
                    };
                    assert!(
                        b >= r,
                        "{}: conservative bound {b} below exact {r} for {id}",
                        analysis.name()
                    );
                }
            }
            if conservative.is_schedulable() {
                assert!(
                    exact.is_schedulable(),
                    "conservative accepted a set {} rejects",
                    analysis.name()
                );
            }
        }
    }

    /// A truly missed deadline always shows up as a conservative miss.
    #[test]
    fn true_misses_are_never_accepted() {
        let topology = Topology::mesh(3, 1);
        let flows = FlowSet::new(vec![
            mesh_flow((0, 2, 1, 100)),
            Flow::builder(NodeId::new(1), NodeId::new(2))
                .priority(Priority::new(2))
                .period(Cycles::new(100))
                .deadline(Cycles::new(40))
                .length_flits(32)
                .build(),
        ])
        .unwrap();
        let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let ctx = AnalysisContext::new(&sys).unwrap();
        let exact = AnalysisKind::ShiBurns
            .as_analysis()
            .analyze_with(&ctx)
            .unwrap();
        assert!(!exact.is_schedulable());
        let conservative = conservative_with(&ctx);
        assert!(!conservative.is_schedulable());
        assert!(matches!(
            conservative.verdict(FlowId::new(1)),
            FlowVerdict::DeadlineMiss { .. }
        ));
    }

    /// Total even on inputs the fixed point cannot handle (the convergence
    /// cap fixture from the engine tests).
    #[test]
    fn total_on_cap_tripping_inputs() {
        let topology = Topology::mesh(3, 1);
        let flows = FlowSet::new(vec![
            Flow::builder(NodeId::new(0), NodeId::new(2))
                .priority(Priority::new(1))
                .period(Cycles::new(19))
                .length_flits(16)
                .build(),
            Flow::builder(NodeId::new(1), NodeId::new(2))
                .priority(Priority::new(2))
                .period(Cycles::new(10_000_000_000))
                .length_flits(32)
                .build(),
        ])
        .unwrap();
        let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let ctx = AnalysisContext::new(&sys).unwrap();
        assert!(AnalysisKind::Xlwx.as_analysis().analyze_with(&ctx).is_err());
        let conservative = conservative_with(&ctx);
        assert_eq!(conservative.len(), 2);
        // The saturating flow makes the victim's conservative bound huge.
        assert!(!conservative.verdict(FlowId::new(1)).is_schedulable());
    }
}
