//! The shared, precomputed analysis context.
//!
//! Every analysis of this crate consumes the same derived structure of a
//! [`System`]: the [`InterferenceGraph`] (direct/indirect interference sets,
//! contention domains and up/down partitions — §III of the paper), the
//! priority-ordered flow indices the fixed-point engine solves in, and the
//! zero-load latencies Cᵢ of Equation 1. Building that structure is
//! O(candidate pairs × route length) — far more expensive than any single
//! fixed-point solve — yet experiment harnesses routinely run 4–5 analyses
//! (and several buffer depths) over the *same* flow set.
//!
//! [`AnalysisContext`] computes everything once and lets every analysis
//! borrow it via [`Analysis::analyze_with`]. Derived systems that keep the
//! interference structure intact — different buffer depths
//! ([`System::with_buffer_depth`]), scaled periods
//! ([`System::with_scaled_periods`]) — can share the graph through
//! [`AnalysisContext::rebase`], which revalidates cheaply and clones only an
//! [`Arc`] handle.
//!
//! ```
//! use noc_model::prelude::*;
//! use noc_analysis::prelude::*;
//!
//! # let topology = Topology::mesh(3, 1);
//! # let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(2))
//! #     .priority(Priority::new(1)).period(Cycles::new(1_000)).length_flits(16).build()])?;
//! # let system = System::new(topology, NocConfig::default(), flows, &XyRouting)?;
//! // Build the interference structure once …
//! let ctx = AnalysisContext::new(&system)?;
//! // … and run as many analyses against it as needed.
//! let xlwx = Xlwx.analyze_with(&ctx)?;
//! let ibn = BufferAware.analyze_with(&ctx)?;
//! // A different buffer depth keeps routes and priorities: rebase, don't rebuild.
//! let big = system.with_buffer_depth(100);
//! let ibn_big = BufferAware.analyze_with(&ctx.rebase(&big)?)?;
//! # assert!(ibn.is_schedulable() && ibn_big.is_schedulable() && xlwx.is_schedulable());
//! # Ok::<(), noc_analysis::error::AnalysisError>(())
//! ```
//!
//! [`Analysis::analyze_with`]: crate::analysis::Analysis::analyze_with

use std::sync::Arc;

use noc_model::contention::InterferenceGraph;
use noc_model::ids::FlowId;
use noc_model::system::System;
use noc_model::time::Cycles;

use crate::error::AnalysisError;

/// Precomputed, analysis-independent structure of one [`System`]: the
/// interference graph, the priority order and the zero-load latencies.
///
/// Cheap to hand out by reference; every analysis in this crate accepts one
/// through [`Analysis::analyze_with`](crate::analysis::Analysis::analyze_with).
/// The plain [`Analysis::analyze`](crate::analysis::Analysis::analyze)
/// convenience builds a fresh context internally, so the two paths are
/// equivalent by construction (asserted bit-for-bit by the
/// `context_equivalence` integration test).
#[derive(Debug, Clone)]
pub struct AnalysisContext<'sys> {
    system: &'sys System,
    graph: Arc<InterferenceGraph>,
    priority_order: Vec<FlowId>,
    zero_load: Vec<u128>,
}

impl<'sys> AnalysisContext<'sys> {
    /// Builds the full context for `system`: interference graph, priority
    /// order, zero-load latencies.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Model`] if the system violates the
    /// contiguous contention-domain assumption (§II of the paper).
    pub fn new(system: &'sys System) -> Result<AnalysisContext<'sys>, AnalysisError> {
        let graph = Arc::new(InterferenceGraph::new(system)?);
        Ok(Self::assemble(system, graph))
    }

    fn assemble(system: &'sys System, graph: Arc<InterferenceGraph>) -> AnalysisContext<'sys> {
        let priority_order = system.flows().ids_by_priority();
        let zero_load = system
            .flows()
            .ids()
            .map(|id| u128::from(system.zero_load_latency(id).as_u64()))
            .collect();
        AnalysisContext {
            system,
            graph,
            priority_order,
            zero_load,
        }
    }

    /// Rebinds this context to a *derived* system that preserves the
    /// interference structure — same flows in the same order, same
    /// priorities, same routes. The expensive interference graph is shared
    /// (one [`Arc`] clone); priority order and zero-load latencies are
    /// recomputed from the new system, so config changes (buffer depth,
    /// link/routing latency) and timing changes (periods, deadlines,
    /// jitters) are picked up correctly.
    ///
    /// Typical sources of compatible systems are
    /// [`System::with_buffer_depth`], [`System::with_router_buffer_depth`]
    /// and [`System::with_scaled_periods`].
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::ContextMismatch`] if `target` differs from
    /// the original system in flow count, any priority, or any route —
    /// reusing the graph would then be unsound.
    pub fn rebase<'b>(&self, target: &'b System) -> Result<AnalysisContext<'b>, AnalysisError> {
        let source = self.system;
        if target.flows().len() != source.flows().len() {
            return Err(AnalysisError::ContextMismatch {
                detail: format!(
                    "flow count changed: {} != {}",
                    target.flows().len(),
                    source.flows().len()
                ),
            });
        }
        for id in source.flows().ids() {
            if target.flow(id).priority() != source.flow(id).priority() {
                return Err(AnalysisError::ContextMismatch {
                    detail: format!("priority of {id} changed"),
                });
            }
            if target.route(id) != source.route(id) {
                return Err(AnalysisError::ContextMismatch {
                    detail: format!("route of {id} changed"),
                });
            }
        }
        Ok(AnalysisContext::assemble(target, Arc::clone(&self.graph)))
    }

    /// [`AnalysisContext::rebase`] for targets known to preserve the
    /// interference structure by construction — systems derived via
    /// [`System::with_buffer_depth`], [`System::with_router_buffer_depth`]
    /// or [`System::with_scaled_periods`]. The experiment harnesses use
    /// this form.
    ///
    /// # Panics
    ///
    /// Panics if `target` does *not* preserve the structure (different flow
    /// count, priorities or routes), naming the violated invariant — use
    /// [`AnalysisContext::rebase`] when that is a recoverable condition.
    #[must_use]
    #[track_caller]
    pub fn rebased<'b>(&self, target: &'b System) -> AnalysisContext<'b> {
        match self.rebase(target) {
            Ok(ctx) => ctx,
            Err(mismatch) => {
                panic!("rebase target does not preserve the interference structure: {mismatch}")
            }
        }
    }

    /// The system this context was built for (or last rebased onto).
    pub fn system(&self) -> &'sys System {
        self.system
    }

    /// The precomputed interference graph (§III): direct/indirect sets,
    /// contention domains, up/down partitions.
    pub fn graph(&self) -> &InterferenceGraph {
        &self.graph
    }

    /// Flow ids from highest priority to lowest — the order the fixed-point
    /// engine solves in, so every `Rⱼ` referenced by τᵢ is already final.
    pub fn priority_order(&self) -> &[FlowId] {
        &self.priority_order
    }

    /// The zero-load latency Cᵢ (Equation 1) of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn zero_load(&self, id: FlowId) -> Cycles {
        Cycles::new(u64::try_from(self.zero_load[id.index()]).unwrap_or(u64::MAX))
    }

    /// All zero-load latencies as the engine's wide integers, indexed by
    /// [`FlowId`].
    pub(crate) fn zero_load_raw(&self) -> &[u128] {
        &self.zero_load
    }

    /// Number of flows covered.
    pub fn len(&self) -> usize {
        self.zero_load.len()
    }

    /// `true` for an empty flow set.
    pub fn is_empty(&self) -> bool {
        self.zero_load.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::prelude::*;

    fn system(buffer: u32) -> System {
        let topology = Topology::mesh(4, 1);
        let mk = |src: u32, dst: u32, p: u32, t: u64| {
            Flow::builder(NodeId::new(src), NodeId::new(dst))
                .priority(Priority::new(p))
                .period(Cycles::new(t))
                .length_flits(8)
                .build()
        };
        let flows =
            FlowSet::new(vec![mk(0, 3, 1, 500), mk(1, 3, 2, 900), mk(2, 3, 3, 1_300)]).unwrap();
        let config = NocConfig::builder().buffer_depth(buffer).build();
        System::new(topology, config, flows, &XyRouting).unwrap()
    }

    #[test]
    fn context_matches_system_derivations() {
        let sys = system(2);
        let ctx = AnalysisContext::new(&sys).unwrap();
        assert_eq!(ctx.len(), 3);
        assert!(!ctx.is_empty());
        assert_eq!(ctx.priority_order(), sys.flows().ids_by_priority());
        for id in sys.flows().ids() {
            assert_eq!(ctx.zero_load(id), sys.zero_load_latency(id));
        }
        assert_eq!(
            ctx.graph().direct_set(FlowId::new(2)),
            &[FlowId::new(0), FlowId::new(1)]
        );
    }

    #[test]
    fn rebase_shares_graph_and_tracks_new_system() {
        let sys = system(2);
        let ctx = AnalysisContext::new(&sys).unwrap();
        let big = sys.with_buffer_depth(64);
        let rebased = ctx.rebase(&big).unwrap();
        assert_eq!(rebased.system().config().buffer_depth(), 64);
        // Same shared graph object.
        assert!(std::ptr::eq(ctx.graph(), rebased.graph()));
        // Period scaling also rebases; zero-load is recomputed (unchanged
        // here since lengths and latencies are preserved).
        let scaled = sys.with_scaled_periods(2, 1).unwrap();
        let rescaled = ctx.rebase(&scaled).unwrap();
        assert_eq!(
            rescaled.system().flow(FlowId::new(0)).period(),
            Cycles::new(1_000)
        );
        assert_eq!(
            rescaled.zero_load(FlowId::new(0)),
            ctx.zero_load(FlowId::new(0))
        );
    }

    #[test]
    fn rebase_rejects_structural_changes() {
        let sys = system(2);
        let ctx = AnalysisContext::new(&sys).unwrap();
        // A different topology/flow set must be rejected.
        let other = {
            let topology = Topology::mesh(4, 1);
            let flows = FlowSet::new(vec![Flow::builder(NodeId::new(3), NodeId::new(0))
                .priority(Priority::new(1))
                .period(Cycles::new(500))
                .length_flits(8)
                .build()])
            .unwrap();
            System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap()
        };
        let err = ctx.rebase(&other).unwrap_err();
        assert!(matches!(err, AnalysisError::ContextMismatch { .. }));
        assert!(err.to_string().contains("flow count"));
    }
}
