//! Analysis outcomes: per-flow verdicts and whole-set reports.

use std::fmt;

use noc_model::ids::FlowId;
use noc_model::time::Cycles;

/// The outcome of a response-time analysis for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowVerdict {
    /// The fixed point converged at `response_time ≤ D`.
    Schedulable {
        /// Upper bound R on the worst-case packet latency.
        response_time: Cycles,
    },
    /// The response-time iteration exceeded the deadline; the flow cannot be
    /// guaranteed. `exceeded_at` is the first iterate beyond D (a *lower*
    /// bound on the analysis' fixed point, not a latency bound).
    DeadlineMiss {
        /// First iterate that exceeded the deadline.
        exceeded_at: Cycles,
    },
    /// A higher-priority flow this bound depends on already failed, so no
    /// meaningful bound exists for this flow.
    Tainted,
    /// The iteration hit the safety cap without converging (practically
    /// unreachable; treated as unschedulable).
    NotConverged,
}

impl FlowVerdict {
    /// `true` for [`FlowVerdict::Schedulable`].
    pub fn is_schedulable(&self) -> bool {
        matches!(self, FlowVerdict::Schedulable { .. })
    }

    /// The response-time bound, if the flow is schedulable.
    pub fn response_time(&self) -> Option<Cycles> {
        match self {
            FlowVerdict::Schedulable { response_time } => Some(*response_time),
            _ => None,
        }
    }
}

impl fmt::Display for FlowVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowVerdict::Schedulable { response_time } => write!(f, "R={response_time}"),
            FlowVerdict::DeadlineMiss { exceeded_at } => {
                write!(f, "deadline miss (>{exceeded_at})")
            }
            FlowVerdict::Tainted => write!(f, "tainted by failed higher-priority flow"),
            FlowVerdict::NotConverged => write!(f, "did not converge"),
        }
    }
}

/// One direct interferer's contribution to a response-time bound, at the
/// converged fixed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterferenceTerm {
    /// The direct interferer τⱼ ∈ S^D_i.
    pub interferer: FlowId,
    /// Number of interfering packets `⌈(Rᵢ + Jⱼ + jitterⱼ)/Tⱼ⌉`.
    pub hits: u64,
    /// Charge per hit: `Cⱼ + Idown(j,i)`.
    pub charge_per_hit: Cycles,
    /// The downstream (MPB) part of the charge, `Idown(j,i)`.
    pub downstream_term: Cycles,
    /// The jitter added to τⱼ's window (interference jitter `J^I_j`, or
    /// `Iup(j,i)` under the original Xiong analysis).
    pub window_jitter: Cycles,
}

impl InterferenceTerm {
    /// Total interference charged to this interferer: `hits ·
    /// charge_per_hit`.
    pub fn total(&self) -> Cycles {
        self.charge_per_hit * self.hits
    }
}

/// A per-flow breakdown of where a response-time bound comes from:
/// `R = C + Σ terms.total()` at the fixed point.
///
/// Produced by [`Analysis::explain`](crate::analysis::Analysis::explain);
/// the sum identity is checked by tests and makes the analyses auditable
/// term by term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowExplanation {
    /// The flow being bounded.
    pub flow: FlowId,
    /// Its zero-load latency Cᵢ (Equation 1).
    pub zero_load: Cycles,
    /// The verdict (response time if schedulable).
    pub verdict: FlowVerdict,
    /// One term per direct interferer, sorted from highest priority to
    /// lowest. Empty when the verdict is [`FlowVerdict::Tainted`].
    pub terms: Vec<InterferenceTerm>,
}

impl FlowExplanation {
    /// `C + Σ hits·charge` — equals the response time for schedulable
    /// flows.
    pub fn reconstructed_bound(&self) -> Cycles {
        self.zero_load + self.terms.iter().map(InterferenceTerm::total).sum()
    }
}

impl fmt::Display for FlowExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: C = {}, {}", self.flow, self.zero_load, self.verdict)?;
        for t in &self.terms {
            writeln!(
                f,
                "  + {} × {} from {} (MPB part {}, window jitter {})",
                t.hits, t.charge_per_hit, t.interferer, t.downstream_term, t.window_jitter
            )?;
        }
        Ok(())
    }
}

/// The outcome of a response-time analysis over a whole flow set.
///
/// # Examples
///
/// ```
/// # use noc_model::prelude::*;
/// # use noc_analysis::prelude::*;
/// # let topology = Topology::mesh(2, 1);
/// # let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(1))
/// #     .priority(Priority::new(1)).period(Cycles::new(1000)).length_flits(10).build()])?;
/// # let system = System::new(topology, NocConfig::default(), flows, &XyRouting)?;
/// let report = BufferAware.analyze(&system)?;
/// assert!(report.is_schedulable());
/// assert_eq!(report.response_time(FlowId::new(0)), Some(Cycles::new(12)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    analysis: &'static str,
    verdicts: Vec<FlowVerdict>,
}

impl AnalysisReport {
    /// Assembles a report (used by the analyses in this crate).
    pub(crate) fn new(analysis: &'static str, verdicts: Vec<FlowVerdict>) -> Self {
        AnalysisReport { analysis, verdicts }
    }

    /// Name of the analysis that produced this report.
    pub fn analysis(&self) -> &'static str {
        self.analysis
    }

    /// `true` iff every flow is schedulable (Rᵢ ≤ Dᵢ for all τᵢ).
    pub fn is_schedulable(&self) -> bool {
        self.verdicts.iter().all(FlowVerdict::is_schedulable)
    }

    /// Number of schedulable flows.
    pub fn schedulable_count(&self) -> usize {
        self.verdicts.iter().filter(|v| v.is_schedulable()).count()
    }

    /// Verdict for one flow.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn verdict(&self, id: FlowId) -> FlowVerdict {
        self.verdicts[id.index()]
    }

    /// Response-time bound Rᵢ for one flow, if schedulable.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn response_time(&self, id: FlowId) -> Option<Cycles> {
        self.verdicts[id.index()].response_time()
    }

    /// Iterates over `(FlowId, FlowVerdict)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, FlowVerdict)> + '_ {
        self.verdicts
            .iter()
            .enumerate()
            .map(|(i, v)| (FlowId::new(i as u32), *v))
    }

    /// Number of flows covered.
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// `true` if the report covers no flows.
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {}/{} flows schedulable",
            self.analysis,
            self.schedulable_count(),
            self.len()
        )?;
        for (id, v) in self.iter() {
            writeln!(f, "  {id}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_accessors() {
        let ok = FlowVerdict::Schedulable {
            response_time: Cycles::new(10),
        };
        assert!(ok.is_schedulable());
        assert_eq!(ok.response_time(), Some(Cycles::new(10)));
        let miss = FlowVerdict::DeadlineMiss {
            exceeded_at: Cycles::new(99),
        };
        assert!(!miss.is_schedulable());
        assert_eq!(miss.response_time(), None);
        assert!(!FlowVerdict::Tainted.is_schedulable());
        assert!(!FlowVerdict::NotConverged.is_schedulable());
    }

    #[test]
    fn report_aggregates() {
        let report = AnalysisReport::new(
            "test",
            vec![
                FlowVerdict::Schedulable {
                    response_time: Cycles::new(5),
                },
                FlowVerdict::Tainted,
            ],
        );
        assert_eq!(report.analysis(), "test");
        assert!(!report.is_schedulable());
        assert_eq!(report.schedulable_count(), 1);
        assert_eq!(report.len(), 2);
        assert!(!report.is_empty());
        assert_eq!(report.response_time(FlowId::new(0)), Some(Cycles::new(5)));
        assert_eq!(report.response_time(FlowId::new(1)), None);
        assert_eq!(report.iter().count(), 2);
    }

    #[test]
    fn display_mentions_counts_and_verdicts() {
        let report = AnalysisReport::new(
            "SB",
            vec![FlowVerdict::Schedulable {
                response_time: Cycles::new(5),
            }],
        );
        let s = report.to_string();
        assert!(s.contains("SB: 1/1"));
        assert!(s.contains("f0: R=5cy"));
    }
}
