//! Error type for the analyses.

use std::error::Error;
use std::fmt;

use noc_model::error::ModelError;
use noc_model::ids::FlowId;
use noc_model::time::Cycles;

/// Errors raised while running a response-time analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The system violates a model assumption the analysis relies on
    /// (non-contiguous contention domain, …).
    Model(ModelError),
    /// [`AnalysisContext::rebase`](crate::context::AnalysisContext::rebase)
    /// was asked to rebind a context onto a system whose interference
    /// structure (flow count, priorities or routes) differs from the one the
    /// context was built for — sharing the precomputed graph would be
    /// unsound.
    ContextMismatch {
        /// What changed between the context's system and the rebase target.
        detail: String,
    },
    /// A fixed-point iteration blew past the solver's safety cap without
    /// converging or exceeding its deadline — pathological inputs (huge
    /// deadlines with near-saturating interference) rather than a model
    /// violation. The detail names the flow so callers can report *which*
    /// recurrence diverged instead of an opaque failure; each occurrence
    /// is also counted in
    /// [`metrics::SOLVER_CAP_HITS`](crate::metrics::SOLVER_CAP_HITS).
    ConvergenceCap {
        /// The flow whose recurrence hit the cap.
        flow: FlowId,
        /// The iteration cap that was exhausted.
        iterations: u64,
        /// The (still growing) response-time bound at the last iteration.
        last_bound: Cycles,
    },
    /// The solve's [`Budget`](crate::budget::Budget) was exceeded — its
    /// wall-clock deadline passed, or it was cancelled cooperatively from
    /// another thread — before the fixed point converged. Not a property of
    /// the system: re-solving with a larger (or no) budget can succeed.
    /// Serving layers typically answer with the cheap conservative bound
    /// ([`crate::conservative`]) instead of failing the query.
    DeadlineExceeded {
        /// The flow being solved when the budget expired.
        flow: FlowId,
        /// Fixed-point iterations spent on that flow before the abort.
        iterations: u64,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Model(e) => write!(f, "model assumption violated: {e}"),
            AnalysisError::ContextMismatch { detail } => {
                write!(f, "analysis context incompatible with system: {detail}")
            }
            AnalysisError::ConvergenceCap {
                flow,
                iterations,
                last_bound,
            } => {
                write!(
                    f,
                    "fixed-point iteration for {flow} exceeded the {iterations}-iteration \
                     safety cap (bound had grown to {last_bound} without converging)"
                )
            }
            AnalysisError::DeadlineExceeded { flow, iterations } => {
                write!(
                    f,
                    "solve budget exceeded while bounding {flow} \
                     (after {iterations} fixed-point iterations on it)"
                )
            }
        }
    }
}

impl Error for AnalysisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalysisError::Model(e) => Some(e),
            AnalysisError::ContextMismatch { .. }
            | AnalysisError::ConvergenceCap { .. }
            | AnalysisError::DeadlineExceeded { .. } => None,
        }
    }
}

impl From<ModelError> for AnalysisError {
    fn from(e: ModelError) -> Self {
        AnalysisError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::ids::NodeId;

    #[test]
    fn wraps_model_error_with_source() {
        let inner = ModelError::UnknownNode {
            node: NodeId::new(3),
        };
        let err = AnalysisError::from(inner.clone());
        assert_eq!(err, AnalysisError::Model(inner));
        assert!(err.to_string().contains("n3"));
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalysisError>();
    }
}
