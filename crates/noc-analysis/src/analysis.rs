//! The [`Analysis`] trait and the five concrete analyses.
//!
//! | Analysis | Paper | Downstream MPB charge | Safe under MPB? |
//! |---|---|---|---|
//! | [`NoIndirect`] | — (teaching baseline) | none, no jitter | no |
//! | [`ShiBurns`] | SB, \[11\] | none | no |
//! | [`XiongOriginal`] | Eq. 4, \[12\] | Eq. 3, with `Iup` as window jitter | no (shown optimistic by \[6\]) |
//! | [`Xlwx`] | Eq. 5, \[13\] | Eq. 3 | yes |
//! | [`BufferAware`] | **IBN**, Eq. 5 + 6–8 (this paper) | `min(bi, Eq. 3)` | yes |

use noc_model::system::System;

use crate::budget::Budget;
use crate::context::AnalysisContext;
use crate::engine::{DownstreamModel, JitterModel, Solver};
use crate::error::AnalysisError;
use crate::report::{AnalysisReport, FlowExplanation};

/// A worst-case response-time analysis: maps a [`System`] to per-flow
/// latency bounds and a schedulability verdict.
///
/// Object-safe ([C-OBJECT]) so experiment harnesses can iterate over
/// `&dyn Analysis` collections.
///
/// The primitive operations are [`Analysis::analyze_with`] and
/// [`Analysis::explain_with`], which borrow a shared [`AnalysisContext`];
/// the [`Analysis::analyze`]/[`Analysis::explain`] conveniences build a
/// fresh context per call. Harnesses that run several analyses (or several
/// buffer depths) over one flow set should build the context once and use
/// the `_with` forms — see [`crate::context`] for the full pattern.
pub trait Analysis {
    /// Short, stable display name (`"SB"`, `"XLWX"`, `"IBN"`, …).
    fn name(&self) -> &'static str;

    /// Runs the analysis over every flow of the context's system, reusing
    /// the context's precomputed interference structure.
    ///
    /// # Errors
    ///
    /// The concrete analyses of this crate fail here only with
    /// [`AnalysisError::ConvergenceCap`], on pathological inputs whose
    /// fixed-point iteration exhausts the solver's safety cap (the fallible
    /// structure derivation already happened in [`AnalysisContext::new`]).
    fn analyze_with(&self, ctx: &AnalysisContext<'_>) -> Result<AnalysisReport, AnalysisError>;

    /// [`Analysis::explain`] against a shared context: per-flow interference
    /// breakdowns at the fixed point.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Analysis::analyze_with`].
    fn explain_with(
        &self,
        ctx: &AnalysisContext<'_>,
    ) -> Result<Vec<FlowExplanation>, AnalysisError>;

    /// Runs the analysis over every flow of `system`, deriving the
    /// interference structure from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Model`] if the system violates a model
    /// assumption (e.g. non-contiguous contention domains).
    fn analyze(&self, system: &System) -> Result<AnalysisReport, AnalysisError> {
        self.analyze_with(&AnalysisContext::new(system)?)
    }

    /// Runs the analysis and returns, for every flow, the interference
    /// breakdown at the fixed point: which interferer was charged how many
    /// hits of what size (including the MPB term). The identity
    /// `R = C + Σ hits·charge` holds for every schedulable flow.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Analysis::analyze`].
    fn explain(&self, system: &System) -> Result<Vec<FlowExplanation>, AnalysisError> {
        self.explain_with(&AnalysisContext::new(system)?)
    }
}

/// Direct interference only, no interference jitter: the naive bound that
/// predates SB. Unsafe; kept as a teaching/ablation baseline showing why
/// indirect interference matters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoIndirect;

impl Analysis for NoIndirect {
    fn name(&self) -> &'static str {
        "NoIndirect"
    }

    fn analyze_with(&self, ctx: &AnalysisContext<'_>) -> Result<AnalysisReport, AnalysisError> {
        Solver::new(ctx, DownstreamModel::Ignore, JitterModel::None).solve(self.name())
    }

    fn explain_with(
        &self,
        ctx: &AnalysisContext<'_>,
    ) -> Result<Vec<FlowExplanation>, AnalysisError> {
        Solver::new(ctx, DownstreamModel::Ignore, JitterModel::None)
            .solve_explained(self.name())
            .map(|(_, explanations)| explanations)
    }
}

/// The Shi & Burns analysis (SB, \[11\]): direct interference plus the
/// interference jitter `J^I_j = Rⱼ − Cⱼ` for direct interferers that suffer
/// indirect interference. Optimistic under multi-point progressive blocking
/// (§III of the paper).
///
/// # Examples
///
/// ```
/// # use noc_model::prelude::*;
/// # use noc_analysis::prelude::*;
/// # fn system() -> System {
/// #     let t = Topology::mesh(2, 1);
/// #     let f = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(1))
/// #         .priority(Priority::new(1)).period(Cycles::new(100)).build()]).unwrap();
/// #     System::new(t, NocConfig::default(), f, &XyRouting).unwrap()
/// # }
/// let report = ShiBurns.analyze(&system())?;
/// assert!(report.is_schedulable());
/// # Ok::<(), noc_analysis::error::AnalysisError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShiBurns;

impl Analysis for ShiBurns {
    fn name(&self) -> &'static str {
        "SB"
    }

    fn analyze_with(&self, ctx: &AnalysisContext<'_>) -> Result<AnalysisReport, AnalysisError> {
        Solver::new(
            ctx,
            DownstreamModel::Ignore,
            JitterModel::InterferenceJitter,
        )
        .solve(self.name())
    }

    fn explain_with(
        &self,
        ctx: &AnalysisContext<'_>,
    ) -> Result<Vec<FlowExplanation>, AnalysisError> {
        Solver::new(
            ctx,
            DownstreamModel::Ignore,
            JitterModel::InterferenceJitter,
        )
        .solve_explained(self.name())
        .map(|(_, explanations)| explanations)
    }
}

/// The original Xiong et al. analysis (Equation 4, GLSVLSI 2016 \[12\]):
/// downstream indirect interference charged as direct interference and the
/// upstream term `Iup(j,i)` used as window jitter. Shown optimistic by the
/// counter-example of \[6\]; kept for ablation studies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XiongOriginal;

impl Analysis for XiongOriginal {
    fn name(&self) -> &'static str {
        "Xiong16"
    }

    fn analyze_with(&self, ctx: &AnalysisContext<'_>) -> Result<AnalysisReport, AnalysisError> {
        Solver::new(
            ctx,
            DownstreamModel::Xlwx,
            JitterModel::UpstreamInterference,
        )
        .solve(self.name())
    }

    fn explain_with(
        &self,
        ctx: &AnalysisContext<'_>,
    ) -> Result<Vec<FlowExplanation>, AnalysisError> {
        Solver::new(
            ctx,
            DownstreamModel::Xlwx,
            JitterModel::UpstreamInterference,
        )
        .solve_explained(self.name())
        .map(|(_, explanations)| explanations)
    }
}

/// The corrected Xiong/Lu/Wu/Xie analysis (XLWX, Equation 5 with the fix of
/// \[6\], published in \[13\]): the state of the art the paper improves on.
/// Safe under MPB but pessimistic — downstream indirect interference is
/// charged in full as direct interference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Xlwx;

impl Analysis for Xlwx {
    fn name(&self) -> &'static str {
        "XLWX"
    }

    fn analyze_with(&self, ctx: &AnalysisContext<'_>) -> Result<AnalysisReport, AnalysisError> {
        Solver::new(ctx, DownstreamModel::Xlwx, JitterModel::InterferenceJitter).solve(self.name())
    }

    fn explain_with(
        &self,
        ctx: &AnalysisContext<'_>,
    ) -> Result<Vec<FlowExplanation>, AnalysisError> {
        Solver::new(ctx, DownstreamModel::Xlwx, JitterModel::InterferenceJitter)
            .solve_explained(self.name())
            .map(|(_, explanations)| explanations)
    }
}

/// **IBN** — the paper's buffer-aware analysis (§IV): downstream indirect
/// interference per hit is capped by the buffered interference
/// `bi(i,j) = buf(Ξ)·linkl(Ξ)·|cd(i,j)|` (Equation 6) whenever the direct
/// interferer suffers no upstream indirect interference (Equation 8),
/// falling back to the XLWX charge otherwise. Reads `buf(Ξ)` from
/// [`System::config`]; analyse `system.with_buffer_depth(b)` to study other
/// buffer sizes.
///
/// Never less tight than [`Xlwx`], and safe under MPB.
///
/// # Examples
///
/// ```
/// # use noc_model::prelude::*;
/// # use noc_analysis::prelude::*;
/// # fn system() -> System {
/// #     let t = Topology::mesh(2, 1);
/// #     let f = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(1))
/// #         .priority(Priority::new(1)).period(Cycles::new(100)).build()]).unwrap();
/// #     System::new(t, NocConfig::default(), f, &XyRouting).unwrap()
/// # }
/// let sys = system();
/// let small = BufferAware.analyze(&sys)?;
/// let large = BufferAware.analyze(&sys.with_buffer_depth(100))?;
/// // Buffer size can only increase IBN's bounds:
/// for (id, v) in small.iter() {
///     assert!(v.response_time() <= large.verdict(id).response_time());
/// }
/// # Ok::<(), noc_analysis::error::AnalysisError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferAware;

impl Analysis for BufferAware {
    fn name(&self) -> &'static str {
        "IBN"
    }

    fn analyze_with(&self, ctx: &AnalysisContext<'_>) -> Result<AnalysisReport, AnalysisError> {
        Solver::new(
            ctx,
            DownstreamModel::BufferAware,
            JitterModel::InterferenceJitter,
        )
        .solve(self.name())
    }

    fn explain_with(
        &self,
        ctx: &AnalysisContext<'_>,
    ) -> Result<Vec<FlowExplanation>, AnalysisError> {
        Solver::new(
            ctx,
            DownstreamModel::BufferAware,
            JitterModel::InterferenceJitter,
        )
        .solve_explained(self.name())
        .map(|(_, explanations)| explanations)
    }
}

/// The five analyses as a plain value — the form used where a `&dyn
/// Analysis` is inconvenient, such as keying the per-analysis solve caches
/// of [`IncrementalContext`](crate::incremental::IncrementalContext) or
/// shipping a choice of analysis across threads in a query batch.
///
/// `kind.name()` matches the corresponding [`Analysis::name`] exactly, and
/// analysing through a kind yields bit-identical reports to the trait path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalysisKind {
    /// [`NoIndirect`]: direct interference only, no jitter.
    NoIndirect,
    /// [`ShiBurns`] (SB): direct interference + interference jitter.
    ShiBurns,
    /// [`XiongOriginal`] (Eq. 4): MPB with `Iup` as window jitter.
    XiongOriginal,
    /// [`Xlwx`] (Eq. 5): downstream MPB charged as direct interference.
    Xlwx,
    /// [`BufferAware`] (**IBN**): MPB capped by the buffered interference.
    BufferAware,
}

impl AnalysisKind {
    /// Every kind, in increasing order of modelled interference detail
    /// (the same order as [`all_analyses`]).
    pub const ALL: [AnalysisKind; 5] = [
        AnalysisKind::NoIndirect,
        AnalysisKind::ShiBurns,
        AnalysisKind::XiongOriginal,
        AnalysisKind::Xlwx,
        AnalysisKind::BufferAware,
    ];

    /// The display name, identical to the [`Analysis::name`] of the
    /// corresponding unit struct.
    pub fn name(self) -> &'static str {
        match self {
            AnalysisKind::NoIndirect => NoIndirect.name(),
            AnalysisKind::ShiBurns => ShiBurns.name(),
            AnalysisKind::XiongOriginal => XiongOriginal.name(),
            AnalysisKind::Xlwx => Xlwx.name(),
            AnalysisKind::BufferAware => BufferAware.name(),
        }
    }

    /// The corresponding analysis as a trait object, for callers that hold
    /// a kind but want the [`Analysis`] entry points.
    pub fn as_analysis(self) -> &'static (dyn Analysis + Send + Sync) {
        match self {
            AnalysisKind::NoIndirect => &NoIndirect,
            AnalysisKind::ShiBurns => &ShiBurns,
            AnalysisKind::XiongOriginal => &XiongOriginal,
            AnalysisKind::Xlwx => &Xlwx,
            AnalysisKind::BufferAware => &BufferAware,
        }
    }

    /// [`Analysis::analyze_with`] under a cooperative [`Budget`]: the solver
    /// polls the budget (once per flow plus every
    /// [`Budget::POLL_ITERATIONS`] fixed-point iterations) and aborts with
    /// [`AnalysisError::DeadlineExceeded`] once it is exceeded.
    ///
    /// With an [`unlimited`](Budget::unlimited) budget this is bit-identical
    /// to [`Analysis::analyze_with`] — the polls read a flag nobody sets.
    /// Serving layers pair this with the conservative fallback of
    /// [`crate::conservative`] to keep answering under deadline pressure.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::DeadlineExceeded`] when the budget expires
    /// mid-solve, plus the conditions of [`Analysis::analyze_with`].
    pub fn analyze_with_budget(
        self,
        ctx: &AnalysisContext<'_>,
        budget: &Budget,
    ) -> Result<AnalysisReport, AnalysisError> {
        let (downstream, jitter) = self.models();
        Solver::new(ctx, downstream, jitter)
            .with_budget(budget)
            .solve(self.name())
    }

    /// The solver configuration of this analysis.
    pub(crate) fn models(self) -> (DownstreamModel, JitterModel) {
        match self {
            AnalysisKind::NoIndirect => (DownstreamModel::Ignore, JitterModel::None),
            AnalysisKind::ShiBurns => (DownstreamModel::Ignore, JitterModel::InterferenceJitter),
            AnalysisKind::XiongOriginal => {
                (DownstreamModel::Xlwx, JitterModel::UpstreamInterference)
            }
            AnalysisKind::Xlwx => (DownstreamModel::Xlwx, JitterModel::InterferenceJitter),
            AnalysisKind::BufferAware => (
                DownstreamModel::BufferAware,
                JitterModel::InterferenceJitter,
            ),
        }
    }

    /// Dense index into per-kind tables (`0..ALL.len()`).
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// All analyses of this crate as trait objects, in increasing order of
/// modelled interference detail. Convenient for sweeping experiments.
pub fn all_analyses() -> Vec<Box<dyn Analysis + Send + Sync>> {
    vec![
        Box::new(NoIndirect),
        Box::new(ShiBurns),
        Box::new(XiongOriginal),
        Box::new(Xlwx),
        Box::new(BufferAware),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::prelude::*;

    fn tiny_system() -> System {
        let topology = Topology::mesh(3, 1);
        let flows = FlowSet::new(vec![
            Flow::builder(NodeId::new(0), NodeId::new(2))
                .priority(Priority::new(1))
                .period(Cycles::new(500))
                .length_flits(16)
                .build(),
            Flow::builder(NodeId::new(1), NodeId::new(2))
                .priority(Priority::new(2))
                .period(Cycles::new(1_000))
                .length_flits(32)
                .build(),
        ])
        .unwrap();
        System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap()
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(NoIndirect.name(), "NoIndirect");
        assert_eq!(ShiBurns.name(), "SB");
        assert_eq!(XiongOriginal.name(), "Xiong16");
        assert_eq!(Xlwx.name(), "XLWX");
        assert_eq!(BufferAware.name(), "IBN");
    }

    #[test]
    fn highest_priority_flow_has_zero_interference() {
        let sys = tiny_system();
        for analysis in all_analyses() {
            let report = analysis.analyze(&sys).unwrap();
            assert_eq!(
                report.response_time(FlowId::new(0)),
                Some(sys.zero_load_latency(FlowId::new(0))),
                "{}",
                analysis.name()
            );
        }
    }

    #[test]
    fn direct_interference_single_hit() {
        let sys = tiny_system();
        // τ1 (P2): C = 2·... |route| = 3, L = 32 → C = 3 + 31 = 34.
        // Single hit of τ0 (C0 = 4 + ... |route|=4, L=16 → C0 = 4+15 = 19).
        // R1 = 34 + ⌈R1/500⌉·19 = 53.
        let report = Xlwx.analyze(&sys).unwrap();
        assert_eq!(report.response_time(FlowId::new(1)), Some(Cycles::new(53)));
    }

    #[test]
    fn analyses_agree_without_indirect_interference() {
        // With no indirect interferers, SB, XLWX and IBN coincide.
        let sys = tiny_system();
        let sb = ShiBurns.analyze(&sys).unwrap();
        let xlwx = Xlwx.analyze(&sys).unwrap();
        let ibn = BufferAware.analyze(&sys).unwrap();
        for id in sys.flows().ids() {
            assert_eq!(sb.response_time(id), xlwx.response_time(id));
            assert_eq!(ibn.response_time(id), xlwx.response_time(id));
        }
    }

    #[test]
    fn analyses_usable_as_trait_objects() {
        let sys = tiny_system();
        let list = all_analyses();
        assert_eq!(list.len(), 5);
        for analysis in &list {
            assert!(analysis.analyze(&sys).unwrap().is_schedulable());
        }
    }

    #[test]
    fn deadline_miss_detected() {
        // τ1's deadline is too tight to absorb even one hit of τ0.
        let topology = Topology::mesh(3, 1);
        let flows = FlowSet::new(vec![
            Flow::builder(NodeId::new(0), NodeId::new(2))
                .priority(Priority::new(1))
                .period(Cycles::new(100))
                .length_flits(64)
                .build(),
            Flow::builder(NodeId::new(1), NodeId::new(2))
                .priority(Priority::new(2))
                .period(Cycles::new(100))
                .deadline(Cycles::new(40))
                .length_flits(32)
                .build(),
        ])
        .unwrap();
        let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let report = ShiBurns.analyze(&sys).unwrap();
        assert!(!report.is_schedulable());
        assert!(matches!(
            report.verdict(FlowId::new(1)),
            crate::report::FlowVerdict::DeadlineMiss { .. }
        ));
        // The higher-priority flow itself is fine.
        assert!(report.verdict(FlowId::new(0)).is_schedulable());
    }

    #[test]
    fn pathological_recurrence_hits_iteration_cap() {
        // τ0 exactly saturates the shared link (charge == period), so τ1's
        // recurrence grows by a constant few dozen cycles per iteration;
        // with an astronomical deadline it can neither converge nor miss
        // before the solver's safety cap, which must surface as a
        // structured error naming the flow.
        let topology = Topology::mesh(3, 1);
        let flows = FlowSet::new(vec![
            // C = 19 cycles (see `direct_interference_single_hit`).
            Flow::builder(NodeId::new(0), NodeId::new(2))
                .priority(Priority::new(1))
                .period(Cycles::new(19))
                .length_flits(16)
                .build(),
            Flow::builder(NodeId::new(1), NodeId::new(2))
                .priority(Priority::new(2))
                .period(Cycles::new(10_000_000_000))
                .length_flits(32)
                .build(),
        ])
        .unwrap();
        let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let err = Xlwx.analyze(&sys).unwrap_err();
        match err {
            AnalysisError::ConvergenceCap {
                flow,
                iterations,
                last_bound,
            } => {
                assert_eq!(flow, FlowId::new(1));
                assert_eq!(iterations, 100_000);
                assert!(last_bound > Cycles::new(0));
            }
            other => panic!("expected ConvergenceCap, got {other:?}"),
        }
        // The explain path fails identically.
        assert!(Xlwx.explain(&sys).is_err());
    }
}
