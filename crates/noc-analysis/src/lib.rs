//! Worst-case response-time analyses for priority-preemptive wormhole NoCs.
//!
//! This crate is the primary contribution of the reproduced paper,
//! *"Buffer-aware bounds to multi-point progressive blocking in
//! priority-preemptive NoCs"* (Indrusiak, Burns & Nikolić, DATE 2018),
//! together with every baseline it compares against:
//!
//! * [`ShiBurns`] (SB) — direct interference + interference jitter;
//!   optimistic under multi-point progressive blocking (MPB).
//! * [`XiongOriginal`] — Equation 4 of Xiong et al. (GLSVLSI 2016); the
//!   first attempt at MPB, later shown optimistic.
//! * [`Xlwx`] — the corrected Equation 5 (IEEE TC 2017); safe but charges
//!   downstream indirect interference as if it were direct.
//! * [`BufferAware`] (**IBN**, the paper's contribution) — caps each MPB hit
//!   by the buffered interference `bi(i,j) = buf·linkl·|cd(i,j)|`
//!   (Equations 6–8), so *smaller router buffers yield tighter bounds*.
//! * [`NoIndirect`] — a naive direct-only teaching baseline.
//!
//! # Quick start
//!
//! ```
//! use noc_model::prelude::*;
//! use noc_analysis::prelude::*;
//!
//! // Two flows crossing a 4x4 mesh.
//! let topology = Topology::mesh(4, 4);
//! let flows = FlowSet::new(vec![
//!     Flow::builder(NodeId::new(0), NodeId::new(12))
//!         .priority(Priority::new(1))
//!         .period(Cycles::new(1_000))
//!         .length_flits(32)
//!         .build(),
//!     Flow::builder(NodeId::new(1), NodeId::new(13))
//!         .priority(Priority::new(2))
//!         .period(Cycles::new(3_000))
//!         .length_flits(64)
//!         .build(),
//! ])?;
//! let system = System::new(topology, NocConfig::default(), flows, &XyRouting)?;
//!
//! let report = BufferAware.analyze(&system)?;
//! assert!(report.is_schedulable());
//! for (id, verdict) in report.iter() {
//!     println!("{id}: {verdict}");
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Amortising the interference structure
//!
//! All five analyses consume the same derived structure (interference graph,
//! priority order, zero-load latencies). Build an
//! [`AnalysisContext`] once per flow set and run
//! every analysis against it with [`Analysis::analyze_with`]; derived
//! systems (other buffer depths, scaled periods) share the graph through
//! [`AnalysisContext::rebase`]. The
//! experiment harnesses in `noc-experiments` rely on this throughout.
//!
//! # Module map (code ↔ paper)
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`analysis`] | the five analyses: SB \[11\], Eq. 4 \[12\], Eq. 5/XLWX \[13\], **IBN** (Eq. 6–8, this paper) |
//! | `engine` (private) | Equation 5 skeleton: the fixed-point recurrence `Rᵢ = Cᵢ + Σ ⌈(Rᵢ+Jⱼ+jitterⱼ)/Tⱼ⌉·(Cⱼ+Idown(j,i))`, Eq. 2 `Iup`, Eq. 3 `Idown`, Eq. 6 `bi(i,j)`, Eq. 8 condition |
//! | [`context`] | precomputed §III structure shared across analyses (graph from [`noc_model::contention`]) |
//! | [`report`] | per-flow verdicts/bounds — the `R_*` columns of Table II |
//! | [`error`] | model-assumption violations surfaced to callers |
//! | [`budget`] | cooperative solve deadlines/cancellation polled by the engine |
//! | [`conservative`] | non-iterative conservative bound — the degraded-mode fallback |
//! | [`metrics`] | solver/cache telemetry (iterations, dirty-bit hit rates) — no-ops unless `NOC_TELEMETRY=1` |
//!
//! # Safety ordering
//!
//! For every flow the bounds are ordered
//! `R_SB ≤ R_IBN ≤ R_XLWX` and `R_IBN` is non-decreasing in the buffer
//! depth `buf(Ξ)`; these invariants are enforced by the property tests of
//! this crate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod budget;
pub mod conservative;
pub mod context;
mod engine;
pub mod error;
pub mod incremental;
pub mod metrics;
pub mod report;

pub use analysis::{
    all_analyses, Analysis, AnalysisKind, BufferAware, NoIndirect, ShiBurns, XiongOriginal, Xlwx,
};
pub use budget::Budget;
pub use conservative::conservative_with;
pub use context::AnalysisContext;
pub use error::AnalysisError;
pub use incremental::{Delta, IncrementalContext};
pub use report::{AnalysisReport, FlowExplanation, FlowVerdict, InterferenceTerm};

/// Convenient re-exports of the crate's public surface.
pub mod prelude {
    pub use crate::analysis::{
        all_analyses, Analysis, AnalysisKind, BufferAware, NoIndirect, ShiBurns, XiongOriginal,
        Xlwx,
    };
    pub use crate::budget::Budget;
    pub use crate::conservative::conservative_with;
    pub use crate::context::AnalysisContext;
    pub use crate::error::AnalysisError;
    pub use crate::incremental::{Delta, IncrementalContext};
    pub use crate::report::{AnalysisReport, FlowExplanation, FlowVerdict, InterferenceTerm};
}
