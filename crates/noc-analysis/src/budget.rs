//! Cooperative solve budgets: deadlines and cancellation for the solver.
//!
//! A fixed-point solve is CPU-bound and, on pathological inputs (huge
//! deadlines with near-saturating interference), can spin for a long time
//! before the iteration safety cap trips. Serving layers need a cheaper,
//! *time-based* way out: a [`Budget`] carries an optional wall-clock
//! deadline plus a cancellation flag, and the solver polls it — one atomic
//! load every [`Budget::POLL_ITERATIONS`] fixed-point iterations, plus once
//! per flow — aborting the solve with
//! [`AnalysisError::DeadlineExceeded`](crate::error::AnalysisError) when it
//! has expired.
//!
//! A `Budget` is plain shared state (`Sync`, interior mutability): hand the
//! solving thread a `&Budget` and any other thread holding the same
//! reference can [`Budget::cancel`] it mid-solve. When no budget is
//! installed the solver's per-iteration overhead is a single branch on a
//! cached `Option` discriminant — nothing is loaded, timed or allocated.
//!
//! ```
//! use noc_analysis::budget::Budget;
//! use std::time::Duration;
//!
//! let budget = Budget::with_deadline(Duration::from_millis(50));
//! assert!(!budget.is_exceeded());
//! budget.cancel();
//! assert!(budget.is_exceeded());
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A cooperative cancellation token with an optional wall-clock deadline.
///
/// Checked by the solver via [`Budget::is_exceeded`]; see the
/// [module docs](self) for the polling contract. The flag is sticky: once
/// exceeded (by deadline or by [`Budget::cancel`]), a budget stays exceeded.
pub struct Budget {
    /// Sticky "stop now" flag; also caches a passed deadline so later polls
    /// skip the clock read.
    cancelled: AtomicBool,
    /// Absolute expiry instant, if a deadline was requested.
    deadline: Option<Instant>,
}

impl Budget {
    /// The solver polls the budget every this many fixed-point iterations
    /// (and once at the start of every flow). Small enough that a single
    /// flow cannot overrun a deadline by a human-noticeable amount, large
    /// enough that the `Instant::now` clock read vanishes in the iteration
    /// cost.
    pub const POLL_ITERATIONS: u64 = 256;

    /// A budget with no deadline: only [`Budget::cancel`] can exceed it.
    pub fn unlimited() -> Budget {
        Budget {
            cancelled: AtomicBool::new(false),
            deadline: None,
        }
    }

    /// A budget that expires `limit` from now.
    ///
    /// A zero `limit` yields a budget that is already exceeded at the first
    /// poll — the deterministic way to force the degraded path in tests and
    /// fault-injection harnesses.
    pub fn with_deadline(limit: Duration) -> Budget {
        Budget {
            cancelled: AtomicBool::new(false),
            deadline: Some(Instant::now() + limit),
        }
    }

    /// Marks the budget exceeded immediately (idempotent; callable from any
    /// thread holding a shared reference).
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// `true` once the budget has been cancelled or its deadline passed.
    ///
    /// Cheap: one relaxed atomic load, plus a clock read only while an
    /// unexpired deadline is pending (a passed deadline latches into the
    /// flag).
    #[inline]
    pub fn is_exceeded(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                self.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

impl fmt::Debug for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Budget")
            .field("cancelled", &self.cancelled.load(Ordering::Relaxed))
            .field("deadline", &self.deadline)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires_until_cancelled() {
        let b = Budget::unlimited();
        assert!(!b.is_exceeded());
        b.cancel();
        assert!(b.is_exceeded());
        assert!(b.is_exceeded(), "cancellation is sticky");
    }

    #[test]
    fn zero_deadline_is_exceeded_at_first_poll() {
        let b = Budget::with_deadline(Duration::ZERO);
        assert!(b.is_exceeded());
    }

    #[test]
    fn generous_deadline_is_not_exceeded_immediately() {
        let b = Budget::with_deadline(Duration::from_secs(3600));
        assert!(!b.is_exceeded());
    }

    #[test]
    fn budget_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Budget>();
    }
}
