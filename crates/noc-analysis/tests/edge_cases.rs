//! Edge-case behaviour of the analyses: taint propagation past failed
//! flows, upstream-indirect-interference handling (the IBN fallback rule),
//! and the Xiong-original window term.

use noc_analysis::prelude::*;
use noc_model::prelude::*;

/// τ_hi floods the chain so hard that τ_mid misses its deadline, which must
/// taint τ_low (no valid bound can be derived for it).
#[test]
fn taint_propagates_past_deadline_miss() {
    let topology = Topology::mesh(4, 1);
    let flows = FlowSet::new(vec![
        Flow::builder(NodeId::new(0), NodeId::new(3))
            .priority(Priority::new(1))
            .period(Cycles::new(100))
            .length_flits(90)
            .build(),
        Flow::builder(NodeId::new(0), NodeId::new(3))
            .priority(Priority::new(2))
            .period(Cycles::new(400))
            .length_flits(50)
            .build(),
        Flow::builder(NodeId::new(1), NodeId::new(3))
            .priority(Priority::new(3))
            .period(Cycles::new(800))
            .length_flits(20)
            .build(),
    ])
    .unwrap();
    let system = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
    for analysis in all_analyses() {
        let report = analysis.analyze(&system).unwrap();
        assert!(report.verdict(FlowId::new(0)).is_schedulable());
        assert!(matches!(
            report.verdict(FlowId::new(1)),
            FlowVerdict::DeadlineMiss { .. }
        ));
        assert_eq!(report.verdict(FlowId::new(2)), FlowVerdict::Tainted);
        assert!(!report.is_schedulable());
        assert_eq!(report.schedulable_count(), 1);
    }
}

/// A 5x1 chain where the indirect interferer hits the direct interferer
/// *upstream* of the victim's contention domain: per §IV's application
/// rule, IBN must fall back to the XLWX charge (no buffer capping).
fn upstream_scenario() -> System {
    let topology = Topology::mesh(5, 1);
    let flows = FlowSet::new(vec![
        // τ_hi: shares only the first hop with τ_mid (upstream of cd(low,mid)).
        Flow::builder(NodeId::new(0), NodeId::new(1))
            .priority(Priority::new(1))
            .period(Cycles::new(150))
            .length_flits(16)
            .build(),
        // τ_mid: the direct interferer of τ_low.
        Flow::builder(NodeId::new(0), NodeId::new(4))
            .priority(Priority::new(2))
            .period(Cycles::new(2_000))
            .length_flits(64)
            .build(),
        // τ_low: enters at node 1.
        Flow::builder(NodeId::new(1), NodeId::new(4))
            .priority(Priority::new(3))
            .period(Cycles::new(8_000))
            .length_flits(32)
            .build(),
    ])
    .unwrap();
    System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap()
}

#[test]
fn upstream_only_scenario_makes_ibn_equal_xlwx() {
    let system = upstream_scenario();
    let ibn = BufferAware.analyze(&system).unwrap();
    let xlwx = Xlwx.analyze(&system).unwrap();
    for id in system.flows().ids() {
        assert_eq!(ibn.verdict(id), xlwx.verdict(id), "{id}");
    }
    // And buffers are irrelevant here — no downstream indirect interference.
    let huge = BufferAware
        .analyze(&system.with_buffer_depth(1_000))
        .unwrap();
    for id in system.flows().ids() {
        assert_eq!(huge.verdict(id), ibn.verdict(id));
    }
}

#[test]
fn upstream_scenario_charges_interference_jitter() {
    // τ_mid suffers upstream interference from τ_hi ∈ S^I_low, so SB/XLWX/
    // IBN must charge J^I_mid = R_mid − C_mid when bounding τ_low.
    let system = upstream_scenario();
    let explanations = ShiBurns.explain(&system).unwrap();
    let low = &explanations[2];
    let sb = ShiBurns.analyze(&system).unwrap();
    let r_mid = sb.response_time(FlowId::new(1)).unwrap();
    let c_mid = system.zero_load_latency(FlowId::new(1));
    assert_eq!(low.terms.len(), 1);
    assert_eq!(low.terms[0].window_jitter, r_mid - c_mid);
    assert!(r_mid > c_mid, "τ_mid does suffer interference");
}

#[test]
fn xiong_original_uses_upstream_term_as_window_jitter() {
    // Under Eq. 4 the window term for τ_mid is Iup(mid,low) =
    // ⌈(R_mid + J_hi)/T_hi⌉ · C_hi instead of J^I_mid.
    let system = upstream_scenario();
    let explanations = XiongOriginal.explain(&system).unwrap();
    let low = &explanations[2];
    let xiong = XiongOriginal.analyze(&system).unwrap();
    let r_mid = xiong.response_time(FlowId::new(1)).unwrap().as_u64();
    let c_hi = system.zero_load_latency(FlowId::new(0)).as_u64();
    let hits = r_mid.div_ceil(150);
    assert_eq!(low.terms[0].window_jitter, Cycles::new(hits * c_hi));
}

#[test]
fn not_converged_is_never_reached_on_constrained_deadlines() {
    // With D ≤ T the iteration either converges below D or crosses D; the
    // NotConverged safety cap must not fire on realistic inputs.
    use noc_workload::synthetic::SyntheticSpec;
    for seed in 0..20 {
        let system = SyntheticSpec::paper(4, 4, 60, 2)
            .generate(seed)
            .into_system();
        for analysis in all_analyses() {
            let report = analysis.analyze(&system).unwrap();
            for (id, v) in report.iter() {
                assert_ne!(v, FlowVerdict::NotConverged, "{} {id}", analysis.name());
            }
        }
    }
}

#[test]
fn empty_interference_graph_yields_zero_load_bounds() {
    // Four flows in disjoint corners of an 8x8 mesh: everyone is bounded by
    // exactly C under every analysis.
    let topology = Topology::mesh(8, 8);
    let mk = |src: u32, dst: u32, p: u32| {
        Flow::builder(NodeId::new(src), NodeId::new(dst))
            .priority(Priority::new(p))
            .period(Cycles::new(10_000))
            .length_flits(64)
            .build()
    };
    let flows = FlowSet::new(vec![
        mk(0, 1, 1),   // bottom-left corner, eastwards
        mk(7, 6, 2),   // bottom-right corner, westwards
        mk(56, 57, 3), // top-left corner
        mk(63, 62, 4), // top-right corner
    ])
    .unwrap();
    let system = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
    for analysis in all_analyses() {
        let report = analysis.analyze(&system).unwrap();
        for id in system.flows().ids() {
            assert_eq!(
                report.response_time(id),
                Some(system.zero_load_latency(id)),
                "{}",
                analysis.name()
            );
        }
    }
}
