//! Tests for the interference-breakdown (explanation) API: the breakdown
//! must reconstruct the bound exactly, and the didactic example's breakdown
//! must show the MPB charge the paper derives.

use noc_analysis::prelude::*;
use noc_model::prelude::*;
use noc_workload::didactic::{self, DidacticFlows};
use noc_workload::synthetic::SyntheticSpec;

#[test]
fn breakdown_reconstructs_bound_on_didactic() {
    for analysis in all_analyses() {
        for buffer in [2u32, 10] {
            let system = didactic::system(buffer);
            let report = analysis.analyze(&system).unwrap();
            for ex in analysis.explain(&system).unwrap() {
                assert_eq!(ex.verdict, report.verdict(ex.flow));
                if let Some(r) = ex.verdict.response_time() {
                    assert_eq!(
                        ex.reconstructed_bound(),
                        r,
                        "{} b={buffer} {}",
                        analysis.name(),
                        ex.flow
                    );
                }
            }
        }
    }
}

#[test]
fn didactic_tau3_breakdown_shows_the_mpb_charge() {
    let f = DidacticFlows::ids();
    let system = didactic::system(10);

    // Under IBN (b=10): one hit of τ2, charged C2 + Idown = 204 + 60.
    let ibn = BufferAware.explain(&system).unwrap();
    let tau3 = &ibn[f.tau3.index()];
    assert_eq!(tau3.zero_load, Cycles::new(132));
    assert_eq!(tau3.terms.len(), 1);
    let term = tau3.terms[0];
    assert_eq!(term.interferer, f.tau2);
    assert_eq!(term.hits, 1);
    assert_eq!(term.downstream_term, Cycles::new(60)); // 2 hits × bi = 2·30
    assert_eq!(term.charge_per_hit, Cycles::new(264));
    assert_eq!(term.window_jitter, Cycles::new(124)); // J^I_2 = R2 − C2

    // Under XLWX the downstream term is the full 2·C1 = 124.
    let xlwx = Xlwx.explain(&system).unwrap();
    let term = xlwx[f.tau3.index()].terms[0];
    assert_eq!(term.downstream_term, Cycles::new(124));
    assert_eq!(term.charge_per_hit, Cycles::new(328));

    // Under SB there is no MPB charge at all.
    let sb = ShiBurns.explain(&system).unwrap();
    let term = sb[f.tau3.index()].terms[0];
    assert_eq!(term.downstream_term, Cycles::ZERO);
    assert_eq!(term.charge_per_hit, Cycles::new(204));
}

#[test]
fn breakdown_reconstructs_bound_on_synthetic_sets() {
    for seed in 0..10u64 {
        let mut spec = SyntheticSpec::paper(4, 4, 24, 2);
        spec.period_range = (2_000, 120_000);
        spec.length_range = (16, 256);
        let system = spec.generate(seed).into_system();
        for analysis in all_analyses() {
            for ex in analysis.explain(&system).unwrap() {
                if let Some(r) = ex.verdict.response_time() {
                    assert_eq!(ex.reconstructed_bound(), r, "{}", analysis.name());
                }
                // Terms are sorted from highest priority to lowest.
                for pair in ex.terms.windows(2) {
                    assert!(system
                        .flow(pair[0].interferer)
                        .priority()
                        .is_higher_than(system.flow(pair[1].interferer).priority()));
                }
            }
        }
    }
}

#[test]
fn explanations_display_readably() {
    let system = didactic::system(10);
    let ex = &BufferAware.explain(&system).unwrap()[DidacticFlows::ids().tau3.index()];
    let text = ex.to_string();
    assert!(text.contains("C = 132cy"));
    assert!(text.contains("MPB part 60cy"));
}

#[test]
fn top_priority_flow_has_no_terms() {
    let system = didactic::system(2);
    for analysis in all_analyses() {
        let ex = analysis.explain(&system).unwrap();
        assert!(ex[DidacticFlows::ids().tau1.index()].terms.is_empty());
    }
}
