//! Reproduction of Table II's analytical columns (§V of the paper).
//!
//! | flow | R_SB | R_XLWX | R_IBN(b=10) | R_IBN(b=2) |
//! |------|------|--------|-------------|------------|
//! | τ1   | 62   | 62     | 62          | 62         |
//! | τ2   | 328  | 328    | 328         | 328        |
//! | τ3   | 336  | 460    | 396         | 348        |

use noc_analysis::prelude::*;
use noc_model::time::Cycles;
use noc_workload::didactic::{self, DidacticFlows};

fn response(analysis: &dyn Analysis, buffer: u32) -> [u64; 3] {
    let system = didactic::system(buffer);
    let report = analysis.analyze(&system).expect("didactic system analyses");
    let f = DidacticFlows::ids();
    [
        report
            .response_time(f.tau1)
            .expect("τ1 schedulable")
            .as_u64(),
        report
            .response_time(f.tau2)
            .expect("τ2 schedulable")
            .as_u64(),
        report
            .response_time(f.tau3)
            .expect("τ3 schedulable")
            .as_u64(),
    ]
}

#[test]
fn table_ii_sb_column() {
    // SB ignores MPB: τ3 = 336 regardless of buffers.
    assert_eq!(response(&ShiBurns, 10), [62, 328, 336]);
    assert_eq!(response(&ShiBurns, 2), [62, 328, 336]);
}

#[test]
fn table_ii_xlwx_column() {
    // XLWX charges the downstream hit in full: τ3 = 460, buffer-independent.
    assert_eq!(response(&Xlwx, 10), [62, 328, 460]);
    assert_eq!(response(&Xlwx, 2), [62, 328, 460]);
}

#[test]
fn table_ii_ibn_b10_column() {
    // IBN with 10-flit buffers: bi(3,2) = 10·1·3 = 30 per hit → τ3 = 396.
    assert_eq!(response(&BufferAware, 10), [62, 328, 396]);
}

#[test]
fn table_ii_ibn_b2_column() {
    // IBN with 2-flit buffers: bi(3,2) = 2·1·3 = 6 per hit → τ3 = 348.
    assert_eq!(response(&BufferAware, 2), [62, 328, 348]);
}

#[test]
fn ibn_saturates_to_xlwx_for_huge_buffers() {
    // Once bi(3,2) ≥ C1 + Idown(1,2) = 62 the min() in Eq. 8 selects the
    // XLWX charge: buf ≥ ⌈62/3⌉ = 21 ⇒ R_IBN(τ3) = R_XLWX(τ3) = 460.
    assert_eq!(response(&BufferAware, 21), [62, 328, 460]);
    assert_eq!(response(&BufferAware, 100), [62, 328, 460]);
    // One flit less of buffering still helps: buf = 20 → bi = 60 < 62.
    assert_eq!(response(&BufferAware, 20)[2], 460 - 2 * 2);
}

#[test]
fn ibn_monotone_in_buffer_depth_on_didactic() {
    let mut previous = 0;
    for buf in 1..=30 {
        let r3 = response(&BufferAware, buf)[2];
        assert!(r3 >= previous, "buf={buf}: {r3} < {previous}");
        previous = r3;
    }
}

#[test]
fn xiong_original_equals_xlwx_here() {
    // No upstream indirect interference in this example, so Eq. 4's Iup
    // window term is zero and the original analysis coincides with XLWX.
    assert_eq!(response(&XiongOriginal, 2), [62, 328, 460]);
}

#[test]
fn didactic_fully_schedulable_under_all_analyses() {
    for analysis in all_analyses() {
        let report = analysis.analyze(&didactic::system(10)).unwrap();
        assert!(report.is_schedulable(), "{}", analysis.name());
    }
}

#[test]
fn deadlines_respected_with_margin() {
    // All three flows meet their deadlines even under the XLWX bound.
    let system = didactic::system(10);
    let report = Xlwx.analyze(&system).unwrap();
    for (id, v) in report.iter() {
        let d = system.flow(id).deadline();
        assert!(v.response_time().unwrap() <= d);
    }
    assert_eq!(
        report.response_time(DidacticFlows::ids().tau3),
        Some(Cycles::new(460))
    );
}
