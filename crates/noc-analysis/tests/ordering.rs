//! Property tests for the paper's safety-ordering claims:
//!
//! * `R_SB ≤ R_IBN ≤ R_XLWX` for every flow (§IV: IBN is "tighter, but
//!   never less tight than XLWX"; SB omits MPB charges entirely);
//! * `R_IBN` is non-decreasing in the buffer depth (§V–VI: "smaller buffers
//!   … tighter bounds");
//! * schedulable-set inclusions follow: XLWX ⊆ IBN(b) ⊆ SB, and
//!   IBN(100) ⊆ IBN(2);
//! * every bound is at least the zero-load latency.

use noc_analysis::prelude::*;
use noc_model::prelude::*;
use noc_workload::synthetic::SyntheticSpec;
use proptest::prelude::*;

/// A small synthetic system: heavy enough for indirect interference to
/// appear, light enough for fast property iterations.
fn workload(seed: u64, n_flows: usize, buffer: u32) -> System {
    let mut spec = SyntheticSpec::paper(4, 4, n_flows, buffer);
    // Shrink periods (denser contention → more MPB scenarios per case).
    spec.period_range = (2_000, 200_000);
    spec.length_range = (16, 512);
    spec.generate(seed).into_system()
}

/// Response times comparable across two reports: both verdicts schedulable.
fn comparable(a: &AnalysisReport, b: &AnalysisReport) -> Vec<(FlowId, Cycles, Cycles)> {
    a.iter()
        .filter_map(|(id, va)| {
            let ra = va.response_time()?;
            let rb = b.verdict(id).response_time()?;
            Some((id, ra, rb))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SB ≤ IBN ≤ XLWX, flow by flow.
    #[test]
    fn sb_ibn_xlwx_ordering(seed in 0u64..10_000, n in 4usize..28) {
        let sys = workload(seed, n, 4);
        let sb = ShiBurns.analyze(&sys).unwrap();
        let ibn = BufferAware.analyze(&sys).unwrap();
        let xlwx = Xlwx.analyze(&sys).unwrap();
        for (id, r_sb, r_ibn) in comparable(&sb, &ibn) {
            prop_assert!(r_sb <= r_ibn, "{id}: SB {r_sb} > IBN {r_ibn}");
        }
        for (id, r_ibn, r_xlwx) in comparable(&ibn, &xlwx) {
            prop_assert!(r_ibn <= r_xlwx, "{id}: IBN {r_ibn} > XLWX {r_xlwx}");
        }
        // NoIndirect is the loosest model of interference and lower-bounds SB.
        let naive = NoIndirect.analyze(&sys).unwrap();
        for (id, r_naive, r_sb) in comparable(&naive, &sb) {
            prop_assert!(r_naive <= r_sb, "{id}: naive {r_naive} > SB {r_sb}");
        }
    }

    /// IBN response times never decrease when buffers grow.
    #[test]
    fn ibn_monotone_in_buffer(seed in 0u64..10_000, n in 4usize..24) {
        let sys = workload(seed, n, 2);
        let depths = [1u32, 2, 4, 8, 16, 64, 256];
        let mut previous: Option<AnalysisReport> = None;
        for &b in &depths {
            let report = BufferAware.analyze(&sys.with_buffer_depth(b)).unwrap();
            if let Some(prev) = &previous {
                for (id, r_small, r_big) in comparable(prev, &report) {
                    prop_assert!(
                        r_small <= r_big,
                        "{id}: IBN shrank from {r_small} to {r_big} as buffers grew"
                    );
                }
                // Schedulability can only degrade with bigger buffers.
                prop_assert!(prev.schedulable_count() >= report.schedulable_count());
            }
            previous = Some(report);
        }
    }

    /// For enormous buffers IBN coincides with XLWX (the min() in Eq. 8
    /// always selects the XLWX charge).
    #[test]
    fn ibn_saturates_to_xlwx(seed in 0u64..10_000, n in 4usize..20) {
        let sys = workload(seed, n, 2);
        let huge = sys.with_buffer_depth(1_000_000);
        let ibn = BufferAware.analyze(&huge).unwrap();
        let xlwx = Xlwx.analyze(&huge).unwrap();
        for id in sys.flows().ids() {
            prop_assert_eq!(ibn.verdict(id), xlwx.verdict(id), "{}", id);
        }
    }

    /// Schedulable-set inclusions: a set schedulable under XLWX is
    /// schedulable under IBN; schedulable under IBN implies schedulable
    /// under SB.
    #[test]
    fn schedulability_inclusions(seed in 0u64..10_000, n in 4usize..28) {
        let sys = workload(seed, n, 2);
        let sb = ShiBurns.analyze(&sys).unwrap();
        let ibn2 = BufferAware.analyze(&sys).unwrap();
        let ibn100 = BufferAware.analyze(&sys.with_buffer_depth(100)).unwrap();
        let xlwx = Xlwx.analyze(&sys).unwrap();
        if xlwx.is_schedulable() {
            prop_assert!(ibn100.is_schedulable());
        }
        if ibn100.is_schedulable() {
            prop_assert!(ibn2.is_schedulable());
        }
        if ibn2.is_schedulable() {
            prop_assert!(sb.is_schedulable());
        }
    }

    /// Every schedulable bound is at least the zero-load latency, and at
    /// most the deadline.
    #[test]
    fn bounds_bracket(seed in 0u64..10_000, n in 4usize..24) {
        let sys = workload(seed, n, 4);
        for analysis in all_analyses() {
            let report = analysis.analyze(&sys).unwrap();
            for (id, v) in report.iter() {
                if let Some(r) = v.response_time() {
                    prop_assert!(r >= sys.zero_load_latency(id), "{}", analysis.name());
                    prop_assert!(r <= sys.flow(id).deadline(), "{}", analysis.name());
                }
            }
        }
    }

    /// The highest-priority flow's bound is exactly C under every analysis.
    #[test]
    fn top_priority_is_zero_load(seed in 0u64..10_000, n in 2usize..20) {
        let sys = workload(seed, n, 4);
        let top = sys.flows().ids_by_priority()[0];
        for analysis in all_analyses() {
            let report = analysis.analyze(&sys).unwrap();
            prop_assert_eq!(
                report.response_time(top),
                Some(sys.zero_load_latency(top)),
                "{}",
                analysis.name()
            );
        }
    }
}
