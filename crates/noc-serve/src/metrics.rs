//! Telemetry surface of the serving layer.
//!
//! All metrics are no-ops unless telemetry is enabled (the `NOC_TELEMETRY`
//! env var, plus the default-on `telemetry` cargo feature); see
//! [`noc_telemetry`] for the gating model. `query_server` folds a snapshot
//! of these (together with the solver and simulator metrics) into its JSON
//! record and `SERVE_metrics.json` dump.

use noc_telemetry::{Counter, Histogram};

/// Wall-clock latency of individual queries, across all shards.
pub static QUERY_LATENCY_NS: Histogram = Histogram::new("serve.query.latency_ns");

/// Queries answered (any outcome).
pub static QUERIES_SERVED: Counter = Counter::new("serve.queries");

/// Batches evaluated via [`run_batch`](crate::run_batch).
pub static BATCHES: Counter = Counter::new("serve.batches");

/// Per-thread [`IncrementalContext`](noc_analysis::incremental::IncrementalContext)
/// forks off the shared base context (one per shard per batch).
pub static CONTEXT_FORKS: Counter = Counter::new("serve.context_forks");

/// Graph-sharing rebases served for buffer what-ifs
/// ([`AnalysisContext::rebase`](noc_analysis::context::AnalysisContext::rebase)).
pub static CONTEXT_REBASES: Counter = Counter::new("serve.context_rebases");
