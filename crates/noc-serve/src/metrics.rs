//! Telemetry surface of the serving layer.
//!
//! All metrics are no-ops unless telemetry is enabled (the `NOC_TELEMETRY`
//! env var, plus the default-on `telemetry` cargo feature); see
//! [`noc_telemetry`] for the gating model. `query_server` folds a snapshot
//! of these (together with the solver and simulator metrics) into its JSON
//! record and `SERVE_metrics.json` dump.

use noc_telemetry::{Counter, Histogram};

/// Wall-clock latency of individual queries, across all shards.
pub static QUERY_LATENCY_NS: Histogram = Histogram::new("serve.query.latency_ns");

/// Queries answered (any outcome).
pub static QUERIES_SERVED: Counter = Counter::new("serve.queries");

/// Batches evaluated via [`run_batch`](crate::run_batch).
pub static BATCHES: Counter = Counter::new("serve.batches");

/// Per-thread [`IncrementalContext`](noc_analysis::incremental::IncrementalContext)
/// forks off the shared base context (one per shard per batch).
pub static CONTEXT_FORKS: Counter = Counter::new("serve.context_forks");

/// Graph-sharing rebases served for buffer what-ifs
/// ([`AnalysisContext::rebase`](noc_analysis::context::AnalysisContext::rebase)).
pub static CONTEXT_REBASES: Counter = Counter::new("serve.context_rebases");

/// Worker panics caught by the per-query isolation boundary (injected or
/// real). Each one also triggers a shard rebuild.
pub static PANICS_CAUGHT: Counter = Counter::new("serve.panics_caught");

/// Shards re-forked from the base context after a caught panic poisoned
/// their mutable state.
pub static SHARD_REBUILDS: Counter = Counter::new("serve.shard_rebuilds");

/// Serve attempts retried after a transient failure (bounded backoff).
pub static RETRIES: Counter = Counter::new("serve.retries");

/// Queries answered with a conservative
/// [`Degraded`](crate::QueryOutcome::Degraded) verdict after a deadline or
/// convergence failure.
pub static DEGRADED: Counter = Counter::new("serve.degraded");

/// Queries shed unserved because the batch exceeded the configured
/// pending-queue bound ([`ServeOptions::max_pending`](crate::ServeOptions)).
pub static SHED: Counter = Counter::new("serve.shed");

/// Queries rejected up front by batch validation
/// ([`ServeError::InvalidQuery`](crate::ServeError)).
pub static INVALID: Counter = Counter::new("serve.invalid");

/// Queries that exhausted their retries and answered
/// [`Failed`](crate::QueryOutcome::Failed).
pub static FAILED: Counter = Counter::new("serve.failed");

/// Faults injected by an active [`FaultPlan`](crate::fault::FaultPlan) —
/// nonzero in any chaos run, always zero otherwise.
pub static FAULTS_INJECTED: Counter = Counter::new("serve.faults.injected");
