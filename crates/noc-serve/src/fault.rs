//! Deterministic fault injection for the serving layer.
//!
//! Chaos testing a query server is only useful if a failing run can be
//! replayed: a [`FaultPlan`] is a pure function from `(seed, query index,
//! attempt)` to a [`Fault`], so the same seed always injects the same
//! faults into the same queries regardless of thread count or timing. The
//! plan is consulted by [`run_batch_with`](crate::run_batch_with) once per
//! serve attempt; everything else in the crate is fault-oblivious.
//!
//! Activate from the environment (read by [`FaultPlan::from_env`], which
//! [`ServeOptions::from_env`](crate::ServeOptions::from_env) folds in):
//!
//! * `NOC_FAULT_SEED` — u64 seed; setting it turns injection on;
//! * `NOC_FAULT_RATE` — fraction of queries faulted, `0.0..=1.0`
//!   (default 0.1).
//!
//! Injected faults exercise the three failure paths the serving layer
//! defends: worker panics (caught, shard re-forked, bounded retry),
//! slow queries (deadline/degradation machinery), and solver budget
//! exhaustion (the conservative fallback). Every injection bumps
//! [`metrics::FAULTS_INJECTED`](crate::metrics::FAULTS_INJECTED), so a
//! chaos run is auditable from the metrics snapshot alone.

use std::env;

/// One injected failure, decided per `(query, attempt)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault for this attempt.
    None,
    /// Panic inside the worker before the query is served. A *transient*
    /// panic (`persistent: false`) fires on the first attempt only, so a
    /// retry against the re-forked shard succeeds; a persistent one fires
    /// on every attempt and must surface as a terminal
    /// [`QueryOutcome::Failed`](crate::QueryOutcome::Failed).
    Panic {
        /// `true` to panic on retries too.
        persistent: bool,
    },
    /// Sleep this long before serving, simulating a slow or descheduled
    /// worker. Fires on the first attempt only.
    Delay {
        /// Injected latency in milliseconds (small, bounded).
        ms: u64,
    },
    /// Serve under a pre-cancelled solve budget, deterministically forcing
    /// the [`DeadlineExceeded`](noc_analysis::error::AnalysisError) →
    /// degraded-answer path without any timing dependence. Fires on the
    /// first attempt only.
    CancelSolve,
}

impl Fault {
    /// Short stable label for telemetry events.
    pub fn name(self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::Panic { persistent: false } => "panic",
            Fault::Panic { persistent: true } => "panic_persistent",
            Fault::Delay { .. } => "delay",
            Fault::CancelSolve => "cancel_solve",
        }
    }
}

/// A seeded, deterministic schedule of injected faults.
///
/// See the [module docs](self) for the replay guarantee and the
/// environment knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Injection threshold: a query is faulted iff its hash < threshold
    /// (`rate` mapped onto the u64 range).
    threshold: u64,
}

impl FaultPlan {
    /// A plan injecting faults into roughly `rate` of all queries
    /// (`0.0..=1.0`, clamped) under `seed`.
    pub fn new(seed: u64, rate: f64) -> FaultPlan {
        let rate = rate.clamp(0.0, 1.0);
        // `u64::MAX as f64` rounds up to 2^64, so full rate saturates.
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * (u64::MAX as f64)) as u64
        };
        FaultPlan { seed, threshold }
    }

    /// Reads `NOC_FAULT_SEED` / `NOC_FAULT_RATE`; `None` (injection off)
    /// unless a seed is set. Lenient: an unparsable seed counts as unset
    /// and an unparsable rate falls back to 0.1. Front-ends that should
    /// fail loudly on misconfiguration use [`FaultPlan::try_from_env`].
    pub fn from_env() -> Option<FaultPlan> {
        let seed: u64 = env::var("NOC_FAULT_SEED").ok()?.trim().parse().ok()?;
        let rate = env::var("NOC_FAULT_RATE")
            .ok()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .unwrap_or(0.1);
        Some(FaultPlan::new(seed, rate))
    }

    /// Strict variant of [`FaultPlan::from_env`]: a variable that is set
    /// but unparsable is a configuration error, not "injection off" — a
    /// chaos CI run with a typoed seed fails loudly instead of silently
    /// measuring a clean run.
    pub fn try_from_env() -> Result<Option<FaultPlan>, String> {
        FaultPlan::plan_from(
            env::var("NOC_FAULT_SEED").ok().as_deref(),
            env::var("NOC_FAULT_RATE").ok().as_deref(),
        )
    }

    /// Pure parsing core of [`FaultPlan::try_from_env`].
    fn plan_from(seed: Option<&str>, rate: Option<&str>) -> Result<Option<FaultPlan>, String> {
        let Some(seed) = seed else { return Ok(None) };
        let seed: u64 = seed
            .trim()
            .parse()
            .map_err(|e| format!("invalid NOC_FAULT_SEED {seed:?}: {e}"))?;
        let rate = match rate {
            None => 0.1,
            Some(s) => s
                .trim()
                .parse::<f64>()
                .map_err(|e| format!("invalid NOC_FAULT_RATE {s:?}: {e}"))?,
        };
        Ok(Some(FaultPlan::new(seed, rate)))
    }

    /// The seed this plan was built with (echoed into run records so chaos
    /// failures are replayable).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault to inject when serving `query` (its batch index) on
    /// `attempt` (0 = first try). Pure: depends only on the plan and the
    /// arguments.
    pub fn fault_for(&self, query: usize, attempt: u32) -> Fault {
        let h = splitmix64(self.seed ^ splitmix64(query as u64));
        if h > self.threshold {
            return Fault::None;
        }
        // Derive kind and parameters from fresh hash bits, not from `h`
        // itself (its low bits are biased by the threshold test).
        let kind = splitmix64(h);
        match kind % 4 {
            // Half of all panics are transient, half persistent.
            0 => Fault::Panic { persistent: false },
            1 => Fault::Panic { persistent: true },
            2 => Fault::Delay {
                ms: 1 + splitmix64(kind) % 3,
            },
            _ => Fault::CancelSolve,
        }
        .only_first_attempt_unless_persistent(attempt)
    }
}

impl Fault {
    fn only_first_attempt_unless_persistent(self, attempt: u32) -> Fault {
        match self {
            Fault::Panic { persistent: true } => self,
            _ if attempt == 0 => self,
            _ => Fault::None,
        }
    }
}

/// The splitmix64 finaliser: a well-mixed 64-bit hash, good enough to
/// decorrelate query indices under any seed.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let a = FaultPlan::new(42, 0.5);
        let b = FaultPlan::new(42, 0.5);
        for q in 0..256 {
            for attempt in 0..3 {
                assert_eq!(a.fault_for(q, attempt), b.fault_for(q, attempt));
            }
        }
    }

    #[test]
    fn rate_bounds_are_respected() {
        let none = FaultPlan::new(7, 0.0);
        let all = FaultPlan::new(7, 1.0);
        let mut all_faulted = 0;
        for q in 0..256 {
            assert_eq!(none.fault_for(q, 0), Fault::None);
            if all.fault_for(q, 0) != Fault::None {
                all_faulted += 1;
            }
        }
        assert_eq!(all_faulted, 256, "rate 1.0 faults every query");
    }

    #[test]
    fn moderate_rate_faults_some_not_all() {
        let plan = FaultPlan::new(3, 0.3);
        let faulted = (0..512)
            .filter(|&q| plan.fault_for(q, 0) != Fault::None)
            .count();
        assert!(faulted > 64, "got {faulted}");
        assert!(faulted < 448, "got {faulted}");
    }

    #[test]
    fn transient_faults_do_not_fire_on_retries() {
        let plan = FaultPlan::new(1, 1.0);
        for q in 0..512 {
            match plan.fault_for(q, 0) {
                Fault::Panic { persistent: true } => {
                    assert_eq!(
                        plan.fault_for(q, 1),
                        Fault::Panic { persistent: true },
                        "persistent panics persist"
                    );
                }
                Fault::None => panic!("rate 1.0 must fault query {q}"),
                _ => {
                    assert_eq!(plan.fault_for(q, 1), Fault::None, "query {q}");
                }
            }
        }
    }

    #[test]
    fn all_fault_kinds_occur_at_full_rate() {
        let plan = FaultPlan::new(9, 1.0);
        let mut seen = [false; 4];
        for q in 0..256 {
            match plan.fault_for(q, 0) {
                Fault::Panic { persistent: false } => seen[0] = true,
                Fault::Panic { persistent: true } => seen[1] = true,
                Fault::Delay { ms } => {
                    assert!((1..=3).contains(&ms));
                    seen[2] = true;
                }
                Fault::CancelSolve => seen[3] = true,
                Fault::None => unreachable!(),
            }
        }
        assert_eq!(seen, [true; 4], "all kinds within 256 queries");
    }

    #[test]
    fn strict_parsing_rejects_malformed_values() {
        assert_eq!(FaultPlan::plan_from(None, None), Ok(None));
        assert_eq!(
            FaultPlan::plan_from(Some("42"), None),
            Ok(Some(FaultPlan::new(42, 0.1)))
        );
        assert_eq!(
            FaultPlan::plan_from(Some(" 7 "), Some("0.5")),
            Ok(Some(FaultPlan::new(7, 0.5)))
        );
        assert!(FaultPlan::plan_from(Some("notanumber"), None)
            .unwrap_err()
            .contains("NOC_FAULT_SEED"));
        assert!(FaultPlan::plan_from(Some("42"), Some("often"))
            .unwrap_err()
            .contains("NOC_FAULT_RATE"));
        // A malformed rate never silently falls back on the strict path.
        assert!(FaultPlan::plan_from(Some("42"), Some("")).is_err());
    }

    #[test]
    fn from_env_requires_a_seed() {
        // Can't mutate the environment safely in a threaded test binary;
        // just pin the parsing contract on whatever is set. When the chaos
        // CI job exports NOC_FAULT_SEED this still holds.
        if env::var("NOC_FAULT_SEED").is_err() {
            assert_eq!(FaultPlan::from_env(), None);
        } else {
            assert!(FaultPlan::from_env().is_some());
        }
    }
}
