//! Batch admission-query server over a fixed base system.
//!
//! Builds one of the named fixtures, synthesises a deterministic mix of
//! admission / removal / buffer what-if queries against it, serves them
//! through `noc_serve::run_batch_with`, and prints a single-line JSON
//! throughput record to stdout (also written to the path in
//! `NOC_SERVE_OUT`, if set). Any startup or serving error prints a
//! single-line JSON error record (`noc-serve/error/v1`) to stdout and
//! exits nonzero — the process never dies on an unwrap.
//!
//! With `NOC_TELEMETRY=1` the record additionally carries a `metrics`
//! block (solver iterations, dirty-bit hit rates, per-query latency
//! percentiles), and a full dump — including histogram buckets, per-shard
//! utilization and the structured event log — is written to
//! `SERVE_metrics.json` (path override: `NOC_SERVE_METRICS`).
//!
//! The serving policy comes from the environment (see
//! [`ServeOptions::try_from_env`] — a set-but-malformed variable is an
//! error record, not a silently-applied default): `NOC_SERVE_DEADLINE_MS`
//! (per-query solve
//! budget, degraded conservative answers past it), `NOC_SERVE_MAX_PENDING`
//! (load shedding), and `NOC_FAULT_SEED` / `NOC_FAULT_RATE` (deterministic
//! chaos injection — the CI smoke run drives this).
//!
//! Usage: `query_server [fixture] [n_queries] [threads]`
//!
//! * `fixture` — `didactic` (default), `8x8`, or `16x16`
//! * `n_queries` — number of queries in the batch (default 64)
//! * `threads` — worker threads (default: available parallelism, ≤ 16)

use std::env;
use std::error::Error;

use noc_analysis::prelude::*;
use noc_model::prelude::*;
use noc_serve::{default_threads, run_batch_with, sample_queries, QueryBatch, ServeOptions};
use noc_workload::didactic;
use noc_workload::synthetic::SyntheticSpec;

fn build_fixture(name: &str) -> Result<(System, Box<dyn RoutingAlgorithm + Sync>), Box<dyn Error>> {
    match name {
        "didactic" => {
            let (system, table) = didactic::system_with_routing(2);
            // The paper fixture pins vc(Ξ) = 3, which would veto any fourth
            // priority level; admission what-ifs need auto-sized VCs.
            let system = system.with_virtual_channels(None)?;
            Ok((system, Box::new(table)))
        }
        "8x8" => {
            let system = SyntheticSpec::paper(8, 8, 520, 2).generate(1).into_system();
            Ok((system, Box::new(XyRouting)))
        }
        "16x16" => {
            let system = SyntheticSpec::paper(16, 16, 1000, 2)
                .generate(1)
                .into_system();
            Ok((system, Box::new(XyRouting)))
        }
        other => Err(format!("unknown fixture {other:?} (didactic, 8x8, 16x16)").into()),
    }
}

/// Keeps injected-fault panics (which the serving layer catches and
/// retries) from spraying the default hook's backtrace noise over the
/// JSON output stream. Real panics still print.
fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("injected fault:"));
        if !injected {
            default(info);
        }
    }));
}

fn run() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = env::args().skip(1).collect();
    let fixture = args.first().map(String::as_str).unwrap_or("didactic");
    let n_queries: usize = match args.get(1) {
        Some(s) => s.parse()?,
        None => 64,
    };
    let threads: usize = match args.get(2) {
        Some(s) => s.parse()?,
        None => default_threads(),
    };
    let options = ServeOptions::try_from_env()?;
    if options.faults.is_some() {
        quiet_injected_panics();
    }

    let (system, routing) = build_fixture(fixture)?;
    let base = AnalysisContext::new(&system)?;
    let batch = QueryBatch {
        analysis: AnalysisKind::BufferAware,
        queries: sample_queries(&system, n_queries),
    };
    let report = run_batch_with(&base, &batch, routing.as_ref(), threads, &options);
    let tally = report.tally();
    let commit = noc_telemetry::git_commit();

    let mut json = format!(
        concat!(
            "{{\"schema\": \"noc-serve/throughput/v1\", \"commit\": \"{}\", ",
            "\"fixture\": \"{}\", ",
            "\"flows\": {}, \"queries\": {}, \"threads\": {}, \"analysis\": \"{}\", ",
            "\"wall_ns\": {}, \"queries_per_second\": {:.1}, ",
            "\"accepted\": {}, \"rejected\": {}, \"infeasible\": {}, ",
            "\"degraded\": {}, \"shed\": {}, \"failed\": {}"
        ),
        commit,
        fixture,
        system.flows().len(),
        report.outcomes.len(),
        report.threads,
        batch.analysis.name(),
        report.wall_ns,
        report.queries_per_second(),
        tally.accepted,
        tally.rejected,
        tally.infeasible,
        tally.degraded,
        tally.shed,
        tally.failed,
    );
    if let Some(plan) = &options.faults {
        json.push_str(&format!(", \"fault_seed\": {}", plan.seed()));
    }
    if noc_telemetry::enabled() {
        let snap = noc_telemetry::snapshot();
        json.push_str(&format!(", \"metrics\": {}", snap.to_inline_json()));
        write_metrics_dump(&snap, fixture, &commit, &system, &report)?;
    }
    json.push('}');
    println!("{json}");
    if let Ok(path) = env::var("NOC_SERVE_OUT") {
        std::fs::write(path, json + "\n")?;
    }
    Ok(())
}

/// Writes the full telemetry dump — metrics with histogram buckets,
/// per-shard utilization, and the drained structured event log — to
/// `SERVE_metrics.json` (or the path in `NOC_SERVE_METRICS`).
fn write_metrics_dump(
    snap: &noc_telemetry::Snapshot,
    fixture: &str,
    commit: &str,
    system: &System,
    report: &noc_serve::BatchReport,
) -> Result<(), Box<dyn Error>> {
    let path = env::var("NOC_SERVE_METRICS").unwrap_or_else(|_| "SERVE_metrics.json".to_string());
    let utilization: Vec<String> = report
        .shard_utilization()
        .iter()
        .map(|u| format!("{u:.3}"))
        .collect();
    let events = noc_telemetry::events::drain();
    let events_block = if events.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n    {}\n  ]", events.join(",\n    "))
    };
    let dump = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"noc-serve/metrics/v1\",\n",
            "  \"commit\": \"{}\",\n",
            "  \"fixture\": \"{}\",\n",
            "  \"flows\": {},\n",
            "  \"queries\": {},\n",
            "  \"threads\": {},\n",
            "  \"wall_ns\": {},\n",
            "  \"shard_utilization\": [{}],\n",
            "  \"metrics\": {},\n",
            "  \"events\": {}\n",
            "}}\n"
        ),
        commit,
        fixture,
        system.flows().len(),
        report.outcomes.len(),
        report.threads,
        report.wall_ns,
        utilization.join(", "),
        snap.to_json_pretty(2),
        events_block,
    );
    std::fs::write(path, dump)?;
    Ok(())
}

/// One-line JSON error record, so downstream tooling parsing stdout never
/// sees a half-written throughput record or a bare panic trace.
fn emit_error_record(e: &dyn Error) {
    let detail: String = e
        .to_string()
        .chars()
        .map(|c| match c {
            '"' => '\'',
            '\n' | '\r' => ' ',
            c => c,
        })
        .collect();
    println!("{{\"schema\": \"noc-serve/error/v1\", \"error\": \"{detail}\"}}");
}

fn main() {
    if let Err(e) = run() {
        emit_error_record(e.as_ref());
        eprintln!("query_server: {e}");
        std::process::exit(1);
    }
}
