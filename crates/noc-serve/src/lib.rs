//! Batch query serving for admission-control workloads.
//!
//! An online admission controller for a priority-preemptive NoC faces a
//! stream of *what-if* questions against one live system: *can this flow
//! join? what happens when that one retires? does a cheaper router with
//! smaller buffers still certify?* Each question is a full schedulability
//! run in miniature, and fleets of them arrive together (e.g. scoring every
//! placement candidate for a new task). This crate turns the incremental
//! machinery of `noc-analysis` into a throughput-oriented front-end for
//! exactly that shape of work.
//!
//! # Query model
//!
//! A [`QueryBatch`] pairs one [`AnalysisKind`] with a list of [`Query`]
//! values, evaluated independently against the same *base* system:
//!
//! * [`Query::Admission`] — add a candidate flow, re-certify, roll back;
//! * [`Query::Removal`] — retire an existing flow, re-certify, restore;
//! * [`Query::BufferWhatIf`] — re-certify at a different buffer depth.
//!
//! Every query answers with a [`QueryOutcome`]; the batch reports wall
//! time and queries/second in its [`BatchReport`].
//!
//! # Deduplication via rebase, sharding via worker threads
//!
//! The expensive derived structure — the interference graph — is built
//! **once** for the base system, inside the shared
//! [`AnalysisContext`]. From there two cheap forks serve all queries:
//!
//! * buffer what-ifs share the graph itself through
//!   [`AnalysisContext::rebase`] (an `Arc` clone: zero copying), because a
//!   buffer depth change preserves the interference structure;
//! * flow mutations need a *mutable* graph, so each worker thread forks one
//!   [`IncrementalContext`] from the base (`from_context` clones the graph
//!   rather than re-deriving it) and then serves all its queries through
//!   add → dirty-bit re-solve → remove undo cycles, touching only the
//!   interference neighbourhood each candidate overlaps.
//!
//! Queries are sharded across threads in contiguous chunks via
//! `par_map_indexed`; outcomes come back in submission order regardless of
//! scheduling.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod metrics;

use std::time::Instant;

use noc_analysis::analysis::AnalysisKind;
use noc_analysis::context::AnalysisContext;
use noc_analysis::incremental::IncrementalContext;
use noc_analysis::report::AnalysisReport;
pub use noc_experiments::runner::default_threads;
use noc_model::flow::Flow;
use noc_model::ids::FlowId;
use noc_model::routing::RoutingAlgorithm;

/// One admission-control what-if against the batch's base system.
#[derive(Debug, Clone)]
pub enum Query {
    /// Can `flow` be admitted — is the system still schedulable with it?
    /// The flow is routed by the batch's routing algorithm and removed
    /// again after the verdict, so queries stay independent.
    Admission {
        /// The candidate flow (its priority must be unused in the base
        /// system).
        flow: Flow,
    },
    /// Is the system still schedulable when the flow `id` (a base-system
    /// id) retires? The flow is restored after the verdict.
    Removal {
        /// Base-system id of the flow to retire hypothetically.
        id: FlowId,
    },
    /// Is the system schedulable with every router buffer resized to
    /// `depth` flits? Interference structure is preserved, so this is
    /// served from the shared base context without any graph work.
    BufferWhatIf {
        /// Hypothetical homogeneous buffer depth, in flits (≥ 1).
        depth: u32,
    },
}

/// A set of independent queries evaluated under one analysis.
#[derive(Debug, Clone)]
pub struct QueryBatch {
    /// The analysis certifying every what-if system.
    pub analysis: AnalysisKind,
    /// The queries, answered in order.
    pub queries: Vec<Query>,
}

/// The verdict of one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The what-if system is schedulable under the batch's analysis.
    Accepted,
    /// The what-if system is analysable but `failing` flows miss their
    /// bound.
    Rejected {
        /// Number of flows without a schedulable verdict.
        failing: u32,
    },
    /// The what-if system cannot be built at all — unroutable candidate,
    /// duplicate priority, out-of-range id, … The reason is the model
    /// error's display form.
    Infeasible {
        /// Human-readable cause.
        reason: String,
    },
}

impl QueryOutcome {
    fn from_report(report: &AnalysisReport) -> QueryOutcome {
        let failing = report.iter().filter(|(_, v)| !v.is_schedulable()).count() as u32;
        if failing == 0 {
            QueryOutcome::Accepted
        } else {
            QueryOutcome::Rejected { failing }
        }
    }

    /// `true` for [`QueryOutcome::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, QueryOutcome::Accepted)
    }
}

/// Outcomes and throughput of one [`run_batch`] call.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-query verdicts, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// Wall-clock time of the sharded evaluation, in nanoseconds.
    pub wall_ns: u128,
    /// Worker threads used.
    pub threads: usize,
    /// Time each shard spent serving its chunk, in nanoseconds, in shard
    /// order — the load-balance picture behind `wall_ns`.
    pub shard_busy_ns: Vec<u128>,
}

impl BatchReport {
    /// Answered queries per second of wall time.
    pub fn queries_per_second(&self) -> f64 {
        if self.wall_ns == 0 {
            return f64::INFINITY;
        }
        self.outcomes.len() as f64 * 1e9 / self.wall_ns as f64
    }

    /// Fraction of the batch's wall time each shard spent serving queries,
    /// in shard order (1.0 ⇔ busy for the whole batch; a low outlier marks
    /// an under-loaded shard).
    pub fn shard_utilization(&self) -> Vec<f64> {
        if self.wall_ns == 0 {
            return vec![1.0; self.shard_busy_ns.len()];
        }
        self.shard_busy_ns
            .iter()
            .map(|&b| b as f64 / self.wall_ns as f64)
            .collect()
    }

    /// Counts of (accepted, rejected, infeasible) outcomes.
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for o in &self.outcomes {
            match o {
                QueryOutcome::Accepted => t.0 += 1,
                QueryOutcome::Rejected { .. } => t.1 += 1,
                QueryOutcome::Infeasible { .. } => t.2 += 1,
            }
        }
        t
    }
}

/// Mutable per-shard serving state: an incremental context plus the
/// base-id → current-id permutation that removal/restore cycles induce.
struct Shard<'a> {
    ctx: IncrementalContext,
    /// `map[base.index()]` = the flow's id in `ctx` right now. Removing a
    /// flow shifts every larger id down; restoring it appends at the end.
    map: Vec<FlowId>,
    routing: &'a (dyn RoutingAlgorithm + Sync),
    kind: AnalysisKind,
}

impl<'a> Shard<'a> {
    fn new(
        base: &AnalysisContext<'_>,
        routing: &'a (dyn RoutingAlgorithm + Sync),
        kind: AnalysisKind,
    ) -> Shard<'a> {
        let n = base.len();
        metrics::CONTEXT_FORKS.incr();
        Shard {
            ctx: IncrementalContext::from_context(base),
            map: (0..n as u32).map(FlowId::new).collect(),
            routing,
            kind,
        }
    }

    fn serve(&mut self, base: &AnalysisContext<'_>, query: &Query) -> QueryOutcome {
        let _span = metrics::QUERY_LATENCY_NS.span();
        metrics::QUERIES_SERVED.incr();
        match query {
            Query::Admission { flow } => match self.ctx.add_flow(flow.clone(), self.routing) {
                Ok(id) => {
                    let result = self.ctx.analyze(self.kind);
                    self.ctx
                        .remove_flow(id)
                        .expect("the just-admitted flow exists");
                    match result {
                        Ok(report) => QueryOutcome::from_report(&report),
                        Err(e) => QueryOutcome::Infeasible {
                            reason: e.to_string(),
                        },
                    }
                }
                Err(e) => QueryOutcome::Infeasible {
                    reason: e.to_string(),
                },
            },
            Query::Removal { id } => {
                let Some(&current) = self.map.get(id.index()) else {
                    return QueryOutcome::Infeasible {
                        reason: format!("no flow {id} in the base system"),
                    };
                };
                let flow = self.ctx.system().flows().flow(current).clone();
                self.ctx
                    .remove_flow(current)
                    .expect("mapped ids stay in bounds");
                let result = self.ctx.analyze(self.kind);
                // Restore before interpreting the verdict (even a failed
                // solve must not leak a mutated shard): deterministic
                // routing reproduces the original route, so only the id
                // changes — track it in the map.
                let restored = self
                    .ctx
                    .add_flow(flow, self.routing)
                    .expect("restoring a previously admitted flow cannot fail");
                for m in self.map.iter_mut() {
                    if *m > current {
                        *m = FlowId::new(m.raw() - 1);
                    }
                }
                self.map[id.index()] = restored;
                match result {
                    Ok(report) => QueryOutcome::from_report(&report),
                    Err(e) => QueryOutcome::Infeasible {
                        reason: e.to_string(),
                    },
                }
            }
            Query::BufferWhatIf { depth } => {
                let what_if = base.system().with_buffer_depth(*depth);
                match base.rebase(&what_if) {
                    Ok(ctx) => {
                        metrics::CONTEXT_REBASES.incr();
                        match self.kind.as_analysis().analyze_with(&ctx) {
                            Ok(report) => QueryOutcome::from_report(&report),
                            Err(e) => QueryOutcome::Infeasible {
                                reason: e.to_string(),
                            },
                        }
                    }
                    Err(e) => QueryOutcome::Infeasible {
                        reason: e.to_string(),
                    },
                }
            }
        }
    }
}

/// A deterministic sample query mix for demos and benchmarks: half
/// admissions (templated on existing source/dest pairs with a fresh
/// priority), a quarter removals, a quarter buffer what-ifs.
pub fn sample_queries(system: &noc_model::system::System, n: usize) -> Vec<Query> {
    let ids: Vec<FlowId> = system.flows().ids().collect();
    let fresh_priority = noc_model::ids::Priority::new(ids.len() as u32 + 1);
    (0..n)
        .map(|i| match i % 4 {
            2 => Query::Removal {
                id: ids[i % ids.len()],
            },
            3 => Query::BufferWhatIf {
                depth: 1 + (i % 8) as u32,
            },
            _ => {
                let template = system.flows().flow(ids[i % ids.len()]);
                Query::Admission {
                    flow: Flow::builder(template.source(), template.dest())
                        .priority(fresh_priority)
                        .period(template.period())
                        .length_flits(4 + (i as u32 % 61))
                        .build(),
                }
            }
        })
        .collect()
}

/// Evaluates `batch` against the system of `base`, sharding the queries
/// over `threads` worker threads.
///
/// Each shard serves a contiguous chunk of the batch so outcomes return in
/// submission order. Worker state is forked from `base` (see the
/// [module docs](self) for the dedup structure); the base context itself is
/// only read.
///
/// `routing` must be deterministic (the same `(source, dest)` always yields
/// the same route) — true of every algorithm in `noc-model` — so that
/// removal queries can restore the flow they retired.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn run_batch(
    base: &AnalysisContext<'_>,
    batch: &QueryBatch,
    routing: &(dyn RoutingAlgorithm + Sync),
    threads: usize,
) -> BatchReport {
    assert!(threads > 0, "need at least one worker thread");
    let n = batch.queries.len();
    let shards = threads.min(n.max(1));
    // Contiguous chunks, the first `n % shards` one longer.
    let chunk = n / shards;
    let extra = n % shards;
    let bounds: Vec<(usize, usize)> = (0..shards)
        .scan(0usize, |start, s| {
            let len = chunk + usize::from(s < extra);
            let range = (*start, *start + len);
            *start += len;
            Some(range)
        })
        .collect();
    let started = Instant::now();
    let per_shard: Vec<(Vec<QueryOutcome>, u128)> =
        noc_experiments::runner::par_map_indexed(shards, shards, |s| {
            let (lo, hi) = bounds[s];
            let busy = Instant::now();
            let mut shard = Shard::new(base, routing, batch.analysis);
            let outcomes: Vec<QueryOutcome> = batch.queries[lo..hi]
                .iter()
                .map(|q| shard.serve(base, q))
                .collect();
            (outcomes, busy.elapsed().as_nanos())
        });
    let wall_ns = started.elapsed().as_nanos();
    metrics::BATCHES.incr();
    if noc_telemetry::enabled() {
        noc_telemetry::events::emit(
            "serve.batch",
            &[
                ("analysis", batch.analysis.name().into()),
                ("queries", (n as u64).into()),
                ("shards", (shards as u64).into()),
                ("wall_ns", u64::try_from(wall_ns).unwrap_or(u64::MAX).into()),
            ],
        );
    }
    let mut outcomes = Vec::with_capacity(n);
    let mut shard_busy_ns = Vec::with_capacity(shards);
    for (chunk_outcomes, busy_ns) in per_shard {
        outcomes.extend(chunk_outcomes);
        shard_busy_ns.push(busy_ns);
    }
    BatchReport {
        outcomes,
        wall_ns,
        threads: shards,
        shard_busy_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::prelude::*;

    fn mesh_flow((src, dst, p, t): (u32, u32, u32, u64)) -> Flow {
        Flow::builder(NodeId::new(src), NodeId::new(dst))
            .priority(Priority::new(p))
            .period(Cycles::new(t))
            .length_flits(8)
            .build()
    }

    fn base_system() -> System {
        let specs = [
            (0, 15, 1, 1000),
            (4, 7, 2, 1500),
            (12, 3, 3, 2000),
            (1, 13, 4, 2500),
        ];
        let flows = FlowSet::new(specs.into_iter().map(mesh_flow).collect()).unwrap();
        System::new(
            Topology::mesh(4, 4),
            NocConfig::default(),
            flows,
            &XyRouting,
        )
        .unwrap()
    }

    fn sample_batch() -> QueryBatch {
        QueryBatch {
            analysis: AnalysisKind::BufferAware,
            queries: vec![
                Query::Admission {
                    flow: mesh_flow((5, 6, 5, 3000)),
                },
                Query::Removal { id: FlowId::new(1) },
                Query::BufferWhatIf { depth: 8 },
                Query::Removal { id: FlowId::new(0) },
                Query::Admission {
                    flow: mesh_flow((0, 10, 6, 3500)),
                },
                Query::Removal { id: FlowId::new(3) },
            ],
        }
    }

    #[test]
    fn outcomes_are_thread_count_invariant() {
        let sys = base_system();
        let base = AnalysisContext::new(&sys).unwrap();
        let batch = sample_batch();
        let solo = run_batch(&base, &batch, &XyRouting, 1);
        assert_eq!(solo.outcomes.len(), batch.queries.len());
        for threads in [2, 4] {
            let sharded = run_batch(&base, &batch, &XyRouting, threads);
            assert_eq!(sharded.outcomes, solo.outcomes, "threads={threads}");
        }
    }

    #[test]
    fn queries_match_from_scratch_analysis() {
        let sys = base_system();
        let base = AnalysisContext::new(&sys).unwrap();
        let batch = sample_batch();
        let got = run_batch(&base, &batch, &XyRouting, 2);
        // Oracle: rebuild each what-if system from scratch.
        for (query, outcome) in batch.queries.iter().zip(&got.outcomes) {
            let expected_sys = match query {
                Query::Admission { flow } => {
                    sys.with_added_flow(flow.clone(), &XyRouting).unwrap().0
                }
                Query::Removal { id } => sys.without_flow(*id).unwrap(),
                Query::BufferWhatIf { depth } => sys.with_buffer_depth(*depth),
            };
            let report = batch.analysis.as_analysis().analyze(&expected_sys).unwrap();
            assert_eq!(outcome, &QueryOutcome::from_report(&report), "{query:?}");
        }
    }

    #[test]
    fn infeasible_queries_are_reported_not_fatal() {
        let sys = base_system();
        let base = AnalysisContext::new(&sys).unwrap();
        let batch = QueryBatch {
            analysis: AnalysisKind::Xlwx,
            queries: vec![
                // Duplicate priority: rejected by flow-set validation.
                Query::Admission {
                    flow: mesh_flow((5, 6, 1, 3000)),
                },
                Query::Removal {
                    id: FlowId::new(99),
                },
                // A sane query after the failures still works.
                Query::BufferWhatIf { depth: 4 },
            ],
        };
        let report = run_batch(&base, &batch, &XyRouting, 2);
        assert!(matches!(
            report.outcomes[0],
            QueryOutcome::Infeasible { .. }
        ));
        assert!(matches!(
            report.outcomes[1],
            QueryOutcome::Infeasible { .. }
        ));
        assert!(!matches!(
            report.outcomes[2],
            QueryOutcome::Infeasible { .. }
        ));
        let (_, _, infeasible) = report.tally();
        assert_eq!(infeasible, 2);
    }

    #[test]
    fn empty_batch_is_fine() {
        let sys = base_system();
        let base = AnalysisContext::new(&sys).unwrap();
        let batch = QueryBatch {
            analysis: AnalysisKind::ShiBurns,
            queries: Vec::new(),
        };
        let report = run_batch(&base, &batch, &XyRouting, 4);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.tally(), (0, 0, 0));
    }
}
