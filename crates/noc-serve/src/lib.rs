//! Batch query serving for admission-control workloads.
//!
//! An online admission controller for a priority-preemptive NoC faces a
//! stream of *what-if* questions against one live system: *can this flow
//! join? what happens when that one retires? does a cheaper router with
//! smaller buffers still certify?* Each question is a full schedulability
//! run in miniature, and fleets of them arrive together (e.g. scoring every
//! placement candidate for a new task). This crate turns the incremental
//! machinery of `noc-analysis` into a throughput-oriented front-end for
//! exactly that shape of work.
//!
//! # Query model
//!
//! A [`QueryBatch`] pairs one [`AnalysisKind`] with a list of [`Query`]
//! values, evaluated independently against the same *base* system:
//!
//! * [`Query::Admission`] — add a candidate flow, re-certify, roll back;
//! * [`Query::Removal`] — retire an existing flow, re-certify, restore;
//! * [`Query::BufferWhatIf`] — re-certify at a different buffer depth;
//! * [`Query::RouterBufferWhatIf`] — re-certify with **one** router's
//!   buffers resized (heterogeneous depths), served through the shard's
//!   [`IncrementalContext::resize_buffer`] with a restore afterwards.
//!
//! Every query answers with a [`QueryOutcome`]; the batch reports wall
//! time and queries/second in its [`BatchReport`].
//!
//! # Deduplication via rebase, sharding via worker threads
//!
//! The expensive derived structure — the interference graph — is built
//! **once** for the base system, inside the shared
//! [`AnalysisContext`]. From there two cheap forks serve all queries:
//!
//! * buffer what-ifs share the graph itself through
//!   [`AnalysisContext::rebase`] (an `Arc` clone: zero copying), because a
//!   buffer depth change preserves the interference structure;
//! * flow mutations need a *mutable* graph, so each worker thread forks one
//!   [`IncrementalContext`] from the base (`from_context` clones the graph
//!   rather than re-deriving it) and then serves all its queries through
//!   add → dirty-bit re-solve → remove undo cycles, touching only the
//!   interference neighbourhood each candidate overlaps.
//!
//! Queries are sharded across threads in contiguous chunks via
//! `par_map_indexed`; outcomes come back in submission order regardless of
//! scheduling.
//!
//! # Fault tolerance
//!
//! [`run_batch_with`] hardens the same pipeline for serving under duress;
//! every query ends in **exactly one terminal [`QueryOutcome`]**, whatever
//! fails along the way:
//!
//! * **Validation** — malformed queries (unknown flow id, clashing
//!   priority, zero period/payload/depth) are rejected up front as
//!   [`QueryOutcome::Failed`] with [`ServeError::InvalidQuery`], before any
//!   solver work.
//! * **Deadlines and degradation** — with [`ServeOptions::deadline`] set,
//!   each solve runs under a cooperative [`Budget`]; when it expires (or
//!   the fixed point trips the convergence cap) the query still answers,
//!   as [`QueryOutcome::Degraded`] computed from the cheap conservative
//!   bound of [`noc_analysis::conservative`] — never optimistic, pinned by
//!   the `chaos_serving` integration test.
//! * **Isolation and retry** — each serve attempt runs inside
//!   `catch_unwind`; a panicking worker poisons only its own shard, which
//!   is re-forked from the shared base, and the query is retried with
//!   bounded backoff ([`ServeOptions::max_retries`]) before surfacing as
//!   [`ServeError::Panicked`].
//! * **Load shedding** — with [`ServeOptions::max_pending`] set, queries
//!   beyond the bound answer [`QueryOutcome::Shed`] without being served
//!   (deterministic in the batch index, so thread-count invariant).
//! * **Fault injection** — a seeded [`fault::FaultPlan`] deterministically
//!   injects panics, delays and solver-budget cancellations at query
//!   granularity, driving the chaos tests and the CI smoke run.
//!
//! With [`ServeOptions::default`] (no deadline, no shedding, no faults)
//! [`run_batch_with`] is bit-identical to [`run_batch`], which delegates to
//! it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fault;
pub mod metrics;

use std::env;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use noc_analysis::analysis::AnalysisKind;
use noc_analysis::budget::Budget;
use noc_analysis::context::AnalysisContext;
use noc_analysis::error::AnalysisError;
use noc_analysis::incremental::IncrementalContext;
use noc_analysis::report::AnalysisReport;
pub use noc_experiments::runner::default_threads;
use noc_model::flow::Flow;
use noc_model::ids::FlowId;
use noc_model::routing::RoutingAlgorithm;

use crate::fault::{Fault, FaultPlan};

/// One admission-control what-if against the batch's base system.
#[derive(Debug, Clone)]
pub enum Query {
    /// Can `flow` be admitted — is the system still schedulable with it?
    /// The flow is routed by the batch's routing algorithm and removed
    /// again after the verdict, so queries stay independent.
    Admission {
        /// The candidate flow (its priority must be unused in the base
        /// system).
        flow: Flow,
    },
    /// Is the system still schedulable when the flow `id` (a base-system
    /// id) retires? The flow is restored after the verdict.
    Removal {
        /// Base-system id of the flow to retire hypothetically.
        id: FlowId,
    },
    /// Is the system schedulable with every router buffer resized to
    /// `depth` flits? Interference structure is preserved, so this is
    /// served from the shared base context without any graph work.
    BufferWhatIf {
        /// Hypothetical homogeneous buffer depth, in flits (≥ 1).
        depth: u32,
    },
    /// Is the system schedulable when **one** router's buffers are resized
    /// to `depth` flits, all other routers keeping their base depth? The
    /// heterogeneous counterpart of [`Query::BufferWhatIf`] — e.g. scoring
    /// a cheaper switch at a single mesh position. Served through the
    /// shard's [`IncrementalContext::resize_buffer`], which re-solves only
    /// the flows whose buffered-interference terms read that router; the
    /// depth is restored afterwards, so queries stay independent.
    RouterBufferWhatIf {
        /// The router whose buffers are hypothetically resized.
        router: noc_model::ids::RouterId,
        /// Hypothetical buffer depth at that router, in flits (≥ 1).
        depth: u32,
    },
}

/// A set of independent queries evaluated under one analysis.
#[derive(Debug, Clone)]
pub struct QueryBatch {
    /// The analysis certifying every what-if system.
    pub analysis: AnalysisKind,
    /// The queries, answered in order.
    pub queries: Vec<Query>,
}

/// Why a query answered with a conservative [`QueryOutcome::Degraded`]
/// verdict instead of an exact one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The solve's wall-clock [`Budget`] expired (or was cancelled) before
    /// the fixed point converged.
    DeadlineExceeded,
    /// The fixed-point iteration exhausted the solver's convergence safety
    /// cap.
    ConvergenceCap,
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            DegradeReason::ConvergenceCap => write!(f, "convergence cap"),
        }
    }
}

/// A terminal serving failure — the query could not be answered, exactly
/// and degradedly alike.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The query failed batch validation and was never served.
    InvalidQuery {
        /// What is malformed about the query.
        reason: String,
    },
    /// Every serve attempt (including retries against a re-forked shard)
    /// panicked.
    Panicked {
        /// The panic message of the last attempt.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidQuery { reason } => write!(f, "invalid query: {reason}"),
            ServeError::Panicked { detail } => {
                write!(f, "query panicked on every attempt: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// The verdict of one query. Every served query gets exactly one of these;
/// [`Accepted`](QueryOutcome::Accepted),
/// [`Rejected`](QueryOutcome::Rejected) and
/// [`Infeasible`](QueryOutcome::Infeasible) are exact answers, the rest are
/// the fault-tolerance surface of [`run_batch_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The what-if system is schedulable under the batch's analysis.
    Accepted,
    /// The what-if system is analysable but `failing` flows miss their
    /// bound.
    Rejected {
        /// Number of flows without a schedulable verdict.
        failing: u32,
    },
    /// The what-if system cannot be built at all — unroutable candidate,
    /// duplicate priority, out-of-range id, … The reason is the model
    /// error's display form.
    Infeasible {
        /// Human-readable cause.
        reason: String,
    },
    /// The exact solve ran out of budget (or hit the convergence cap), so
    /// the answer comes from the *conservative* non-iterative bound: never
    /// optimistic — `failing == 0` guarantees the exact analysis would
    /// accept too, and a nonzero count may include flows an exact solve
    /// would clear.
    Degraded {
        /// Why the exact solve was abandoned.
        reason: DegradeReason,
        /// Flows the conservative bound cannot certify.
        failing: u32,
    },
    /// Load-shed unserved: the query's batch index exceeded
    /// [`ServeOptions::max_pending`].
    Shed,
    /// Terminal failure — validation rejection or exhausted retries.
    Failed {
        /// What went wrong.
        error: ServeError,
    },
}

impl QueryOutcome {
    fn from_report(report: &AnalysisReport) -> QueryOutcome {
        let failing = failing_count(report);
        if failing == 0 {
            QueryOutcome::Accepted
        } else {
            QueryOutcome::Rejected { failing }
        }
    }

    /// `true` for [`QueryOutcome::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, QueryOutcome::Accepted)
    }
}

fn failing_count(report: &AnalysisReport) -> u32 {
    report.iter().filter(|(_, v)| !v.is_schedulable()).count() as u32
}

/// Outcome counts of one batch, one field per [`QueryOutcome`] variant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeTally {
    /// [`QueryOutcome::Accepted`] answers.
    pub accepted: usize,
    /// [`QueryOutcome::Rejected`] answers.
    pub rejected: usize,
    /// [`QueryOutcome::Infeasible`] answers.
    pub infeasible: usize,
    /// [`QueryOutcome::Degraded`] answers.
    pub degraded: usize,
    /// [`QueryOutcome::Shed`] answers.
    pub shed: usize,
    /// [`QueryOutcome::Failed`] answers.
    pub failed: usize,
}

/// Outcomes and throughput of one [`run_batch`] call.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-query verdicts, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// Wall-clock time of the sharded evaluation, in nanoseconds.
    pub wall_ns: u128,
    /// Worker threads used.
    pub threads: usize,
    /// Time each shard spent serving its chunk, in nanoseconds, in shard
    /// order — the load-balance picture behind `wall_ns`.
    pub shard_busy_ns: Vec<u128>,
}

impl BatchReport {
    /// Answered queries per second of wall time.
    pub fn queries_per_second(&self) -> f64 {
        if self.wall_ns == 0 {
            return f64::INFINITY;
        }
        self.outcomes.len() as f64 * 1e9 / self.wall_ns as f64
    }

    /// Fraction of the batch's wall time each shard spent serving queries,
    /// in shard order (1.0 ⇔ busy for the whole batch; a low outlier marks
    /// an under-loaded shard).
    pub fn shard_utilization(&self) -> Vec<f64> {
        if self.wall_ns == 0 {
            return vec![1.0; self.shard_busy_ns.len()];
        }
        self.shard_busy_ns
            .iter()
            .map(|&b| b as f64 / self.wall_ns as f64)
            .collect()
    }

    /// Outcome counts, one field per variant.
    pub fn tally(&self) -> OutcomeTally {
        let mut t = OutcomeTally::default();
        for o in &self.outcomes {
            match o {
                QueryOutcome::Accepted => t.accepted += 1,
                QueryOutcome::Rejected { .. } => t.rejected += 1,
                QueryOutcome::Infeasible { .. } => t.infeasible += 1,
                QueryOutcome::Degraded { .. } => t.degraded += 1,
                QueryOutcome::Shed => t.shed += 1,
                QueryOutcome::Failed { .. } => t.failed += 1,
            }
        }
        t
    }
}

/// Serving policy for [`run_batch_with`]: deadlines, shedding, retries and
/// fault injection. [`ServeOptions::default`] disables all four, making
/// [`run_batch_with`] bit-identical to [`run_batch`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Per-query wall-clock solve budget. `None` (default) solves without
    /// any budget — the solver's fast path, one cached branch per
    /// iteration.
    pub deadline: Option<Duration>,
    /// Bounded pending-queue depth: queries with batch index `>= max_pending`
    /// are shed as [`QueryOutcome::Shed`] without being served. `None`
    /// (default) serves everything.
    pub max_pending: Option<usize>,
    /// Retries after a caught worker panic (the shard is re-forked before
    /// each retry, with bounded doubling backoff). Default 2.
    pub max_retries: u32,
    /// Deterministic fault injection plan; `None` (default) injects
    /// nothing.
    pub faults: Option<FaultPlan>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            deadline: None,
            max_pending: None,
            max_retries: 2,
            faults: None,
        }
    }
}

impl ServeOptions {
    /// Reads the serving policy from the environment:
    ///
    /// * `NOC_SERVE_DEADLINE_MS` — per-query solve budget in milliseconds;
    /// * `NOC_SERVE_MAX_PENDING` — pending-queue bound (shed beyond it);
    /// * `NOC_FAULT_SEED` / `NOC_FAULT_RATE` — fault injection (see
    ///   [`FaultPlan::from_env`]).
    ///
    /// Unset or unparsable variables leave the corresponding default
    /// (lenient); front-ends that should fail loudly on misconfiguration
    /// use [`ServeOptions::try_from_env`].
    pub fn from_env() -> ServeOptions {
        let parse_u64 = |name: &str| {
            env::var(name)
                .ok()
                .and_then(|s| s.trim().parse::<u64>().ok())
        };
        ServeOptions {
            deadline: parse_u64("NOC_SERVE_DEADLINE_MS").map(Duration::from_millis),
            max_pending: parse_u64("NOC_SERVE_MAX_PENDING").map(|n| n as usize),
            faults: FaultPlan::from_env(),
            ..ServeOptions::default()
        }
    }

    /// Strict variant of [`ServeOptions::from_env`]: a variable that is
    /// set but unparsable is an `Err` naming it, not a silently-applied
    /// default.
    pub fn try_from_env() -> Result<ServeOptions, String> {
        let parse_u64 = |name: &str| -> Result<Option<u64>, String> {
            match env::var(name) {
                Err(_) => Ok(None),
                Ok(s) => s
                    .trim()
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|e| format!("invalid {name} {s:?}: {e}")),
            }
        };
        Ok(ServeOptions {
            deadline: parse_u64("NOC_SERVE_DEADLINE_MS")?.map(Duration::from_millis),
            max_pending: parse_u64("NOC_SERVE_MAX_PENDING")?.map(|n| n as usize),
            faults: FaultPlan::try_from_env()?,
            ..ServeOptions::default()
        })
    }
}

/// Checks one query against the base system before any serving work.
/// Returns the rejection reason for malformed queries.
fn validate(base: &AnalysisContext<'_>, query: &Query) -> Option<String> {
    match query {
        Query::Admission { flow } => {
            if flow.period().as_u64() == 0 {
                return Some("admission candidate has a zero period".to_string());
            }
            if flow.deadline().as_u64() == 0 {
                return Some("admission candidate has a zero deadline".to_string());
            }
            if flow.length_flits() == 0 {
                return Some("admission candidate has a zero-flit payload".to_string());
            }
            if flow.source() == flow.dest() {
                return Some(format!(
                    "admission candidate routes {} to itself",
                    flow.source()
                ));
            }
            let system = base.system();
            system
                .flows()
                .ids()
                .find(|&id| system.flow(id).priority() == flow.priority())
                .map(|clash| {
                    format!("admission candidate duplicates the priority of base flow {clash}")
                })
        }
        Query::Removal { id } => {
            (id.index() >= base.len()).then(|| format!("no flow {id} in the base system"))
        }
        Query::BufferWhatIf { depth } => {
            (*depth == 0).then(|| "buffer what-if depth must be at least 1 flit".to_string())
        }
        Query::RouterBufferWhatIf { router, depth } => {
            if *depth == 0 {
                return Some("buffer what-if depth must be at least 1 flit".to_string());
            }
            (router.index() >= base.system().topology().router_count())
                .then(|| format!("no router {router} in the base topology"))
        }
    }
}

/// How a query will be handled, decided up front on the submitting thread
/// so the decision is independent of sharding.
enum Disposition {
    Serve,
    Shed,
    Invalid(String),
}

/// Maps a solve result to an outcome, answering budget/convergence
/// failures with the conservative bound produced by `conservative`
/// (invoked only on the degraded path).
fn outcome_of(
    result: Result<AnalysisReport, AnalysisError>,
    conservative: impl FnOnce() -> AnalysisReport,
) -> QueryOutcome {
    let reason = match result {
        Ok(report) => return QueryOutcome::from_report(&report),
        Err(AnalysisError::DeadlineExceeded { .. }) => DegradeReason::DeadlineExceeded,
        Err(AnalysisError::ConvergenceCap { .. }) => DegradeReason::ConvergenceCap,
        Err(e) => {
            return QueryOutcome::Infeasible {
                reason: e.to_string(),
            }
        }
    };
    metrics::DEGRADED.incr();
    QueryOutcome::Degraded {
        reason,
        failing: failing_count(&conservative()),
    }
}

/// Mutable per-shard serving state: an incremental context plus the
/// base-id → current-id permutation that removal/restore cycles induce.
struct Shard<'a> {
    ctx: IncrementalContext,
    /// `map[base.index()]` = the flow's id in `ctx` right now. Removing a
    /// flow shifts every larger id down; restoring it appends at the end.
    map: Vec<FlowId>,
    routing: &'a (dyn RoutingAlgorithm + Sync),
    kind: AnalysisKind,
}

impl<'a> Shard<'a> {
    fn new(
        base: &AnalysisContext<'_>,
        routing: &'a (dyn RoutingAlgorithm + Sync),
        kind: AnalysisKind,
    ) -> Shard<'a> {
        let n = base.len();
        metrics::CONTEXT_FORKS.incr();
        Shard {
            ctx: IncrementalContext::from_context(base),
            map: (0..n as u32).map(FlowId::new).collect(),
            routing,
            kind,
        }
    }

    /// Runs the batch's analysis over the shard's current flow set, under
    /// `budget` if one is installed.
    fn analyze(&mut self, budget: Option<&Budget>) -> Result<AnalysisReport, AnalysisError> {
        match budget {
            Some(budget) => self.ctx.analyze_with_budget(self.kind, budget),
            None => self.ctx.analyze(self.kind),
        }
    }

    fn serve(
        &mut self,
        base: &AnalysisContext<'_>,
        query: &Query,
        budget: Option<&Budget>,
    ) -> QueryOutcome {
        let _span = metrics::QUERY_LATENCY_NS.span();
        metrics::QUERIES_SERVED.incr();
        match query {
            Query::Admission { flow } => match self.ctx.add_flow(flow.clone(), self.routing) {
                Ok(id) => {
                    let result = self.analyze(budget);
                    // Interpret before rolling back: the degraded path reads
                    // the conservative bound of the system *with* the
                    // candidate admitted.
                    let outcome = outcome_of(result, || self.ctx.conservative_report());
                    self.ctx
                        .remove_flow(id)
                        .expect("the just-admitted flow exists");
                    outcome
                }
                Err(e) => QueryOutcome::Infeasible {
                    reason: e.to_string(),
                },
            },
            Query::Removal { id } => {
                let Some(&current) = self.map.get(id.index()) else {
                    return QueryOutcome::Infeasible {
                        reason: format!("no flow {id} in the base system"),
                    };
                };
                let flow = self.ctx.system().flows().flow(current).clone();
                self.ctx
                    .remove_flow(current)
                    .expect("mapped ids stay in bounds");
                let result = self.analyze(budget);
                // Interpret before restoring (the degraded bound describes
                // the retired-flow system); restore before returning (even
                // a failed solve must not leak a mutated shard).
                let outcome = outcome_of(result, || self.ctx.conservative_report());
                // Deterministic routing reproduces the original route, so
                // only the id changes — track it in the map.
                let restored = self
                    .ctx
                    .add_flow(flow, self.routing)
                    .expect("restoring a previously admitted flow cannot fail");
                for m in self.map.iter_mut() {
                    if *m > current {
                        *m = FlowId::new(m.raw() - 1);
                    }
                }
                self.map[id.index()] = restored;
                outcome
            }
            Query::BufferWhatIf { depth } => {
                let what_if = base.system().with_buffer_depth(*depth);
                match base.rebase(&what_if) {
                    Ok(ctx) => {
                        metrics::CONTEXT_REBASES.incr();
                        let result = match budget {
                            Some(budget) => self.kind.analyze_with_budget(&ctx, budget),
                            None => self.kind.as_analysis().analyze_with(&ctx),
                        };
                        outcome_of(result, || noc_analysis::conservative_with(&ctx))
                    }
                    Err(e) => QueryOutcome::Infeasible {
                        reason: e.to_string(),
                    },
                }
            }
            Query::RouterBufferWhatIf { router, depth } => {
                let original = self.ctx.system().buffer_depth_at(*router);
                self.ctx.resize_buffer(*router, *depth);
                let result = self.analyze(budget);
                // Interpret before restoring: the degraded bound describes
                // the resized system. (The conservative bound ignores
                // buffer depths, but the report must still be taken from
                // the what-if state for consistency.)
                let outcome = outcome_of(result, || self.ctx.conservative_report());
                // Restoring sets an override equal to the original depth,
                // which is numerically identical to the base system on
                // every analysis path.
                self.ctx.resize_buffer(*router, original);
                outcome
            }
        }
    }
}

/// Bounded doubling backoff between retries: 1, 2, 4, then 8 ms flat.
fn backoff(attempt: u32) -> Duration {
    Duration::from_millis(1u64 << attempt.min(3))
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Serves one query inside the isolation boundary: fault injection, panic
/// capture, shard re-fork and bounded retry. Always returns a terminal
/// outcome.
fn serve_isolated(
    shard: &mut Shard<'_>,
    base: &AnalysisContext<'_>,
    query: &Query,
    index: usize,
    options: &ServeOptions,
) -> QueryOutcome {
    let mut attempt = 0u32;
    loop {
        let fault = options
            .faults
            .map_or(Fault::None, |plan| plan.fault_for(index, attempt));
        if fault != Fault::None {
            metrics::FAULTS_INJECTED.incr();
            if noc_telemetry::enabled() {
                noc_telemetry::events::emit(
                    "serve.fault",
                    &[
                        ("kind", fault.name().into()),
                        ("query", (index as u64).into()),
                        ("attempt", u64::from(attempt).into()),
                    ],
                );
            }
        }
        // The budget is created before any injected delay, so a slow worker
        // genuinely eats into its own deadline.
        let budget = match (fault, options.deadline) {
            (Fault::CancelSolve, _) => {
                let budget = Budget::unlimited();
                budget.cancel();
                Some(budget)
            }
            (_, Some(limit)) => Some(Budget::with_deadline(limit)),
            (_, None) => None,
        };
        if let Fault::Delay { ms } = fault {
            std::thread::sleep(Duration::from_millis(ms));
        }
        let inject_panic = matches!(fault, Fault::Panic { .. });
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected fault: panic serving query {index} (attempt {attempt})");
            }
            shard.serve(base, query, budget.as_ref())
        }));
        match result {
            Ok(outcome) => return outcome,
            Err(payload) => {
                metrics::PANICS_CAUGHT.incr();
                // The unwound serve may have left the shard mid-mutation
                // (flow admitted but not rolled back): re-fork from the
                // shared base rather than trusting poisoned state.
                metrics::SHARD_REBUILDS.incr();
                *shard = Shard::new(base, shard.routing, shard.kind);
                if attempt < options.max_retries {
                    metrics::RETRIES.incr();
                    std::thread::sleep(backoff(attempt));
                    attempt += 1;
                } else {
                    metrics::FAILED.incr();
                    return QueryOutcome::Failed {
                        error: ServeError::Panicked {
                            detail: panic_detail(payload.as_ref()),
                        },
                    };
                }
            }
        }
    }
}

/// A deterministic sample query mix for demos and benchmarks: admissions
/// (templated on existing source/dest pairs with a fresh priority),
/// removals, homogeneous buffer what-ifs, and single-router buffer
/// what-ifs, in a 2:1:1:1 ratio.
pub fn sample_queries(system: &noc_model::system::System, n: usize) -> Vec<Query> {
    let ids: Vec<FlowId> = system.flows().ids().collect();
    let routers = system.topology().router_count();
    let fresh_priority = noc_model::ids::Priority::new(ids.len() as u32 + 1);
    (0..n)
        .map(|i| match i % 5 {
            2 => Query::Removal {
                id: ids[i % ids.len()],
            },
            3 => Query::BufferWhatIf {
                depth: 1 + (i % 8) as u32,
            },
            4 => Query::RouterBufferWhatIf {
                router: noc_model::ids::RouterId::new((i % routers) as u32),
                depth: 2 + (i % 7) as u32,
            },
            _ => {
                let template = system.flows().flow(ids[i % ids.len()]);
                Query::Admission {
                    flow: Flow::builder(template.source(), template.dest())
                        .priority(fresh_priority)
                        .period(template.period())
                        .length_flits(4 + (i as u32 % 61))
                        .build(),
                }
            }
        })
        .collect()
}

/// Evaluates `batch` against the system of `base`, sharding the queries
/// over `threads` worker threads.
///
/// Equivalent to [`run_batch_with`] under [`ServeOptions::default`]: no
/// deadlines, no shedding, no fault injection.
///
/// Each shard serves a contiguous chunk of the batch so outcomes return in
/// submission order. Worker state is forked from `base` (see the
/// [module docs](self) for the dedup structure); the base context itself is
/// only read.
///
/// `routing` must be deterministic (the same `(source, dest)` always yields
/// the same route) — true of every algorithm in `noc-model` — so that
/// removal queries can restore the flow they retired.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn run_batch(
    base: &AnalysisContext<'_>,
    batch: &QueryBatch,
    routing: &(dyn RoutingAlgorithm + Sync),
    threads: usize,
) -> BatchReport {
    run_batch_with(base, batch, routing, threads, &ServeOptions::default())
}

/// [`run_batch`] under an explicit serving policy: per-query deadlines
/// with conservative degradation, panic isolation with shard re-forking
/// and bounded retry, load shedding, and deterministic fault injection.
/// See the *Fault tolerance* section of the [module docs](self).
///
/// Every query maps to exactly one terminal [`QueryOutcome`]; the call
/// itself never panics on a worker failure.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn run_batch_with(
    base: &AnalysisContext<'_>,
    batch: &QueryBatch,
    routing: &(dyn RoutingAlgorithm + Sync),
    threads: usize,
    options: &ServeOptions,
) -> BatchReport {
    assert!(threads > 0, "need at least one worker thread");
    let n = batch.queries.len();
    // Validation and shedding decisions happen up front, on the submitting
    // thread, in submission order — deterministic in the batch alone.
    let dispositions: Vec<Disposition> = batch
        .queries
        .iter()
        .enumerate()
        .map(|(i, query)| {
            if let Some(reason) = validate(base, query) {
                metrics::INVALID.incr();
                Disposition::Invalid(reason)
            } else if options.max_pending.is_some_and(|cap| i >= cap) {
                metrics::SHED.incr();
                Disposition::Shed
            } else {
                Disposition::Serve
            }
        })
        .collect();
    let shards = threads.min(n.max(1));
    // Contiguous chunks, the first `n % shards` one longer.
    let chunk = n / shards;
    let extra = n % shards;
    let bounds: Vec<(usize, usize)> = (0..shards)
        .scan(0usize, |start, s| {
            let len = chunk + usize::from(s < extra);
            let range = (*start, *start + len);
            *start += len;
            Some(range)
        })
        .collect();
    let started = Instant::now();
    let per_shard: Vec<(Vec<QueryOutcome>, u128)> =
        noc_experiments::runner::par_map_indexed(shards, shards, |s| {
            let (lo, hi) = bounds[s];
            let busy = Instant::now();
            let mut shard = Shard::new(base, routing, batch.analysis);
            let outcomes: Vec<QueryOutcome> = (lo..hi)
                .map(|i| match &dispositions[i] {
                    Disposition::Invalid(reason) => QueryOutcome::Failed {
                        error: ServeError::InvalidQuery {
                            reason: reason.clone(),
                        },
                    },
                    Disposition::Shed => QueryOutcome::Shed,
                    Disposition::Serve => {
                        serve_isolated(&mut shard, base, &batch.queries[i], i, options)
                    }
                })
                .collect();
            (outcomes, busy.elapsed().as_nanos())
        });
    let wall_ns = started.elapsed().as_nanos();
    metrics::BATCHES.incr();
    if noc_telemetry::enabled() {
        noc_telemetry::events::emit(
            "serve.batch",
            &[
                ("analysis", batch.analysis.name().into()),
                ("queries", (n as u64).into()),
                ("shards", (shards as u64).into()),
                ("wall_ns", u64::try_from(wall_ns).unwrap_or(u64::MAX).into()),
            ],
        );
    }
    let mut outcomes = Vec::with_capacity(n);
    let mut shard_busy_ns = Vec::with_capacity(shards);
    for (chunk_outcomes, busy_ns) in per_shard {
        outcomes.extend(chunk_outcomes);
        shard_busy_ns.push(busy_ns);
    }
    BatchReport {
        outcomes,
        wall_ns,
        threads: shards,
        shard_busy_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::prelude::*;

    fn mesh_flow((src, dst, p, t): (u32, u32, u32, u64)) -> Flow {
        Flow::builder(NodeId::new(src), NodeId::new(dst))
            .priority(Priority::new(p))
            .period(Cycles::new(t))
            .length_flits(8)
            .build()
    }

    fn base_system() -> System {
        let specs = [
            (0, 15, 1, 1000),
            (4, 7, 2, 1500),
            (12, 3, 3, 2000),
            (1, 13, 4, 2500),
        ];
        let flows = FlowSet::new(specs.into_iter().map(mesh_flow).collect()).unwrap();
        System::new(
            Topology::mesh(4, 4),
            NocConfig::default(),
            flows,
            &XyRouting,
        )
        .unwrap()
    }

    fn sample_batch() -> QueryBatch {
        QueryBatch {
            analysis: AnalysisKind::BufferAware,
            queries: vec![
                Query::Admission {
                    flow: mesh_flow((5, 6, 5, 3000)),
                },
                Query::Removal { id: FlowId::new(1) },
                Query::BufferWhatIf { depth: 8 },
                Query::Removal { id: FlowId::new(0) },
                Query::Admission {
                    flow: mesh_flow((0, 10, 6, 3500)),
                },
                Query::Removal { id: FlowId::new(3) },
                Query::RouterBufferWhatIf {
                    router: RouterId::new(5),
                    depth: 16,
                },
                Query::RouterBufferWhatIf {
                    router: RouterId::new(0),
                    depth: 1,
                },
            ],
        }
    }

    #[test]
    fn outcomes_are_thread_count_invariant() {
        let sys = base_system();
        let base = AnalysisContext::new(&sys).unwrap();
        let batch = sample_batch();
        let solo = run_batch(&base, &batch, &XyRouting, 1);
        assert_eq!(solo.outcomes.len(), batch.queries.len());
        for threads in [2, 4] {
            let sharded = run_batch(&base, &batch, &XyRouting, threads);
            assert_eq!(sharded.outcomes, solo.outcomes, "threads={threads}");
        }
    }

    #[test]
    fn queries_match_from_scratch_analysis() {
        let sys = base_system();
        let base = AnalysisContext::new(&sys).unwrap();
        let batch = sample_batch();
        let got = run_batch(&base, &batch, &XyRouting, 2);
        // Oracle: rebuild each what-if system from scratch.
        for (query, outcome) in batch.queries.iter().zip(&got.outcomes) {
            let expected_sys = match query {
                Query::Admission { flow } => {
                    sys.with_added_flow(flow.clone(), &XyRouting).unwrap().0
                }
                Query::Removal { id } => sys.without_flow(*id).unwrap(),
                Query::BufferWhatIf { depth } => sys.with_buffer_depth(*depth),
                Query::RouterBufferWhatIf { router, depth } => {
                    sys.with_router_buffer_depth(*router, *depth)
                }
            };
            let report = batch.analysis.as_analysis().analyze(&expected_sys).unwrap();
            assert_eq!(outcome, &QueryOutcome::from_report(&report), "{query:?}");
        }
    }

    #[test]
    fn malformed_queries_fail_validation_not_the_batch() {
        let sys = base_system();
        let base = AnalysisContext::new(&sys).unwrap();
        let batch = QueryBatch {
            analysis: AnalysisKind::Xlwx,
            queries: vec![
                // Duplicate priority against the base system.
                Query::Admission {
                    flow: mesh_flow((5, 6, 1, 3000)),
                },
                // Unknown base flow id.
                Query::Removal {
                    id: FlowId::new(99),
                },
                // Zero period.
                Query::Admission {
                    flow: mesh_flow((5, 6, 7, 0)),
                },
                // Zero-flit payload.
                Query::Admission {
                    flow: Flow::builder(NodeId::new(5), NodeId::new(6))
                        .priority(Priority::new(8))
                        .period(Cycles::new(1000))
                        .length_flits(0)
                        .build(),
                },
                // Zero buffer depth.
                Query::BufferWhatIf { depth: 0 },
                // Zero per-router depth.
                Query::RouterBufferWhatIf {
                    router: RouterId::new(3),
                    depth: 0,
                },
                // Router outside the 4x4 mesh.
                Query::RouterBufferWhatIf {
                    router: RouterId::new(16),
                    depth: 4,
                },
                // A sane query after the failures still works.
                Query::BufferWhatIf { depth: 4 },
            ],
        };
        let report = run_batch(&base, &batch, &XyRouting, 2);
        let invalid = batch.queries.len() - 1;
        for (i, outcome) in report.outcomes[..invalid].iter().enumerate() {
            assert!(
                matches!(
                    outcome,
                    QueryOutcome::Failed {
                        error: ServeError::InvalidQuery { .. }
                    }
                ),
                "query {i}: {outcome:?}"
            );
        }
        assert!(!matches!(
            report.outcomes[invalid],
            QueryOutcome::Failed { .. }
        ));
        assert_eq!(report.tally().failed, invalid);
    }

    #[test]
    fn router_what_if_restores_the_shard_for_later_queries() {
        // A heterogeneous what-if must not leak its override into the
        // queries served after it on the same shard: single-threaded so
        // every query shares one shard, with the what-if first.
        let sys = base_system();
        let base = AnalysisContext::new(&sys).unwrap();
        let mut queries = vec![Query::RouterBufferWhatIf {
            router: RouterId::new(6),
            depth: 64,
        }];
        queries.extend(sample_batch().queries);
        let batch = QueryBatch {
            analysis: AnalysisKind::BufferAware,
            queries,
        };
        let expected = run_batch(&base, &sample_batch(), &XyRouting, 1);
        let got = run_batch(&base, &batch, &XyRouting, 1);
        assert_eq!(&got.outcomes[1..], &expected.outcomes[..]);
    }

    #[test]
    fn router_what_if_against_heterogeneous_base() {
        // The base system itself already has a per-router override; a
        // what-if on a *different* router must answer against the oracle
        // and leave the base override intact.
        let sys = base_system().with_router_buffer_depth(RouterId::new(10), 8);
        let base = AnalysisContext::new(&sys).unwrap();
        let query = Query::RouterBufferWhatIf {
            router: RouterId::new(5),
            depth: 3,
        };
        let batch = QueryBatch {
            analysis: AnalysisKind::BufferAware,
            queries: vec![query, Query::BufferWhatIf { depth: 4 }],
        };
        let report = run_batch(&base, &batch, &XyRouting, 1);
        let oracle_sys = sys.with_router_buffer_depth(RouterId::new(5), 3);
        let oracle = batch.analysis.as_analysis().analyze(&oracle_sys).unwrap();
        assert_eq!(report.outcomes[0], QueryOutcome::from_report(&oracle));
    }

    #[test]
    fn empty_batch_is_fine() {
        let sys = base_system();
        let base = AnalysisContext::new(&sys).unwrap();
        let batch = QueryBatch {
            analysis: AnalysisKind::ShiBurns,
            queries: Vec::new(),
        };
        let report = run_batch(&base, &batch, &XyRouting, 4);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.tally(), OutcomeTally::default());
    }

    #[test]
    fn default_options_match_run_batch() {
        let sys = base_system();
        let base = AnalysisContext::new(&sys).unwrap();
        let batch = sample_batch();
        let plain = run_batch(&base, &batch, &XyRouting, 2);
        let with = run_batch_with(&base, &batch, &XyRouting, 2, &ServeOptions::default());
        assert_eq!(plain.outcomes, with.outcomes);
    }

    #[test]
    fn shedding_is_deterministic_and_thread_invariant() {
        let sys = base_system();
        let base = AnalysisContext::new(&sys).unwrap();
        let batch = sample_batch();
        let options = ServeOptions {
            max_pending: Some(2),
            ..ServeOptions::default()
        };
        let clean = run_batch(&base, &batch, &XyRouting, 1);
        for threads in [1, 2, 4] {
            let report = run_batch_with(&base, &batch, &XyRouting, threads, &options);
            assert_eq!(&report.outcomes[..2], &clean.outcomes[..2], "{threads}");
            assert!(
                report.outcomes[2..]
                    .iter()
                    .all(|o| *o == QueryOutcome::Shed),
                "{threads}"
            );
            assert_eq!(report.tally().shed, batch.queries.len() - 2);
        }
    }

    #[test]
    fn zero_deadline_degrades_every_query_conservatively() {
        let sys = base_system();
        let base = AnalysisContext::new(&sys).unwrap();
        let batch = sample_batch();
        let options = ServeOptions {
            deadline: Some(Duration::ZERO),
            ..ServeOptions::default()
        };
        let clean = run_batch(&base, &batch, &XyRouting, 1);
        let report = run_batch_with(&base, &batch, &XyRouting, 2, &options);
        for (i, (degraded, exact)) in report.outcomes.iter().zip(&clean.outcomes).enumerate() {
            match degraded {
                QueryOutcome::Degraded {
                    reason: DegradeReason::DeadlineExceeded,
                    failing,
                } => {
                    // Conservative acceptance implies exact acceptance.
                    if *failing == 0 {
                        assert!(exact.is_accepted(), "query {i}");
                    }
                }
                other => panic!("query {i}: expected Degraded, got {other:?}"),
            }
        }
        assert_eq!(report.tally().degraded, batch.queries.len());
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let sys = base_system();
        let base = AnalysisContext::new(&sys).unwrap();
        let batch = sample_batch();
        let options = ServeOptions {
            deadline: Some(Duration::from_secs(3600)),
            ..ServeOptions::default()
        };
        let clean = run_batch(&base, &batch, &XyRouting, 2);
        let report = run_batch_with(&base, &batch, &XyRouting, 2, &options);
        assert_eq!(report.outcomes, clean.outcomes);
    }

    /// Keeps injected-fault panics out of the test output; every other
    /// panic still reaches the default hook (and fails tests normally).
    fn quiet_injected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.starts_with("injected fault:"));
                if !injected {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn injected_transient_panics_are_retried_to_the_exact_answer() {
        quiet_injected_panics();
        let sys = base_system();
        let base = AnalysisContext::new(&sys).unwrap();
        let batch = sample_batch();
        let clean = run_batch(&base, &batch, &XyRouting, 1);
        // Find a seed whose plan panics transiently on at least one query
        // of this batch — deterministically, by scanning plans.
        let plan = (0..4096)
            .map(|seed| FaultPlan::new(seed, 1.0))
            .find(|plan| {
                (0..batch.queries.len())
                    .any(|q| plan.fault_for(q, 0) == Fault::Panic { persistent: false })
                    && (0..batch.queries.len())
                        .all(|q| plan.fault_for(q, 0) != Fault::Panic { persistent: true })
                    && (0..batch.queries.len()).all(|q| plan.fault_for(q, 0) != Fault::CancelSolve)
            })
            .expect("some seed panics transiently without persistent/cancel faults");
        let options = ServeOptions {
            faults: Some(plan),
            ..ServeOptions::default()
        };
        let report = run_batch_with(&base, &batch, &XyRouting, 2, &options);
        // Transient panics and delays are absorbed: outcomes match the
        // never-faulted run exactly.
        assert_eq!(report.outcomes, clean.outcomes);
    }

    #[test]
    fn persistent_panics_exhaust_retries_into_failed() {
        quiet_injected_panics();
        let sys = base_system();
        let base = AnalysisContext::new(&sys).unwrap();
        let batch = sample_batch();
        let clean = run_batch(&base, &batch, &XyRouting, 1);
        let plan = (0..256)
            .map(|seed| FaultPlan::new(seed, 1.0))
            .find(|plan| {
                (0..batch.queries.len())
                    .any(|q| plan.fault_for(q, 0) == Fault::Panic { persistent: true })
            })
            .expect("some seed injects a persistent panic");
        let options = ServeOptions {
            faults: Some(plan),
            max_retries: 1,
            ..ServeOptions::default()
        };
        let report = run_batch_with(&base, &batch, &XyRouting, 2, &options);
        let mut saw_failed = false;
        for (i, outcome) in report.outcomes.iter().enumerate() {
            match plan.fault_for(i, 0) {
                Fault::Panic { persistent: true } => {
                    assert!(
                        matches!(
                            outcome,
                            QueryOutcome::Failed {
                                error: ServeError::Panicked { .. }
                            }
                        ),
                        "query {i}: {outcome:?}"
                    );
                    saw_failed = true;
                }
                Fault::CancelSolve => {
                    assert!(
                        matches!(outcome, QueryOutcome::Degraded { .. }),
                        "query {i}: {outcome:?}"
                    );
                }
                _ => {
                    // Transient faults resolve to the exact answer; later
                    // queries on a shard that failed earlier still serve
                    // correctly off the re-forked context.
                    assert_eq!(outcome, &clean.outcomes[i], "query {i}");
                }
            }
        }
        assert!(saw_failed);
    }

    #[test]
    fn serve_options_from_env_defaults_are_inert() {
        // The test environment does not set the serve variables; from_env
        // must then equal the default policy.
        if env::var("NOC_SERVE_DEADLINE_MS").is_err()
            && env::var("NOC_SERVE_MAX_PENDING").is_err()
            && env::var("NOC_FAULT_SEED").is_err()
        {
            let options = ServeOptions::from_env();
            assert_eq!(options.deadline, None);
            assert_eq!(options.max_pending, None);
            assert_eq!(options.faults, None);
        }
    }
}
