//! Bench T1/T2: regenerates Tables I and II (reduced offset sweep) and
//! measures the cost of each analysis and of one didactic simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_analysis::prelude::*;
use noc_experiments::table2;
use noc_model::prelude::*;
use noc_sim::prelude::*;
use noc_workload::didactic;
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    // Regenerate the paper's tables once (coarse 10-cycle sweep).
    println!(
        "\n=== Table I (flow parameters) ===\n{}",
        table2::render_table_i()
    );
    let results = table2::run(10);
    println!(
        "=== Table II (analysis + simulation, sweep step 10) ===\n{}",
        table2::render_table_ii(&results)
    );

    let system = didactic::system(10);
    let mut group = c.benchmark_group("table2");
    group.bench_function("analysis/SB", |b| {
        b.iter(|| ShiBurns.analyze(black_box(&system)).unwrap())
    });
    group.bench_function("analysis/XLWX", |b| {
        b.iter(|| Xlwx.analyze(black_box(&system)).unwrap())
    });
    group.bench_function("analysis/IBN", |b| {
        b.iter(|| BufferAware.analyze(black_box(&system)).unwrap())
    });
    group.bench_function("simulation/18k-cycles", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&system, ReleasePlan::synchronous(&system));
            sim.run_until(Cycles::new(18_000));
            black_box(sim.flow_stats(FlowId::new(2)).worst_latency())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = regenerate_and_bench
}
criterion_main!(benches);
