//! Bench T1/T2: regenerates Tables I and II (reduced offset sweep), measures
//! the cost of each analysis, and times the full critical-instant simulation
//! sweep behind the table's `R^sim` columns.
//!
//! The sweep body lives in [`noc_bench::suites`] so the `bench_json` binary
//! measures exactly what `cargo bench` runs.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_analysis::prelude::*;
use noc_bench::suites;
use noc_experiments::table2;
use noc_workload::didactic;
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    // Regenerate the paper's tables once (coarse 10-cycle sweep).
    println!(
        "\n=== Table I (flow parameters) ===\n{}",
        table2::render_table_i()
    );
    let results = table2::run(10);
    println!(
        "=== Table II (analysis + simulation, sweep step 10) ===\n{}",
        table2::render_table_ii(&results)
    );

    let system = didactic::system(10);
    let mut group = c.benchmark_group("table2_analysis");
    group.bench_function("SB", |b| {
        b.iter(|| ShiBurns.analyze(black_box(&system)).unwrap())
    });
    group.bench_function("XLWX", |b| {
        b.iter(|| Xlwx.analyze(black_box(&system)).unwrap())
    });
    group.bench_function("IBN", |b| {
        b.iter(|| BufferAware.analyze(black_box(&system)).unwrap())
    });
    group.finish();

    suites::bench_table2_sweep(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = regenerate_and_bench
}
criterion_main!(benches);
