//! Bench F4: regenerates Figure 4 (reduced scale) and measures the cost of
//! judging one flow set at a Figure-4(a) operating point.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_bench::bench_system;
use noc_experiments::fig4::{self, Fig4Config};
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    // Reduced sweep: 5 points x 12 sets per platform (full scale: the
    // fig4 binary in noc-experiments).
    for (label, cfg) in [
        ("4x4", Fig4Config::paper_4x4().reduced(5, 12)),
        ("8x8", Fig4Config::paper_8x8().reduced(5, 12)),
    ] {
        let results = fig4::run(&cfg);
        println!(
            "\n=== Figure 4 ({label}, reduced: {} sets/point) ===\n{}",
            cfg.sets_per_point,
            fig4::render(&results, &cfg)
        );
        println!(
            "max IBN2-XLWX gap: {:.0} pp\n",
            fig4::max_ibn_xlwx_gap(&results)
        );
    }

    let mut group = c.benchmark_group("fig4");
    for n in [80usize, 200] {
        let system = bench_system(4, n, 2, 0xF40 + n as u64);
        group.bench_function(format!("judge-set/4x4/{n}-flows"), |b| {
            b.iter(|| black_box(fig4::judge_set(black_box(&system), 2, 100, false)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = regenerate_and_bench
}
criterion_main!(benches);
