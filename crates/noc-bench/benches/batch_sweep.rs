//! Bench X7: batched offset sweeps over a shared `SimLayout`
//! (`BatchSimulator`) against building one `Simulator` per candidate plan.
//!
//! The bodies live in [`noc_bench::suites`] so the `bench_json` binary
//! measures exactly what `cargo bench` runs.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_bench::suites;

fn batch_sweep(c: &mut Criterion) {
    suites::bench_batch_sweep(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = batch_sweep
}
criterion_main!(benches);
