//! Bench X3: analysis runtime scaling with flow-set size.
//!
//! The fixed-point engine solves flows highest-priority-first with
//! memoised Idown recursion; this bench tracks how SB / XLWX / IBN scale
//! from 40 to 320 flows on the 4×4 platform (XLWX and IBN pay for the
//! recursive MPB terms; SB is the no-MPB floor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_analysis::prelude::*;
use noc_bench::bench_system;
use std::hint::black_box;

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_scaling");
    for &n in &[40usize, 80, 160, 320] {
        let system = bench_system(4, n, 2, 0x5CA1E + n as u64);
        for (name, analysis) in [
            ("SB", &ShiBurns as &dyn Analysis),
            ("XLWX", &Xlwx),
            ("IBN", &BufferAware),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &system, |b, sys| {
                b.iter(|| black_box(analysis.analyze(black_box(sys)).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = scaling
}
criterion_main!(benches);
