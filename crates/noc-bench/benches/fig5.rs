//! Bench F5: regenerates Figure 5 (reduced scale) and measures the cost of
//! mapping + judging the AV benchmark on a mid-size topology.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_analysis::prelude::*;
use noc_experiments::fig5::{self, Fig5Config};
use noc_model::prelude::*;
use noc_workload::av::av_benchmark;
use noc_workload::mapping::random_mapping;
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    // Reduced sweep: 9 topologies x 15 mappings (full scale: the fig5
    // binary in noc-experiments).
    let cfg = Fig5Config::paper().reduced(9, 15);
    let results = fig5::run(&cfg);
    println!(
        "\n=== Figure 5 (reduced: {} mappings/topology) ===\n{}",
        cfg.mappings_per_topology,
        fig5::render(&results, &cfg)
    );
    println!(
        "max IBN2-XLWX gap: {:.0} pp\n",
        fig5::max_ibn_xlwx_gap(&results)
    );

    let app = av_benchmark();
    let mut group = c.benchmark_group("fig5");
    group.bench_function("map-av/5x5", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(random_mapping(&app, 5, 5, NocConfig::default(), seed).unwrap())
        })
    });
    group.bench_function("judge-av/5x5/IBN", |b| {
        let mapped = random_mapping(&app, 5, 5, NocConfig::default(), 7).unwrap();
        b.iter(|| BufferAware.analyze(black_box(mapped.system())).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = regenerate_and_bench
}
criterion_main!(benches);
