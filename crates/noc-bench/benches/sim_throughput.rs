//! Bench X4: simulator throughput (simulated cycles per wall-clock second)
//! on the didactic system and on a dense 4×4 workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use noc_bench::dense_sim_system;
use noc_model::prelude::*;
use noc_sim::prelude::*;
use noc_workload::didactic;
use std::hint::black_box;

fn throughput(c: &mut Criterion) {
    const CYCLES: u64 = 10_000;
    let mut group = c.benchmark_group("sim_throughput");
    group.throughput(Throughput::Elements(CYCLES));

    let systems = [
        ("didactic-6r", didactic::system(10)),
        ("dense-4x4", dense_sim_system(11)),
    ];
    for (name, system) in &systems {
        group.bench_function(format!("{name}/10k-cycles"), |b| {
            b.iter(|| {
                let mut sim = Simulator::new(system, ReleasePlan::synchronous(system));
                sim.run_until(Cycles::new(CYCLES));
                black_box(sim.now())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = throughput
}
criterion_main!(benches);
