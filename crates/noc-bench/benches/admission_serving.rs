//! Bench X8: admission-control serving — incremental delta re-analysis
//! against a full context rebuild, and batched query throughput across
//! worker threads (`noc_serve::run_batch`).
//!
//! The group body lives in [`noc_bench::suites`] so the `bench_json`
//! binary measures exactly what `cargo bench` runs.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_bench::suites;

fn admission_serving(c: &mut Criterion) {
    let (label, system) = suites::admission_fixture(true);
    suites::bench_admission_serving(c, label, &system);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = admission_serving
}
criterion_main!(benches);
