//! Bench X1: regenerates the §VI buffer-size observation (reduced scale)
//! and measures IBN's cost as a function of buffer depth (the analysis
//! itself is buffer-independent in complexity — only the min() operand
//! changes).

use criterion::{criterion_group, criterion_main, Criterion};
use noc_analysis::prelude::*;
use noc_bench::bench_system;
use noc_experiments::buffer_sweep::{self, BufferSweepConfig};
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    let cfg = BufferSweepConfig::paper().reduced(16);
    let results = buffer_sweep::run(&cfg);
    println!(
        "\n=== Buffer-depth sweep (reduced: {} sets of {} flows on {}x{}) ===\n{}",
        cfg.sets,
        cfg.n_flows,
        cfg.mesh_width,
        cfg.mesh_height,
        buffer_sweep::render(&results)
    );

    let mut group = c.benchmark_group("buffer_sweep");
    let system = bench_system(4, 160, 2, 0xB5);
    for depth in [2u32, 100] {
        let sys = system.with_buffer_depth(depth);
        group.bench_function(format!("ibn/buf-{depth}"), |b| {
            b.iter(|| BufferAware.analyze(black_box(&sys)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = regenerate_and_bench
}
criterion_main!(benches);
