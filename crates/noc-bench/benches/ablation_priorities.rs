//! Bench X6: priority-assignment ablation — rate-monotonic (the paper's
//! choice, §VI) versus uniformly random priorities, under the IBN analysis.
//!
//! Prints the schedulability comparison at a Figure-4(a) operating point
//! and measures generation + analysis cost under both policies.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_analysis::prelude::*;
use noc_workload::priority::PriorityPolicy;
use noc_workload::synthetic::SyntheticSpec;
use std::hint::black_box;

fn schedulable_pct(policy: PriorityPolicy, sets: u64) -> f64 {
    let mut spec = SyntheticSpec::paper(4, 4, 160, 2);
    spec.priority_policy = policy;
    let ok = (0..sets)
        .filter(|&s| {
            let system = spec.generate(0xAB7 + s).into_system();
            BufferAware
                .analyze(&system)
                .map(|r| r.is_schedulable())
                .unwrap_or(false)
        })
        .count();
    100.0 * ok as f64 / sets as f64
}

fn regenerate_and_bench(c: &mut Criterion) {
    println!("\n=== Priority-assignment ablation (160 flows on 4x4, IBN b=2) ===");
    let rm = schedulable_pct(PriorityPolicy::RateMonotonic, 24);
    let random = schedulable_pct(PriorityPolicy::Random, 24);
    println!("  rate-monotonic : {rm:.0}% schedulable");
    println!("  random         : {random:.0}% schedulable");
    println!(
        "  (the paper uses RM \"despite sub-optimality\"; random assignment\n\
          discards the period structure and performs no better)\n"
    );

    let mut group = c.benchmark_group("ablation_priorities");
    for (name, policy) in [
        ("rate-monotonic", PriorityPolicy::RateMonotonic),
        ("random", PriorityPolicy::Random),
    ] {
        let mut spec = SyntheticSpec::paper(4, 4, 160, 2);
        spec.priority_policy = policy;
        let system = spec.generate(0xAB7).into_system();
        group.bench_function(format!("ibn/{name}"), |b| {
            b.iter(|| BufferAware.analyze(black_box(&system)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = regenerate_and_bench
}
criterion_main!(benches);
