//! Bench X9: heterogeneous buffers and bursty release — the buffer-aware
//! analysis over a per-router-depth 16×16 workload (the slow path of
//! Equation 6) and per-router buffer what-if serving.
//!
//! The group body lives in [`noc_bench::suites`] so the `bench_json`
//! binary measures exactly what `cargo bench` runs.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_bench::suites;

fn hetero_analysis(c: &mut Criterion) {
    let (label, system) = suites::hetero_fixture(true);
    suites::bench_hetero_analysis(c, label, &system);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = hetero_analysis
}
criterion_main!(benches);
