//! Bench X2: ablation across all five analyses (including the unsafe
//! NoIndirect and the original Xiong Eq. 4) on a fixed workload.
//!
//! Prints per-analysis schedulability and the bound each one assigns to the
//! didactic MPB victim τ3, then measures each analysis' runtime — the cost
//! of tighter, safer bounds in one table.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_analysis::prelude::*;
use noc_bench::bench_system;
use noc_workload::didactic::{self, DidacticFlows};
use std::hint::black_box;

fn ablation(c: &mut Criterion) {
    // Didactic victim bound per analysis.
    let system = didactic::system(10);
    let tau3 = DidacticFlows::ids().tau3;
    println!("\n=== Ablation: bound on the didactic MPB victim τ3 (b=10) ===");
    for analysis in all_analyses() {
        let bound = analysis
            .analyze(&system)
            .unwrap()
            .response_time(tau3)
            .map_or("miss".to_string(), |r| r.as_u64().to_string());
        let safety = match analysis.name() {
            "XLWX" | "IBN" => "safe under MPB",
            _ => "UNSAFE under MPB",
        };
        println!(
            "  {:<10} R(τ3) = {:>5}   [{safety}]",
            analysis.name(),
            bound
        );
    }

    // Schedulability on a loaded synthetic platform.
    let loaded = bench_system(4, 200, 2, 0xAB1A);
    println!("\n=== Ablation: schedulable flows out of 200 (4x4, loaded) ===");
    for analysis in all_analyses() {
        let report = analysis.analyze(&loaded).unwrap();
        println!(
            "  {:<10} {:>4}/200 flows, set schedulable: {}",
            analysis.name(),
            report.schedulable_count(),
            report.is_schedulable()
        );
    }
    println!();

    let mut group = c.benchmark_group("ablation_analyses");
    for analysis in all_analyses() {
        group.bench_function(format!("{}/200-flows", analysis.name()), |b| {
            b.iter(|| black_box(analysis.analyze(black_box(&loaded)).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation
}
criterion_main!(benches);
