//! Bench X5: breakdown-factor comparison (continuous tightness metric) —
//! prints a reduced-scale summary and measures one binary-search run.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_analysis::prelude::*;
use noc_bench::bench_system;
use noc_experiments::scaling::{self, breakdown_factor, ScalingConfig};
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    let cfg = ScalingConfig::paper().reduced(8);
    let results = scaling::run(&cfg);
    println!(
        "\n=== Breakdown factors (reduced: {} sets of {} flows) ===\n{}",
        cfg.sets,
        cfg.n_flows,
        scaling::render(&results, &cfg)
    );

    let system = bench_system(4, 120, 2, 0xBDF);
    let mut group = c.benchmark_group("breakdown_scaling");
    for (name, analysis) in [("SB", &ShiBurns as &dyn Analysis), ("IBN", &BufferAware)] {
        group.bench_function(format!("search/{name}/120-flows"), |b| {
            b.iter(|| black_box(breakdown_factor(black_box(&system), analysis)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = regenerate_and_bench
}
criterion_main!(benches);
