//! Bench X6: amortising the interference structure with `AnalysisContext`.
//!
//! The experiment harnesses run 4–5 analyses (and several buffer depths)
//! over every flow set. `direct` re-derives the interference graph inside
//! every `Analysis::analyze` call; `shared-context` builds one
//! `AnalysisContext` and runs every analysis against it (the harness path
//! since the context refactor); `context-build` isolates the derivation
//! cost being amortised. Fixtures go up to the north-star scale: a 16×16
//! mesh with thousands of flows.
//!
//! The group bodies live in [`noc_bench::suites`] so the `bench_json`
//! binary measures exactly what `cargo bench` runs.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_analysis::prelude::*;
use noc_bench::{production_system, suites};
use std::hint::black_box;

fn context_reuse(c: &mut Criterion) {
    suites::bench_context_reuse(c, &suites::context_fixtures(true));
}

fn buffer_depth_rebase(c: &mut Criterion) {
    let mut group = c.benchmark_group("context_rebase");
    let system = production_system(1_000, 2, 0xC0DE);
    let depths = [2u32, 4, 8, 16, 32, 64, 100];
    // The buffer-sweep harness pattern: one IBN verdict per depth.
    group.bench_function("ibn_7_depths_direct", |b| {
        b.iter(|| {
            for &depth in &depths {
                let sys = system.with_buffer_depth(depth);
                black_box(BufferAware.analyze(&sys).unwrap());
            }
        })
    });
    group.bench_function("ibn_7_depths_rebased", |b| {
        b.iter(|| {
            let ctx = AnalysisContext::new(&system).unwrap();
            for &depth in &depths {
                let sys = system.with_buffer_depth(depth);
                let depth_ctx = ctx.rebase(&sys).unwrap();
                black_box(BufferAware.analyze_with(&depth_ctx).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = context_reuse, buffer_depth_rebase
}
criterion_main!(benches);
