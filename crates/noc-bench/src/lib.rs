//! Shared fixtures for the criterion benchmark harness.
//!
//! Each bench target regenerates one of the paper's tables/figures at
//! reduced scale (printed once, before timing) and then measures the
//! runtime of the underlying computation. Scale the printed series up to
//! the paper's full parameters with the experiment binaries in
//! `noc-experiments` (`cargo run --release -p noc-experiments --bin …`).

use noc_model::prelude::*;
use noc_workload::synthetic::SyntheticSpec;

/// A deterministic synthetic system for performance measurements.
pub fn bench_system(mesh: u16, n_flows: usize, buffer: u32, seed: u64) -> System {
    SyntheticSpec::paper(mesh, mesh, n_flows, buffer)
        .generate(seed)
        .into_system()
}

/// A dense small system whose simulation stays busy (for simulator
/// throughput measurements).
pub fn dense_sim_system(seed: u64) -> System {
    let mut spec = SyntheticSpec::paper(4, 4, 12, 4);
    spec.period_range = (500, 5_000);
    spec.length_range = (16, 128);
    spec.generate(seed).into_system()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = bench_system(4, 20, 2, 1);
        let b = bench_system(4, 20, 2, 1);
        assert_eq!(a.flows().len(), b.flows().len());
        for id in a.flows().ids() {
            assert_eq!(a.flow(id), b.flow(id));
        }
        assert_eq!(dense_sim_system(3).flows().len(), 12);
    }
}
