//! Shared fixtures for the criterion benchmark harness.
//!
//! Each bench target regenerates one of the paper's tables/figures at
//! reduced scale (printed once, before timing) and then measures the
//! runtime of the underlying computation. Scale the printed series up to
//! the paper's full parameters with the experiment binaries in
//! `noc-experiments` (`cargo run --release -p noc-experiments --bin …`).
//!
//! # Bench-target map (code ↔ paper)
//!
//! | Target | Measures |
//! |---|---|
//! | `table2` | the §V didactic experiment (Tables I–II) |
//! | `fig4`, `fig5`, `buffer_sweep` | the §VI sweeps behind Figures 4–5 and the buffer-depth remark |
//! | `analysis_scaling` | SB/XLWX/IBN runtime vs flow count (Eq. 5 fixed point) |
//! | `breakdown_scaling` | the breakdown-factor binary search |
//! | `sim_throughput` | cycle-accurate simulator throughput (Figure 1 router) |
//! | `ablation_analyses`, `ablation_priorities` | analysis/priority-policy ablations |
//! | `context_reuse` | shared `AnalysisContext` vs per-call derivation, up to [`production_system`] scale (16×16, thousands of flows) |
//! | `hetero_analysis` | buffer-aware analysis and per-router what-if serving over the [`heterogeneous_system`] fixture (per-router depths, bursty release) |

use noc_model::prelude::*;
use noc_workload::synthetic::SyntheticSpec;

pub mod suites;

/// A deterministic synthetic system for performance measurements.
pub fn bench_system(mesh: u16, n_flows: usize, buffer: u32, seed: u64) -> System {
    SyntheticSpec::paper(mesh, mesh, n_flows, buffer)
        .generate(seed)
        .into_system()
}

/// A dense small system whose simulation stays busy (for simulator
/// throughput measurements).
pub fn dense_sim_system(seed: u64) -> System {
    let mut spec = SyntheticSpec::paper(4, 4, 12, 4);
    spec.period_range = (500, 5_000);
    spec.length_range = (16, 128);
    spec.generate(seed).into_system()
}

/// Production-scale fixture: the paper's §VI workload on a **16×16 mesh**
/// with `n_flows` flows (thousands are fine — the north-star scale target).
///
/// Deriving the interference structure dominates at this size, which is
/// exactly what the shared `AnalysisContext` amortises; the
/// `context_reuse` bench target measures that path against per-analysis
/// re-derivation.
pub fn production_system(n_flows: usize, buffer: u32, seed: u64) -> System {
    bench_system(16, n_flows, buffer, seed)
}

/// Heterogeneous fixture: the §VI workload with per-router buffer depths
/// drawn from `2..=8` flits and bursty sources (σ ≤ 2) — the generalised
/// release/buffer axes the buffer-aware analysis is sensitive to. At
/// `mesh = 16` this is the north-star heterogeneous scenario recorded in
/// `BENCH_history.jsonl` by `bench_json`.
pub fn heterogeneous_system(mesh: u16, n_flows: usize, seed: u64) -> System {
    SyntheticSpec::paper(mesh, mesh, n_flows, 2)
        .with_buffer_depth_range(2, 8)
        .with_burst_range(0, 2)
        .generate(seed)
        .into_system()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = bench_system(4, 20, 2, 1);
        let b = bench_system(4, 20, 2, 1);
        assert_eq!(a.flows().len(), b.flows().len());
        for id in a.flows().ids() {
            assert_eq!(a.flow(id), b.flow(id));
        }
        assert_eq!(dense_sim_system(3).flows().len(), 12);
    }

    #[test]
    fn heterogeneous_fixture_is_heterogeneous_and_bursty() {
        let sys = heterogeneous_system(8, 120, 5);
        assert!(sys.has_heterogeneous_buffers());
        assert!(sys.flows().iter().any(|(_, f)| f.burst() > 0));
        for r in 0..sys.topology().router_count() {
            let d = sys.buffer_depth_at(RouterId::new(r as u32));
            assert!((2..=8).contains(&d));
        }
    }

    #[test]
    fn production_fixture_reaches_16x16_with_thousands_of_flows() {
        let sys = production_system(1_500, 2, 9);
        assert_eq!(sys.topology().router_count(), 256);
        assert_eq!(sys.flows().len(), 1_500);
        // The precomputed interference structure must be buildable at this
        // scale (this is the cached path the context bench exercises).
        let graph = noc_model::contention::InterferenceGraph::new(&sys).unwrap();
        assert_eq!(graph.len(), 1_500);
    }
}
