//! Reusable benchmark bodies shared by the `cargo bench` targets and the
//! `bench_json` bench-to-JSON binary.
//!
//! The perf-trajectory policy of this repo is that speed claims must come
//! with numbers: the same closures that `cargo bench` times are run here
//! under a [`criterion::Criterion`] carrying a measurement sink (the shim's
//! machine-readable hook), so `BENCH_sim.json` and the console benches can
//! never drift apart.

use criterion::{BenchmarkId, Criterion};
use noc_analysis::prelude::*;
use noc_experiments::table2::{self, SweepMode};
use noc_model::prelude::*;
use noc_sim::prelude::*;
use noc_workload::didactic;
use std::hint::black_box;

use crate::{bench_system, dense_sim_system, production_system};

/// One simulator-throughput fixture: a system plus the horizon to simulate.
#[derive(Debug)]
pub struct SimFixture {
    /// Fixture label as it appears in bench output and `BENCH_sim.json`.
    pub name: String,
    /// The system to simulate.
    pub system: System,
    /// Cycles simulated per iteration.
    pub cycles: u64,
}

impl SimFixture {
    fn new(name: &str, system: System, cycles: u64) -> SimFixture {
        SimFixture {
            name: format!("{name}/{cycles}-cycles"),
            system,
            cycles,
        }
    }
}

/// The simulator-throughput fixture set.
///
/// `production` adds the north-star fixture — the §VI workload on a 16×16
/// mesh with 2000 flows — which dominates the suite's wall-clock; CI's fast
/// mode leaves it out.
pub fn sim_fixtures(production: bool) -> Vec<SimFixture> {
    let mut fixtures = vec![
        SimFixture::new("didactic-6r", didactic::system(10), 10_000),
        SimFixture::new("dense-4x4", dense_sim_system(11), 10_000),
    ];
    if production {
        fixtures.push(SimFixture::new(
            "production-16x16-2000f",
            production_system(2_000, 4, 0xC0DE),
            2_000,
        ));
    }
    fixtures
}

/// Bench group `sim_throughput`: one synchronous-release run per fixture.
pub fn bench_sim_throughput(c: &mut Criterion, fixtures: &[SimFixture]) {
    let mut group = c.benchmark_group("sim_throughput");
    for fixture in fixtures {
        group.throughput(criterion::Throughput::Elements(fixture.cycles));
        group.bench_function(fixture.name.as_str(), |b| {
            b.iter(|| {
                let mut sim =
                    Simulator::new(&fixture.system, ReleasePlan::synchronous(&fixture.system));
                sim.run_until(Cycles::new(fixture.cycles));
                black_box(sim.now())
            })
        });
    }
    group.finish();
}

/// Label of the Table II sweep fixture in bench output and JSON.
pub const TABLE2_SWEEP_LABEL: &str = "table2/critical-sweep-b2b10";

/// Total cycles simulated by one [`bench_table2_sweep`] iteration (both
/// buffer depths, all critical-instant candidates, 18k cycles each).
pub fn table2_sweep_cycles() -> u64 {
    let sys = didactic::system(2);
    let f = noc_workload::didactic::DidacticFlows::ids();
    let period = sys.flow(f.tau1).period();
    let sims = critical_offset_candidates(&sys, f.tau1, period).len() as u64;
    2 * sims * 18_000
}

/// Bench group `table2`: the didactic experiment's simulation columns — the
/// pruned critical-instant offset sweep at both buffer depths (the kernel
/// behind `R^sim(b=10)` / `R^sim(b=2)` of Table II).
pub fn bench_table2_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.bench_function("critical-sweep-b2b10", |b| {
        b.iter(|| {
            let b10 = table2::simulate_worst(10, SweepMode::Critical);
            let b2 = table2::simulate_worst(2, SweepMode::Critical);
            black_box((b10.worst, b2.worst))
        })
    });
    group.finish();
}

/// Fixtures of the `context_reuse` group: `(label, system)`.
pub fn context_fixtures(production: bool) -> Vec<(&'static str, System)> {
    let mut fixtures = vec![
        ("4x4_160", bench_system(4, 160, 2, 0xC0DE)),
        ("8x8_520", bench_system(8, 520, 2, 0xC0DE)),
    ];
    if production {
        fixtures.push(("16x16_1000", production_system(1_000, 2, 0xC0DE)));
        fixtures.push(("16x16_2000", production_system(2_000, 2, 0xC0DE)));
    }
    fixtures
}

/// Bench group `batch_sweep`: the shared-layout batch simulation path
/// ([`BatchSimulator`]) against per-plan `Simulator` construction, on the
/// didactic critical-instant sweep.
pub fn bench_batch_sweep(c: &mut Criterion) {
    let sys = didactic::system(2);
    let f = noc_workload::didactic::DidacticFlows::ids();
    let period = sys.flow(f.tau1).period();
    let horizon = Cycles::new(18_000);
    let mut group = c.benchmark_group("batch_sweep");
    group.bench_function("didactic/per-plan-simulators", |b| {
        b.iter(|| {
            let mut worst = Cycles::ZERO;
            for plan in critical_offset_sweep(&sys, f.tau1, period) {
                let mut sim = Simulator::new(&sys, plan);
                sim.run_until(horizon);
                if let Some(w) = sim.flow_stats(f.tau3).worst_latency() {
                    worst = worst.max(w);
                }
            }
            black_box(worst)
        })
    });
    group.bench_function("didactic/batch-shared-layout", |b| {
        b.iter(|| {
            let mut batch = BatchSimulator::new(&sys);
            let mut worst = Cycles::ZERO;
            for plan in critical_offset_sweep(&sys, f.tau1, period) {
                let stats = batch.run(&plan, horizon);
                if let Some(w) = stats[f.tau3.index()].worst_latency() {
                    worst = worst.max(w);
                }
            }
            black_box(worst)
        })
    });
    group.finish();
}

/// Bench group `context_reuse`: per-call derivation vs one shared
/// [`AnalysisContext`] vs the isolated context build.
pub fn bench_context_reuse(c: &mut Criterion, fixtures: &[(&'static str, System)]) {
    let mut group = c.benchmark_group("context_reuse");
    for (label, system) in fixtures {
        group.bench_with_input(BenchmarkId::new("direct", label), system, |b, sys| {
            b.iter(|| {
                for analysis in all_analyses() {
                    black_box(analysis.analyze(black_box(sys)).unwrap());
                }
            })
        });
        group.bench_with_input(
            BenchmarkId::new("shared-context", label),
            system,
            |b, sys| {
                b.iter(|| {
                    let ctx = AnalysisContext::new(black_box(sys)).unwrap();
                    for analysis in all_analyses() {
                        black_box(analysis.analyze_with(&ctx).unwrap());
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("context-build", label),
            system,
            |b, sys| b.iter(|| black_box(AnalysisContext::new(black_box(sys)).unwrap())),
        );
    }
    group.finish();
}

/// Fixture of the `admission_serving` group: `(label, system)`.
///
/// The production fixture is the north-star admission-control scale (16×16
/// mesh, 1000 flows); fast mode drops to the 8×8 mid-size workload.
pub fn admission_fixture(production: bool) -> (&'static str, System) {
    if production {
        ("16x16_1000", production_system(1_000, 2, 0xC0DE))
    } else {
        ("8x8_520", bench_system(8, 520, 2, 0xC0DE))
    }
}

/// Fixture of the `hetero_analysis` group: `(label, system)`.
///
/// The production fixture is the heterogeneous north-star scenario (16×16
/// mesh, 1000 flows, per-router depths 2–8, bursts σ ≤ 2); fast mode drops
/// to an 8×8 mesh with the same depth/burst distributions.
pub fn hetero_fixture(production: bool) -> (&'static str, System) {
    if production {
        (
            "16x16_1000_hetero",
            crate::heterogeneous_system(16, 1_000, 0xC0DE),
        )
    } else {
        (
            "8x8_260_hetero",
            crate::heterogeneous_system(8, 260, 0xC0DE),
        )
    }
}

/// Bench group `hetero_analysis`: the buffer-aware analysis over a
/// heterogeneous-depth bursty workload — the slow (per-router) path of
/// Equation 6 — plus a batch of per-router buffer what-if queries served
/// through the incremental resize path.
pub fn bench_hetero_analysis(c: &mut Criterion, label: &str, system: &System) {
    let mut group = c.benchmark_group("hetero_analysis");
    group.bench_with_input(BenchmarkId::new("buffer-aware", label), system, |b, sys| {
        let ctx = AnalysisContext::new(sys).unwrap();
        b.iter(|| black_box(BufferAware.analyze_with(&ctx).unwrap()))
    });
    let base = AnalysisContext::new(system).expect("bench fixture is analysable");
    let routers = system.topology().router_count();
    let batch = noc_serve::QueryBatch {
        analysis: AnalysisKind::BufferAware,
        queries: (0..32usize)
            .map(|i| noc_serve::Query::RouterBufferWhatIf {
                router: RouterId::new((i * 7 % routers) as u32),
                depth: 2 + (i % 7) as u32,
            })
            .collect(),
    };
    group.bench_with_input(
        BenchmarkId::new("router-what-if-batch", label),
        system,
        |b, _| b.iter(|| black_box(noc_serve::run_batch(&base, &batch, &XyRouting, 2))),
    );
    group.finish();
}

/// Bench group `admission_serving`: a single-flow admission what-if served
/// by a full rebuild (derive graph + solve from scratch) against the
/// incremental dirty-bit path (delta-update the graph, re-solve only the
/// affected neighbourhood), plus batched query throughput at increasing
/// worker-thread counts via [`noc_serve::run_batch`].
pub fn bench_admission_serving(c: &mut Criterion, label: &str, system: &System) {
    let mut group = c.benchmark_group("admission_serving");
    let template = system.flows().flow(FlowId::new(0));
    let candidate = Flow::builder(template.source(), template.dest())
        .priority(Priority::new(system.flows().len() as u32 + 1))
        .period(template.period())
        .length_flits(16)
        .build();

    group.bench_with_input(BenchmarkId::new("full-rebuild", label), system, |b, sys| {
        b.iter(|| {
            let (grown, _) = sys.with_added_flow(candidate.clone(), &XyRouting).unwrap();
            let ctx = AnalysisContext::new(&grown).unwrap();
            black_box(BufferAware.analyze_with(&ctx).unwrap())
        })
    });
    group.bench_with_input(BenchmarkId::new("incremental", label), system, |b, sys| {
        let mut ctx = IncrementalContext::new(sys.clone()).unwrap();
        // Warm the solve cache: the first analyze pays the full solve that
        // every later delta amortises, exactly like a live server.
        black_box(ctx.analyze(AnalysisKind::BufferAware).unwrap());
        b.iter(|| {
            let id = ctx.add_flow(candidate.clone(), &XyRouting).unwrap();
            let report = ctx.analyze(AnalysisKind::BufferAware).unwrap();
            ctx.remove_flow(id).expect("undoing a fresh admission");
            black_box(report)
        })
    });

    let base = AnalysisContext::new(system).expect("bench fixture is analysable");
    let batch = noc_serve::QueryBatch {
        analysis: AnalysisKind::BufferAware,
        queries: noc_serve::sample_queries(system, 64),
    };
    let mut thread_counts = vec![1, 2, noc_serve::default_threads()];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    for threads in thread_counts {
        group.bench_with_input(
            BenchmarkId::new(format!("batch-qps-{threads}t"), label),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(noc_serve::run_batch(&base, &batch, &XyRouting, threads)))
            },
        );
    }
    group.finish();
}
