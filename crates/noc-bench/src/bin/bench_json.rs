//! Bench-to-JSON binary: runs the `sim_throughput`, `table2`,
//! `context_reuse` and `admission_serving` fixtures through the shared
//! [`noc_bench::suites`] bodies and writes a machine-readable
//! `BENCH_sim.json`, so performance claims in this repo always come with
//! checked-in numbers. Every run also appends one line to
//! `BENCH_history.jsonl` keyed by the git commit, building a perf
//! trajectory across PRs.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p noc-bench --bin bench_json                    # BENCH_sim.json
//! cargo run --release -p noc-bench --bin bench_json -- --write-baseline # BENCH_baseline.json
//! ```
//!
//! Environment:
//!
//! * `NOC_BENCH_FAST=1` — skip the production-scale 16×16 fixtures (CI mode).
//! * `NOC_BENCH_OUT=path` — override the output path.
//! * `NOC_BENCH_HISTORY=path` — override the history path (empty disables).
//!
//! Each measured fixture becomes one line in the output's `results` array:
//! fixture label, cycles simulated per iteration (0 for the analysis-side
//! `context_reuse` group), mean wall-clock nanoseconds per iteration, and
//! the speedup relative to the checked-in `BENCH_baseline.json` (null when
//! the baseline lacks the fixture). The writer and the baseline reader are
//! deliberately ad-hoc line-oriented JSON so the repo needs no serde.

use criterion::{Criterion, Measurement};
use noc_bench::suites;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

/// Schema tag written to (and expected in) the JSON output.
const SCHEMA: &str = "noc-bench/sim/v1";

fn main() {
    let write_baseline = std::env::args().any(|a| a == "--write-baseline");
    let fast = std::env::var("NOC_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let production = !fast;

    let out_path = std::env::var("NOC_BENCH_OUT").unwrap_or_else(|_| {
        if write_baseline {
            "BENCH_baseline.json".to_string()
        } else {
            "BENCH_sim.json".to_string()
        }
    });

    let baseline = if write_baseline {
        BTreeMap::new()
    } else {
        read_baseline("BENCH_baseline.json")
    };

    // Collect every measurement the shim emits while the bench bodies run.
    let collected: Rc<RefCell<Vec<Measurement>>> = Rc::new(RefCell::new(Vec::new()));
    let tap = Rc::clone(&collected);
    let mut c = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .with_measurement_sink(Box::new(move |m| tap.borrow_mut().push(m)));

    let sim_fixtures = suites::sim_fixtures(production);
    suites::bench_sim_throughput(&mut c, &sim_fixtures);
    suites::bench_table2_sweep(&mut c);
    suites::bench_batch_sweep(&mut c);
    suites::bench_context_reuse(&mut c, &suites::context_fixtures(production));
    let (adm_label, adm_system) = suites::admission_fixture(production);
    suites::bench_admission_serving(&mut c, adm_label, &adm_system);
    let (het_label, het_system) = suites::hetero_fixture(production);
    suites::bench_hetero_analysis(&mut c, het_label, &het_system);

    // Cycles simulated per iteration, by bench label. Analysis-side groups
    // (context_reuse) simulate nothing and report 0.
    let mut cycles: BTreeMap<String, u64> = BTreeMap::new();
    for f in &sim_fixtures {
        cycles.insert(format!("sim_throughput/{}", f.name), f.cycles);
    }
    cycles.insert(
        suites::TABLE2_SWEEP_LABEL.to_string(),
        suites::table2_sweep_cycles(),
    );
    // One buffer depth's worth of the table2 sweep per iteration.
    for label in [
        "batch_sweep/didactic/per-plan-simulators",
        "batch_sweep/didactic/batch-shared-layout",
    ] {
        cycles.insert(label.to_string(), suites::table2_sweep_cycles() / 2);
    }

    let mut lines = Vec::new();
    for m in collected.borrow().iter() {
        let cyc = cycles.get(&m.label).copied().unwrap_or(0);
        let speedup = baseline
            .get(&m.label)
            .map(|base_ns| base_ns / m.mean_ns)
            .map(|s| format!("{s:.3}"))
            .unwrap_or_else(|| "null".to_string());
        lines.push(format!(
            "    {{\"fixture\": {}, \"cycles\": {}, \"wall_ns\": {:.0}, \"speedup_vs_baseline\": {}}}",
            json_string(&m.label),
            cyc,
            m.mean_ns,
            speedup
        ));
    }

    let body = format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"mode\": \"{}\",\n  \"results\": [\n{}\n  ]\n}}\n",
        if write_baseline {
            "baseline"
        } else {
            "measurement"
        },
        lines.join(",\n")
    );
    std::fs::write(&out_path, &body).expect("write bench json");
    println!("\nwrote {} ({} results)", out_path, lines.len());
    if !write_baseline && baseline.is_empty() {
        eprintln!("warning: no BENCH_baseline.json found; speedups are null");
    }

    let history_path =
        std::env::var("NOC_BENCH_HISTORY").unwrap_or_else(|_| "BENCH_history.jsonl".to_string());
    if !history_path.is_empty() {
        let mode = if write_baseline {
            "baseline"
        } else if fast {
            "fast"
        } else {
            "full"
        };
        append_history(&history_path, mode, &collected.borrow());
    }
}

/// Append one compact JSON line for this run — keyed by the git commit —
/// to the history log, so successive PRs leave a perf trajectory.
fn append_history(path: &str, mode: &str, measurements: &[Measurement]) {
    use std::io::Write;

    let results: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                "{{\"fixture\": {}, \"wall_ns\": {:.0}}}",
                json_string(&m.label),
                m.mean_ns
            )
        })
        .collect();
    let line = format!(
        "{{\"schema\": \"noc-bench/history/v1\", \"commit\": {}, \"mode\": \"{}\", \"results\": [{}]}}\n",
        json_string(&noc_telemetry::git_commit()),
        mode,
        results.join(", ")
    );
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    match appended {
        Ok(()) => println!("appended 1 run to {path}"),
        Err(e) => eprintln!("warning: could not append history to {path}: {e}"),
    }
}

/// Minimal JSON string escaping (labels only contain benign characters, but
/// be correct anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse `fixture` → `wall_ns` pairs out of a previous run's output.
///
/// The writer emits exactly one result object per line, so a line-oriented
/// scan is lossless for files this tool wrote itself.
fn read_baseline(path: &str) -> BTreeMap<String, f64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let Some(fixture) = field_str(line, "fixture") else {
            continue;
        };
        let Some(wall_ns) = field_num(line, "wall_ns") else {
            continue;
        };
        map.insert(fixture, wall_ns);
    }
    map
}

/// Extract a `"key": "value"` string field from a single JSON line.
fn field_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract a `"key": number` field from a single JSON line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
