//! Telemetry surface of the simulation kernel.
//!
//! All metrics are no-ops unless telemetry is enabled (the `NOC_TELEMETRY`
//! env var, plus the default-on `telemetry` cargo feature); see
//! [`noc_telemetry`] for the gating model. The kernel caches the gate in a
//! plain bool per core, so the per-cycle cost with telemetry compiled in
//! but disabled is a handful of predicted local-branch tests. Recording
//! never changes simulated behaviour — the workspace's
//! `telemetry_neutrality` test pins bit-identical stats with telemetry on
//! and off.

use noc_telemetry::{Counter, MaxGauge};

/// Cycles actually stepped (each [`step`](crate::engine::Simulator::step)
/// of each core).
pub static SIM_STEPS: Counter = Counter::new("sim.steps");

/// Quiescent cycles skipped by the event-driven fast-forward
/// (`skip_idle_gap`) instead of being stepped.
pub static SIM_CYCLES_SKIPPED: Counter = Counter::new("sim.cycles_skipped");

/// Packet releases popped from the release heap.
pub static SIM_RELEASE_POPS: Counter = Counter::new("sim.release_pops");

/// Routing-completion events popped from the ready heap.
pub static SIM_READY_POPS: Counter = Counter::new("sim.ready_pops");

/// Arbitration scans of an armed link that found at least one candidate
/// blocked *solely* on downstream credits — the buffer-backpressure
/// bubbles behind multi-point progressive blocking.
pub static SIM_CREDIT_STALL_CYCLES: Counter = Counter::new("sim.credit_stall_cycles");

/// High-water mark of flits buffered in any single virtual channel.
pub static SIM_VC_OCCUPANCY_HWM: MaxGauge = MaxGauge::new("sim.vc_occupancy_hwm");
