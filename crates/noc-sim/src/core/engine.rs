//! The struct-of-arrays simulation kernel.
//!
//! [`SimCore`] holds all mutable run state in flat arrays indexed by the
//! dense ids of a [`SimLayout`] and advances it one flit-clock cycle per
//! [`SimCore::step`]. The phase order within a cycle is exactly the
//! pre-refactor engine's — release, routing completion, arbitration, link
//! advance, credit return — so observable behaviour (stats and traces) is
//! bit-identical; `tests/engine_equivalence.rs` pins that against an
//! embedded copy of the old engine.
//!
//! # Event-driven bookkeeping
//!
//! Instead of scanning every source, VC and link each cycle, the kernel
//! tracks:
//!
//! * a **release heap** with one entry per flow (the nominal time of its
//!   next undelivered release; chains of late packets drain in nominal-time
//!   order, which provably reproduces the old flow-major release order);
//! * a **routing-ready heap** of `(cycle, vc)` events — a header that
//!   becomes the head of a VC during cycle `t` is eligible for arbitration
//!   at `t + 1 + routl`, covering both the deposit-into-empty-VC and the
//!   tail-pop-exposes-next-header cases;
//! * an **armed set** of links that may be able to launch (sorted, so
//!   arbitration and its trace events keep the old link-index order). Links
//!   are armed by releases, routing completions, body deposits into empty
//!   VCs and credit returns, and disarmed when a scan finds no launchable
//!   candidate — a link blocked only on credit is re-armed by the return.
//! * a **busy set** of links with a flit in flight.
//!
//! # Buffers as cursors
//!
//! A VC only ever holds flits of its own flow (priorities are globally
//! unique), and those flits arrive in stream order — packet `k` flits
//! `0..len`, then packet `k+1`. A FIFO of [`Flit`]s therefore collapses to
//! two integers (head position in the flow's flit stream, length), and the
//! source queues collapse to released/injected cursors; `Flit` values are
//! materialised only for traces.
//!
//! # Quiescent-cycle skipping
//!
//! After a cycle in which nothing happened (`changed == false`) the network
//! is frozen: no link is busy and no event is due, so the only future state
//! changes come from the two heaps. [`SimCore::skip_idle_gap`] jumps `now`
//! to the earlier of the two heads (clamped to the caller's limit) without
//! crossing it — the skip invariant: a skip never jumps over a release,
//! routing completion, launch or delivery.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use noc_model::ids::{FlowId, LinkId};
use noc_model::system::System;
use noc_model::time::Cycles;

use crate::core::layout::{Candidate, Feeder, SimLayout, EJECT};
use crate::flit::Flit;
use crate::metrics;
use crate::release::ReleasePlan;
use crate::stats::FlowStats;
use crate::trace::TraceEvent;

/// Marks an idle link in [`SimCore::link_flow`].
const IDLE: u32 = u32::MAX;

/// A set of link ids as a bitmask, iterated in ascending order.
///
/// Arbitration arms and disarms links thousands of times per cycle on
/// saturated meshes; these must be branch-free O(1) word operations (a
/// tree-based set here dominates the whole simulation's profile). Ascending
/// iteration comes free from bit scanning, which keeps trace events in the
/// old engine's link-index order.
#[derive(Debug, Clone)]
struct LinkSet {
    words: Vec<u64>,
}

impl LinkSet {
    fn new(n_links: usize) -> LinkSet {
        LinkSet {
            words: vec![0; n_links.div_ceil(64)],
        }
    }

    #[inline]
    fn insert(&mut self, link: u32) {
        self.words[(link >> 6) as usize] |= 1u64 << (link & 63);
    }

    #[inline]
    fn remove(&mut self, link: u32) {
        self.words[(link >> 6) as usize] &= !(1u64 << (link & 63));
    }

    fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Overwrites `self` with `other`'s contents (snapshot before a loop
    /// that mutates `other`).
    fn copy_from(&mut self, other: &LinkSet) {
        self.words.copy_from_slice(&other.words);
    }
}

/// Mutable simulation state over a shared [`SimLayout`].
///
/// All per-step methods take the layout, system and plan by reference so a
/// single core allocation can be [`reset`](SimCore::reset) and reused across
/// runs (the batch path).
#[derive(Debug)]
pub(crate) struct SimCore {
    pub(crate) now: u64,
    /// `false` after a cycle in which no state changed (skip is safe).
    changed: bool,
    /// Flits released but not yet ejected; `0` ⇔ the network is quiescent.
    live_flits: u64,

    // Sources (cursors into each flow's flit stream).
    /// Flits released so far (stream end), per flow.
    src_released: Vec<u64>,
    /// Flits injected so far (stream position of the next flit), per flow.
    src_injected: Vec<u64>,
    /// Index within its packet of the next flit to inject, per flow
    /// (`src_injected % flow_len`, kept incrementally — divisions in the
    /// per-flit hot path are measurable).
    src_idx: Vec<u32>,
    /// Next packet number to release, per flow.
    src_next_packet: Vec<u64>,
    /// Nominal release time of packet `k`, per flow, indexed by `k`
    /// (packets release and deliver in order, so a flat `Vec` replaces the
    /// old per-packet `HashMap`).
    rel_times: Vec<Vec<u64>>,

    // Virtual channels.
    /// Stream position of the head flit (valid when `vc_len > 0`).
    vc_head: Vec<u64>,
    /// Index within its packet of the head flit (`vc_head % flow_len`,
    /// kept incrementally; valid when `vc_len > 0`).
    vc_head_idx: Vec<u32>,
    /// Buffered flits.
    vc_len: Vec<u32>,
    /// Head packet's header has completed routing.
    vc_routed: Vec<bool>,
    /// Free downstream slots of the VC — gates launches on its `in_link`.
    vc_credits: Vec<u32>,

    // Links.
    /// Flow of the in-flight flit, or [`IDLE`].
    link_flow: Vec<u32>,
    /// Stream position of the in-flight flit.
    link_pos: Vec<u64>,
    /// Index within its packet of the in-flight flit.
    link_idx: Vec<u32>,
    /// Cycles left on the link.
    link_remaining: Vec<u64>,
    /// Destination VC (or [`EJECT`]) of the in-flight flit.
    link_dest: Vec<u32>,
    /// Links with a flit in flight, iterated in link-index order.
    busy: LinkSet,
    /// Links that may be able to launch, iterated in link-index order.
    armed: LinkSet,

    // Event queues.
    /// `(nominal release time, flow)` of each flow's next release.
    release_heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// `(cycle, vc)` routing completions.
    ready_heap: BinaryHeap<Reverse<(u64, u32)>>,

    // Outputs.
    stats: Vec<FlowStats>,
    link_flits: Vec<u64>,
    trace: Option<Vec<TraceEvent>>,

    /// Credits freed this cycle, applied at the cycle boundary.
    credit_returns: Vec<u32>,
    /// Snapshot buffer for iterating `armed`/`busy` while mutating them.
    scratch: LinkSet,

    /// Telemetry gate ([`noc_telemetry::enabled`]), cached at construction
    /// and [`reset`](SimCore::reset) so the per-cycle recording cost is a
    /// local-bool branch instead of an atomic load per counter.
    tel: bool,
}

impl SimCore {
    /// Fresh *unseeded* state for `layout`: no plan is consulted, so the
    /// batch path can allocate one core up front and seed it per run via
    /// [`SimCore::reset`]. Callers that step the core directly must seed
    /// releases first with [`SimCore::seed_releases`].
    pub(crate) fn new(layout: &SimLayout) -> SimCore {
        let n_flows = layout.flow_count();
        let n_vcs = layout.vc_count();
        SimCore {
            now: 0,
            changed: false,
            live_flits: 0,
            src_released: vec![0; n_flows],
            src_injected: vec![0; n_flows],
            src_idx: vec![0; n_flows],
            src_next_packet: vec![0; n_flows],
            rel_times: vec![Vec::new(); n_flows],
            vc_head: vec![0; n_vcs],
            vc_head_idx: vec![0; n_vcs],
            vc_len: vec![0; n_vcs],
            vc_routed: vec![false; n_vcs],
            vc_credits: layout.vc_cap.clone(),
            link_flow: vec![IDLE; layout.n_links],
            link_pos: vec![0; layout.n_links],
            link_idx: vec![0; layout.n_links],
            link_remaining: vec![0; layout.n_links],
            link_dest: vec![EJECT; layout.n_links],
            busy: LinkSet::new(layout.n_links),
            armed: LinkSet::new(layout.n_links),
            release_heap: BinaryHeap::with_capacity(n_flows),
            ready_heap: BinaryHeap::new(),
            stats: vec![FlowStats::default(); n_flows],
            link_flits: vec![0; layout.n_links],
            trace: None,
            credit_returns: Vec::new(),
            scratch: LinkSet::new(layout.n_links),
            tel: noc_telemetry::enabled(),
        }
    }

    /// Rewinds the core to cycle zero for a new run over the same layout,
    /// keeping every allocation.
    pub(crate) fn reset(&mut self, layout: &SimLayout, system: &System, plan: &ReleasePlan) {
        self.now = 0;
        self.changed = false;
        self.live_flits = 0;
        self.src_released.fill(0);
        self.src_injected.fill(0);
        self.src_idx.fill(0);
        self.src_next_packet.fill(0);
        for v in &mut self.rel_times {
            v.clear();
        }
        self.vc_head.fill(0);
        self.vc_head_idx.fill(0);
        self.vc_len.fill(0);
        self.vc_routed.fill(false);
        self.vc_credits.copy_from_slice(&layout.vc_cap);
        self.link_flow.fill(IDLE);
        self.busy.clear();
        self.armed.clear();
        self.release_heap.clear();
        self.ready_heap.clear();
        for s in &mut self.stats {
            s.reset();
        }
        self.link_flits.fill(0);
        if let Some(tr) = &mut self.trace {
            tr.clear();
        }
        self.credit_returns.clear();
        self.tel = noc_telemetry::enabled();
        self.seed_releases(system, plan);
    }

    /// Pushes the first release of every flow of `plan` onto the release
    /// heap. Must run exactly once per run, on a fresh or just-reset core.
    pub(crate) fn seed_releases(&mut self, system: &System, plan: &ReleasePlan) {
        for f in 0..self.src_released.len() {
            let flow = FlowId::new(f as u32);
            if let Some(t) = plan.release_time(system, flow, 0) {
                self.release_heap.push(Reverse((t.as_u64(), f as u32)));
            }
        }
    }

    pub(crate) fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    pub(crate) fn trace(&self) -> &[TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    pub(crate) fn stats(&self) -> &[FlowStats] {
        &self.stats
    }

    pub(crate) fn link_flits(&self) -> &[u64] {
        &self.link_flits
    }

    /// Buffered flits in `vc`.
    pub(crate) fn vc_occupancy(&self, vc: u32) -> usize {
        self.vc_len[vc as usize] as usize
    }

    /// `true` when nothing is queued, buffered or in flight — O(1), by
    /// conservation: every released flit is in exactly one of a source
    /// queue, a VC buffer or a link until it ejects.
    pub(crate) fn is_quiescent(&self) -> bool {
        self.live_flits == 0
    }

    /// Advances one flit-clock cycle.
    pub(crate) fn step(&mut self, layout: &SimLayout, system: &System, plan: &ReleasePlan) {
        if self.tel {
            metrics::SIM_STEPS.incr();
        }
        self.changed = false;
        self.release_due(layout, system, plan);
        self.fire_ready(layout);
        self.arbitrate(layout);
        self.advance_links(layout);
        self.apply_credit_returns(layout);
        self.now += 1;
    }

    /// If the last [`step`](SimCore::step) changed nothing, jumps `now`
    /// forward to the next pending event (release or routing completion),
    /// clamped to `limit`. A no-change cycle implies no link is busy and no
    /// launch is possible, so the jump crosses no observable event.
    pub(crate) fn skip_idle_gap(&mut self, limit: u64) {
        if self.changed || self.now >= limit {
            return;
        }
        let next_release = self.release_heap.peek().map(|&Reverse((t, _))| t);
        let next_ready = self.ready_heap.peek().map(|&Reverse((t, _))| t);
        let next = match (next_release, next_ready) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => limit,
        };
        if next > self.now {
            let target = next.min(limit);
            if self.tel {
                metrics::SIM_CYCLES_SKIPPED.add(target - self.now);
            }
            self.now = target;
        }
    }

    /// Phase 1: move due packets into their source queues, in nominal-time
    /// then flow order (equal to the old engine's flow-major drain).
    fn release_due(&mut self, layout: &SimLayout, system: &System, plan: &ReleasePlan) {
        while let Some(&Reverse((t, f))) = self.release_heap.peek() {
            if t > self.now {
                break;
            }
            self.release_heap.pop();
            if self.tel {
                metrics::SIM_RELEASE_POPS.incr();
            }
            let fi = f as usize;
            let flow = FlowId::new(f);
            let packet = self.src_next_packet[fi];
            let len = u64::from(layout.flow_len[fi]);
            self.src_released[fi] += len;
            self.live_flits += len;
            self.rel_times[fi].push(t);
            self.src_next_packet[fi] = packet + 1;
            if let Some(next) = plan.release_time(system, flow, packet + 1) {
                self.release_heap.push(Reverse((next.as_u64(), f)));
            }
            self.armed.insert(layout.flow_first_link[fi]);
            self.changed = true;
            if let Some(tr) = &mut self.trace {
                tr.push(TraceEvent::PacketReleased {
                    cycle: Cycles::new(self.now),
                    flow,
                    packet,
                });
            }
        }
    }

    /// Phase 2: complete due routing decisions; the header at the VC head
    /// becomes eligible for arbitration this cycle.
    fn fire_ready(&mut self, layout: &SimLayout) {
        while let Some(&Reverse((t, vc))) = self.ready_heap.peek() {
            if t > self.now {
                break;
            }
            self.ready_heap.pop();
            if self.tel {
                metrics::SIM_READY_POPS.incr();
            }
            debug_assert!(self.vc_len[vc as usize] > 0, "routed header left its VC");
            self.vc_routed[vc as usize] = true;
            self.armed.insert(layout.vc_out_link[vc as usize]);
            self.changed = true;
        }
    }

    /// Can this candidate launch now? Returns the flow and stream position
    /// of the flit it would send. Sets `credit_blocked` when the candidate
    /// had a flit ready but no downstream buffer space — the backpressure
    /// bubble telemetry counts as a credit stall.
    fn candidate_ready(
        &self,
        layout: &SimLayout,
        cand: Candidate,
        credit_blocked: &mut bool,
    ) -> Option<(u32, u64)> {
        let (flow, pos) = match cand.feeder {
            Feeder::Source(f) => {
                let fi = f as usize;
                if self.src_injected[fi] >= self.src_released[fi] {
                    return None;
                }
                (f, self.src_injected[fi])
            }
            Feeder::Vc(v) => {
                let vi = v as usize;
                if self.vc_len[vi] == 0 {
                    return None;
                }
                if self.vc_head_idx[vi] == 0 && !self.vc_routed[vi] {
                    return None; // header not yet routed
                }
                (layout.vc_flow[vi], self.vc_head[vi])
            }
        };
        if cand.dest != EJECT && self.vc_credits[cand.dest as usize] == 0 {
            *credit_blocked = true;
            return None; // blocked: no downstream buffer space
        }
        Some((flow, pos))
    }

    /// Phase 3: for every armed free link, launch the highest-priority
    /// launchable candidate.
    fn arbitrate(&mut self, layout: &SimLayout) {
        self.scratch.copy_from(&self.armed);
        for w in 0..self.scratch.words.len() {
            let mut bits = self.scratch.words[w];
            while bits != 0 {
                let link = ((w as u32) << 6) | bits.trailing_zeros();
                bits &= bits - 1;
                self.arbitrate_link(layout, link);
            }
        }
    }

    /// Arbitration for one armed link.
    fn arbitrate_link(&mut self, layout: &SimLayout, link: u32) {
        let li = link as usize;
        if self.link_flow[li] != IDLE {
            return; // mid-transmission (linkl > 1); stays armed
        }
        let mut winner = None;
        let mut credit_blocked = false;
        for &cand in layout.candidates(li) {
            if let Some(ready) = self.candidate_ready(layout, cand, &mut credit_blocked) {
                winner = Some((cand, ready));
                break; // candidates are sorted by priority
            }
        }
        let Some((cand, (flow, pos))) = winner else {
            // Nothing launchable: disarm. Whatever could change that —
            // a release, a routing completion, a deposit, a credit
            // return — re-arms the link.
            if self.tel && credit_blocked {
                metrics::SIM_CREDIT_STALL_CYCLES.incr();
            }
            self.armed.remove(link);
            return;
        };
        let fi = flow as usize;
        let len = layout.flow_len[fi];
        let idx = match cand.feeder {
            Feeder::Source(_) => self.src_idx[fi],
            Feeder::Vc(v) => self.vc_head_idx[v as usize],
        };
        debug_assert_eq!(u64::from(idx), pos % u64::from(len), "flit index drift");
        let is_tail = idx + 1 == len;
        match cand.feeder {
            Feeder::Source(_) => {
                self.src_injected[fi] += 1;
                self.src_idx[fi] = if is_tail { 0 } else { idx + 1 };
            }
            Feeder::Vc(v) => {
                let vi = v as usize;
                self.vc_head[vi] = pos + 1;
                self.vc_head_idx[vi] = if is_tail { 0 } else { idx + 1 };
                self.vc_len[vi] -= 1;
                if is_tail {
                    // Tail left: the wormhole path is released and the
                    // next packet's header (if buffered) starts routing.
                    self.vc_routed[vi] = false;
                    if self.vc_len[vi] > 0 {
                        self.ready_heap
                            .push(Reverse((self.now + 1 + layout.routl, v)));
                    }
                }
                // The freed slot becomes a credit for the upstream
                // sender at the next cycle boundary.
                self.credit_returns.push(v);
            }
        }
        if cand.dest != EJECT {
            let c = &mut self.vc_credits[cand.dest as usize];
            debug_assert!(*c > 0);
            *c -= 1;
        }
        self.link_flow[li] = flow;
        self.link_pos[li] = pos;
        self.link_idx[li] = idx;
        self.link_remaining[li] = layout.linkl;
        self.link_dest[li] = cand.dest;
        self.busy.insert(link);
        self.link_flits[li] += 1;
        self.changed = true;
        if let Some(tr) = &mut self.trace {
            tr.push(TraceEvent::FlitLaunched {
                cycle: Cycles::new(self.now),
                link: LinkId::new(link),
                flit: flit_at(flow, pos, len),
            });
        }
    }

    /// Phase 4: advance in-flight flits; deposit or eject the ones whose
    /// link traversal completes.
    fn advance_links(&mut self, layout: &SimLayout) {
        self.scratch.copy_from(&self.busy);
        for w in 0..self.scratch.words.len() {
            let mut bits = self.scratch.words[w];
            while bits != 0 {
                let link = ((w as u32) << 6) | bits.trailing_zeros();
                bits &= bits - 1;
                self.advance_link(layout, link);
            }
        }
    }

    /// Advances the in-flight flit of one busy link.
    fn advance_link(&mut self, layout: &SimLayout, link: u32) {
        let li = link as usize;
        self.changed = true;
        self.link_remaining[li] -= 1;
        if self.link_remaining[li] > 0 {
            return;
        }
        self.busy.remove(link);
        let flow = self.link_flow[li];
        let pos = self.link_pos[li];
        let idx = self.link_idx[li];
        let dest = self.link_dest[li];
        self.link_flow[li] = IDLE;
        let fi = flow as usize;
        let len = layout.flow_len[fi];
        if dest == EJECT {
            self.live_flits -= 1;
            if idx + 1 == len {
                // Tail arrived: the packet is delivered at the start of
                // the next cycle.
                let arrival = self.now + 1;
                let packet = pos / u64::from(len);
                let released = self.rel_times[fi][packet as usize];
                let latency = Cycles::new(arrival - released);
                self.stats[fi].record(latency);
                if let Some(tr) = &mut self.trace {
                    tr.push(TraceEvent::PacketDelivered {
                        cycle: Cycles::new(arrival),
                        flow: FlowId::new(flow),
                        packet,
                        latency,
                    });
                }
            }
        } else {
            let vi = dest as usize;
            assert!(
                self.vc_len[vi] < layout.vc_cap[vi],
                "credit discipline violated: buffer overflow on {}",
                LinkId::new(link)
            );
            if self.vc_len[vi] == 0 {
                self.vc_head[vi] = pos;
                self.vc_head_idx[vi] = idx;
                if idx == 0 {
                    // A header at the head of an empty VC: routing
                    // starts next cycle.
                    debug_assert!(!self.vc_routed[vi]);
                    self.ready_heap
                        .push(Reverse((self.now + 1 + layout.routl, dest)));
                } else {
                    // A body catching up with its wormhole: available
                    // as soon as arbitration next looks.
                    self.armed.insert(layout.vc_out_link[vi]);
                }
            } else {
                debug_assert_eq!(
                    self.vc_head[vi] + u64::from(self.vc_len[vi]),
                    pos,
                    "VC stream out of order"
                );
            }
            self.vc_len[vi] += 1;
            if self.tel {
                metrics::SIM_VC_OCCUPANCY_HWM.record(u64::from(self.vc_len[vi]));
            }
        }
    }

    /// Phase 5: credits freed this cycle become visible upstream.
    fn apply_credit_returns(&mut self, layout: &SimLayout) {
        while let Some(v) = self.credit_returns.pop() {
            let vi = v as usize;
            self.vc_credits[vi] += 1;
            debug_assert!(self.vc_credits[vi] <= layout.vc_cap[vi]);
            // The credit may unblock a candidate on the VC's input link.
            self.armed.insert(layout.vc_in_link[vi]);
            self.changed = true;
        }
    }
}

/// Materialises the flit at stream position `pos` of a flow with `len`-flit
/// packets (only needed for traces).
fn flit_at(flow: u32, pos: u64, len: u32) -> Flit {
    Flit::new(
        FlowId::new(flow),
        pos / u64::from(len),
        (pos % u64::from(len)) as u32,
        len,
    )
}
