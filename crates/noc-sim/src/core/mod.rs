//! The data-oriented simulation core.
//!
//! Splits a simulation run into an immutable, shareable [`SimLayout`]
//! (everything derivable from the [`System`](noc_model::system::System):
//! dense port tables, priority-sorted per-link candidate lists, routing
//! latencies) and the flat mutable state of `SimCore` (flit/credit/
//! occupancy/arbiter arrays indexed by dense ids, event heaps). The public
//! [`Simulator`](crate::Simulator) is a thin facade over one core;
//! [`BatchSimulator`] reuses one core allocation across many release plans
//! over the same layout.

mod batch;
mod engine;
mod layout;

pub use batch::BatchSimulator;
pub use layout::SimLayout;

pub(crate) use engine::SimCore;
