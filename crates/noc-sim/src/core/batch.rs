//! Batched simulation over a shared layout.

use std::sync::Arc;

use noc_model::system::System;
use noc_model::time::Cycles;

use crate::core::engine::SimCore;
use crate::core::layout::SimLayout;
use crate::release::ReleasePlan;
use crate::stats::FlowStats;

/// Runs many [`ReleasePlan`]s over one shared [`SimLayout`], reusing a
/// single state allocation.
///
/// This is the kernel behind the offset sweeps: `search::search_worst_case`
/// (and through it `offset_sweep` / `critical_offset_sweep` and the
/// `table2` experiment) runs every candidate plan through one
/// `BatchSimulator` instead of building a fresh
/// [`Simulator`](crate::Simulator) per plan. Runs use the same
/// event-skipping kernel as [`Simulator::run_until`], so mostly-idle
/// horizons cost what their events cost, not their cycle count.
///
/// [`Simulator::run_until`]: crate::Simulator::run_until
///
/// # Examples
///
/// ```
/// # use noc_model::prelude::*;
/// # use noc_sim::prelude::*;
/// # let topology = Topology::mesh(2, 1);
/// # let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(1))
/// #     .priority(Priority::new(1)).period(Cycles::new(100)).length_flits(4).build()])?;
/// # let system = System::new(topology, NocConfig::default(), flows, &XyRouting)?;
/// let mut batch = BatchSimulator::new(&system);
/// let mut worst = Cycles::ZERO;
/// for plan in critical_offset_sweep(&system, FlowId::new(0), Cycles::new(100)) {
///     let stats = batch.run(&plan, Cycles::new(1_000));
///     if let Some(w) = stats[0].worst_latency() {
///         worst = worst.max(w);
///     }
/// }
/// assert_eq!(worst, system.zero_load_latency(FlowId::new(0)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct BatchSimulator<'a> {
    system: &'a System,
    layout: Arc<SimLayout>,
    core: SimCore,
}

impl<'a> BatchSimulator<'a> {
    /// Builds the layout for `system` and an empty reusable core.
    pub fn new(system: &'a System) -> BatchSimulator<'a> {
        BatchSimulator::with_layout(system, Arc::new(SimLayout::new(system)))
    }

    /// Reuses an existing `layout` of `system` (e.g. one taken from a
    /// [`Simulator`](crate::Simulator) via
    /// [`Simulator::layout`](crate::Simulator::layout)).
    ///
    /// # Panics
    ///
    /// Panics if `layout` was built for a different number of flows.
    pub fn with_layout(system: &'a System, layout: Arc<SimLayout>) -> BatchSimulator<'a> {
        assert_eq!(
            layout.flow_count(),
            system.flows().len(),
            "layout does not match the system's flow count"
        );
        // The core stays unseeded until the first `run`: building (and
        // seeding from) a placeholder plan here would only be thrown away
        // by the `reset` every run starts with.
        let core = SimCore::new(&layout);
        BatchSimulator {
            system,
            layout,
            core,
        }
    }

    /// The shared layout.
    pub fn layout(&self) -> &Arc<SimLayout> {
        &self.layout
    }

    /// Simulates `plan` until `horizon` (exclusive) with event skipping and
    /// returns the per-flow statistics of the run, indexed by `FlowId`.
    ///
    /// The returned slice borrows state that the next `run` overwrites.
    ///
    /// # Panics
    ///
    /// Panics if `plan` was built for a different number of flows.
    pub fn run(&mut self, plan: &ReleasePlan, horizon: Cycles) -> &[FlowStats] {
        assert_eq!(
            plan.len(),
            self.system.flows().len(),
            "release plan does not match the system's flow count"
        );
        self.core.reset(&self.layout, self.system, plan);
        let deadline = horizon.as_u64();
        while self.core.now < deadline {
            self.core.step(&self.layout, self.system, plan);
            self.core.skip_idle_gap(deadline);
        }
        self.core.stats()
    }
}
