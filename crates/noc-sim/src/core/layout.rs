//! The immutable, precomputed simulation layout.
//!
//! Everything about a [`System`] that the simulation kernel needs per cycle
//! is flattened here once — dense VC ids, per-link candidate lists sorted by
//! priority, injection/ejection wiring — so that many runs (an offset sweep,
//! a jitter study) share one layout and the hot loop never touches a
//! `HashMap` or chases a route.

use std::collections::HashMap;

use noc_model::ids::LinkId;
use noc_model::system::System;

/// Sentinel "destination VC" meaning the flit leaves the network (its link
/// ends at the destination node, so no credit is needed).
pub(crate) const EJECT: u32 = u32::MAX;

/// Who may feed a link, with its precomputed downstream destination.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate {
    /// The feeder: a source queue or an input VC.
    pub feeder: Feeder,
    /// Dense id of the VC the launched flit lands in, or [`EJECT`].
    ///
    /// Priorities are globally unique (enforced by `FlowSet::new`), so a
    /// `(link, priority)` pair identifies exactly one downstream VC and the
    /// old per-`(link, priority)` credit map collapses onto `dest`.
    pub dest: u32,
}

/// The two kinds of arbitration candidates.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Feeder {
    /// The source queue of the flow with this dense index.
    Source(u32),
    /// The input VC with this dense index.
    Vc(u32),
}

/// Immutable struct-of-arrays description of a [`System`] for simulation.
///
/// Built once by [`SimLayout::new`] and shared (via `Arc`) by every
/// [`Simulator`](crate::Simulator) or
/// [`BatchSimulator`](crate::core::BatchSimulator) run over the same system
/// — layout construction walks every route, the runs only index arrays.
///
/// Dense id spaces:
///
/// * **flows** — `FlowId::index()`, as in the rest of the workspace;
/// * **links** — `LinkId::index()`;
/// * **VCs** — one per (flow, intermediate router) in flow-major route
///   order, so a flow's VCs are contiguous and its wormhole successor is
///   `vc + 1`.
#[derive(Debug)]
pub struct SimLayout {
    /// Number of links in the topology.
    pub(crate) n_links: usize,
    /// Link traversal latency (`linkl`).
    pub(crate) linkl: u64,
    /// Routing latency (`routl`).
    pub(crate) routl: u64,

    /// Flits per packet, per flow.
    pub(crate) flow_len: Vec<u32>,
    /// First (injection) link of each flow's route.
    pub(crate) flow_first_link: Vec<u32>,

    /// Input link feeding each VC (credits freed by the VC return here).
    pub(crate) vc_in_link: Vec<u32>,
    /// Output link each VC drains into.
    pub(crate) vc_out_link: Vec<u32>,
    /// Buffer capacity of each VC, in flits.
    pub(crate) vc_cap: Vec<u32>,
    /// The flow owning each VC (unique: one priority level per flow).
    pub(crate) vc_flow: Vec<u32>,

    /// CSR offsets into [`SimLayout::cands`], one slice per link.
    pub(crate) cand_offset: Vec<u32>,
    /// Per-link candidate feeders, highest priority (smallest level) first.
    pub(crate) cands: Vec<Candidate>,

    /// Cold-path lookup for [`Simulator::vc_occupancy`]:
    /// `(in_link, priority level)` → dense VC id.
    ///
    /// [`Simulator::vc_occupancy`]: crate::Simulator::vc_occupancy
    pub(crate) vc_lookup: HashMap<(LinkId, u32), u32>,
}

impl SimLayout {
    /// Precomputes the simulation layout of `system`.
    pub fn new(system: &System) -> SimLayout {
        let n_links = system.topology().link_count();
        let n_flows = system.flows().len();

        let mut flow_len = Vec::with_capacity(n_flows);
        let mut flow_first_link = Vec::with_capacity(n_flows);
        let mut vc_in_link = Vec::new();
        let mut vc_out_link = Vec::new();
        let mut vc_cap = Vec::new();
        let mut vc_flow = Vec::new();
        let mut vc_lookup = HashMap::new();
        // (priority, candidate) per link; sorted then stripped below.
        let mut per_link: Vec<Vec<(u32, Candidate)>> = vec![Vec::new(); n_links];

        for (flow_id, flow) in system.flows().iter() {
            let prio = flow.priority().level();
            let links = system.route(flow_id).links();
            let f = flow_id.index() as u32;
            flow_len.push(flow.length_flits());
            flow_first_link.push(links[0].index() as u32);
            let first_vc = vc_in_link.len() as u32;
            // One VC per intermediate router: fed by links[p], feeding
            // links[p+1]. Routes always have ≥ 2 links (injection +
            // ejection), so every flow owns at least one VC and the source
            // always deposits into `first_vc`.
            for p in 0..links.len() - 1 {
                let vc = vc_in_link.len() as u32;
                let capacity = system
                    .buffer_depth_of_link(links[p])
                    .expect("intermediate links end at routers");
                vc_in_link.push(links[p].index() as u32);
                vc_out_link.push(links[p + 1].index() as u32);
                vc_cap.push(capacity);
                vc_flow.push(f);
                vc_lookup.insert((links[p], prio), vc);
                // The VC feeds links[p+1]; its flits land in the next VC of
                // the chain, or leave the network at the final link.
                let dest = if p + 2 < links.len() { vc + 1 } else { EJECT };
                per_link[links[p + 1].index()].push((
                    prio,
                    Candidate {
                        feeder: Feeder::Vc(vc),
                        dest,
                    },
                ));
            }
            per_link[links[0].index()].push((
                prio,
                Candidate {
                    feeder: Feeder::Source(f),
                    dest: first_vc,
                },
            ));
        }

        let mut cand_offset = Vec::with_capacity(n_links + 1);
        let mut cands = Vec::new();
        cand_offset.push(0);
        for list in &mut per_link {
            // Highest priority (smallest level) first; levels on one link
            // are unique, so the order is total.
            list.sort_by_key(|&(prio, _)| prio);
            cands.extend(list.iter().map(|&(_, c)| c));
            cand_offset.push(cands.len() as u32);
        }

        SimLayout {
            n_links,
            linkl: system.config().link_latency().as_u64(),
            routl: system.config().routing_latency().as_u64(),
            flow_len,
            flow_first_link,
            vc_in_link,
            vc_out_link,
            vc_cap,
            vc_flow,
            cand_offset,
            cands,
            vc_lookup,
        }
    }

    /// Number of flows the layout was built for.
    pub fn flow_count(&self) -> usize {
        self.flow_len.len()
    }

    /// Number of virtual channels in the layout (one per flow per
    /// intermediate router).
    pub fn vc_count(&self) -> usize {
        self.vc_in_link.len()
    }

    /// The candidate feeders of one link, highest priority first.
    pub(crate) fn candidates(&self, link: usize) -> &[Candidate] {
        let lo = self.cand_offset[link] as usize;
        let hi = self.cand_offset[link + 1] as usize;
        &self.cands[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::prelude::*;

    fn two_flow_system() -> System {
        let topology = Topology::mesh(3, 1);
        let flows = FlowSet::new(vec![
            Flow::builder(NodeId::new(0), NodeId::new(2))
                .priority(Priority::new(1))
                .period(Cycles::new(200))
                .length_flits(4)
                .build(),
            Flow::builder(NodeId::new(0), NodeId::new(2))
                .priority(Priority::new(2))
                .period(Cycles::new(400))
                .length_flits(8)
                .build(),
        ])
        .unwrap();
        System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap()
    }

    #[test]
    fn vcs_are_contiguous_per_flow_in_route_order() {
        let sys = two_flow_system();
        let layout = SimLayout::new(&sys);
        assert_eq!(layout.flow_count(), 2);
        // Route 0→2 on a 1×3 mesh: injection + 2 mesh links + ejection = 4
        // links, 3 VCs per flow.
        assert_eq!(layout.vc_count(), 6);
        assert_eq!(&layout.vc_flow, &[0, 0, 0, 1, 1, 1]);
        for f in 0..2u32 {
            let base = (f * 3) as usize;
            let links = sys.route(FlowId::new(f)).links();
            for p in 0..3 {
                assert_eq!(layout.vc_in_link[base + p], links[p].index() as u32);
                assert_eq!(layout.vc_out_link[base + p], links[p + 1].index() as u32);
            }
        }
    }

    #[test]
    fn candidates_are_priority_sorted_with_precomputed_dests() {
        let sys = two_flow_system();
        let layout = SimLayout::new(&sys);
        // Both flows share every link; every shared link has exactly two
        // candidates, flow 0 (priority 1) first.
        let first = layout.flow_first_link[0] as usize;
        let cands = layout.candidates(first);
        assert_eq!(cands.len(), 2);
        assert!(matches!(cands[0].feeder, Feeder::Source(0)));
        assert!(matches!(cands[1].feeder, Feeder::Source(1)));
        assert_eq!(cands[0].dest, 0, "source deposits into the flow's first VC");
        assert_eq!(cands[1].dest, 3);
        // The last VC of each chain ejects.
        let last_vc = 2usize;
        let eject_link = layout.vc_out_link[last_vc] as usize;
        let ej = layout
            .candidates(eject_link)
            .iter()
            .find(|c| matches!(c.feeder, Feeder::Vc(v) if v == last_vc as u32))
            .unwrap();
        assert_eq!(ej.dest, EJECT);
    }

    #[test]
    fn occupancy_lookup_matches_route_wiring() {
        let sys = two_flow_system();
        let layout = SimLayout::new(&sys);
        let links = sys.route(FlowId::new(1)).links();
        assert_eq!(layout.vc_lookup[&(links[0], 2)], 3);
        assert_eq!(layout.vc_lookup.get(&(links[0], 9)), None);
    }
}
