//! Optional event tracing for debugging and for visualising MPB scenarios.

use std::fmt;

use noc_model::ids::{FlowId, LinkId};
use noc_model::time::Cycles;

use crate::flit::Flit;

/// A timestamped simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet entered its source queue.
    PacketReleased {
        /// Release cycle.
        cycle: Cycles,
        /// Releasing flow.
        flow: FlowId,
        /// Per-flow packet sequence number.
        packet: u64,
    },
    /// A flit started crossing a link.
    FlitLaunched {
        /// Launch cycle.
        cycle: Cycles,
        /// The link being crossed.
        link: LinkId,
        /// The flit.
        flit: Flit,
    },
    /// A packet's tail flit reached the destination node.
    PacketDelivered {
        /// Arrival time of the tail flit.
        cycle: Cycles,
        /// Delivering flow.
        flow: FlowId,
        /// Per-flow packet sequence number.
        packet: u64,
        /// End-to-end latency (arrival − release).
        latency: Cycles,
    },
}

impl TraceEvent {
    /// The cycle the event occurred at.
    pub fn cycle(&self) -> Cycles {
        match *self {
            TraceEvent::PacketReleased { cycle, .. }
            | TraceEvent::FlitLaunched { cycle, .. }
            | TraceEvent::PacketDelivered { cycle, .. } => cycle,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::PacketReleased {
                cycle,
                flow,
                packet,
            } => write!(f, "[{cycle}] release {flow}#{packet}"),
            TraceEvent::FlitLaunched { cycle, link, flit } => {
                write!(f, "[{cycle}] {flit} on {link}")
            }
            TraceEvent::PacketDelivered {
                cycle,
                flow,
                packet,
                latency,
            } => write!(f, "[{cycle}] delivered {flow}#{packet} latency {latency}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_accessor_and_display() {
        let e = TraceEvent::PacketReleased {
            cycle: Cycles::new(3),
            flow: FlowId::new(0),
            packet: 1,
        };
        assert_eq!(e.cycle(), Cycles::new(3));
        assert_eq!(e.to_string(), "[3cy] release f0#1");

        let d = TraceEvent::PacketDelivered {
            cycle: Cycles::new(9),
            flow: FlowId::new(2),
            packet: 0,
            latency: Cycles::new(6),
        };
        assert!(d.to_string().contains("latency 6cy"));
    }
}
