//! The cycle-accurate simulator facade.
//!
//! Models the router of Figure 1: per-priority virtual channels with private
//! FIFO buffers of `buf(Ξ)` flits, credit-based flow control, and
//! priority-preemptive output arbitration — at any cycle each link carries a
//! flit of the highest-priority packet that is routed to it *and* holds a
//! downstream credit; a blocked high-priority packet (no credit) lets lower
//! priority traffic through, which is exactly the mechanism behind
//! multi-point progressive blocking.
//!
//! [`Simulator`] is a facade over the data-oriented kernel in
//! [`crate::core`]: an immutable [`SimLayout`] precomputed from the
//! [`System`] plus flat mutable state advanced by event-driven phases. Use
//! [`Simulator::with_layout`] (or [`crate::core::BatchSimulator`]) to share
//! one layout across many runs.
//!
//! # Timing model
//!
//! One call to [`Simulator::step`] advances one flit-clock cycle. A flit
//! launched on a link at cycle `t` occupies it for `linkl` cycles and is
//! delivered at time `t + linkl`. A header flit that becomes the head of an
//! input VC at cycle `t` is routed and eligible for arbitration at
//! `t + routl`. Credits freed by a flit leaving a buffer at cycle `t`
//! become visible upstream at `t + 1`. With `routl = 0`, `linkl = 1` and
//! `buf ≥ 2` an uncontended packet achieves exactly the zero-load latency
//! of Equation 1 (asserted by this crate's tests).
//!
//! # Event skipping
//!
//! [`Simulator::run_until`] and [`Simulator::run_until_delivered`] skip
//! stretches of idle cycles by jumping to the next pending release or
//! routing event; a skip never crosses a release, launch or delivery, so
//! observable behaviour (statistics, traces, `now` at the horizon) is
//! identical to stepping every cycle ([`Simulator::step`] itself always
//! advances exactly one cycle).

use std::sync::Arc;

use noc_model::ids::{FlowId, LinkId, Priority};
use noc_model::system::System;
use noc_model::time::Cycles;

use crate::core::{SimCore, SimLayout};
use crate::release::ReleasePlan;
use crate::stats::FlowStats;
use crate::trace::TraceEvent;

/// A cycle-accurate simulator for one [`System`] under one [`ReleasePlan`].
///
/// # Examples
///
/// Measure the latency of an uncontended packet and compare it with
/// Equation 1:
///
/// ```
/// # use noc_model::prelude::*;
/// # use noc_sim::prelude::*;
/// let topology = Topology::mesh(4, 1);
/// let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(3))
///     .priority(Priority::new(1))
///     .period(Cycles::new(10_000))
///     .length_flits(60)
///     .build()])?;
/// let system = System::new(topology, NocConfig::default(), flows, &XyRouting)?;
/// let plan = ReleasePlan::synchronous(&system).with_packet_limit(FlowId::new(0), 1);
/// let mut sim = Simulator::new(&system, plan);
/// sim.run_until(Cycles::new(1_000));
/// assert_eq!(
///     sim.flow_stats(FlowId::new(0)).worst_latency(),
///     Some(system.zero_load_latency(FlowId::new(0)))
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    system: &'a System,
    plan: ReleasePlan,
    layout: Arc<SimLayout>,
    core: SimCore,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator for `system` with releases governed by `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `plan` was built for a different number of flows.
    pub fn new(system: &'a System, plan: ReleasePlan) -> Simulator<'a> {
        Simulator::with_layout(system, Arc::new(SimLayout::new(system)), plan)
    }

    /// Builds a simulator over an existing `layout` of `system`, sharing
    /// the precomputation across runs.
    ///
    /// # Panics
    ///
    /// Panics if `plan` or `layout` was built for a different number of
    /// flows.
    pub fn with_layout(
        system: &'a System,
        layout: Arc<SimLayout>,
        plan: ReleasePlan,
    ) -> Simulator<'a> {
        assert_eq!(
            plan.len(),
            system.flows().len(),
            "release plan does not match the system's flow count"
        );
        assert_eq!(
            layout.flow_count(),
            system.flows().len(),
            "layout does not match the system's flow count"
        );
        let mut core = SimCore::new(&layout);
        core.seed_releases(system, &plan);
        Simulator {
            system,
            plan,
            layout,
            core,
        }
    }

    /// The shared immutable layout (pass to [`Simulator::with_layout`] or
    /// [`crate::core::BatchSimulator::with_layout`] to reuse it).
    pub fn layout(&self) -> &Arc<SimLayout> {
        &self.layout
    }

    /// Starts recording [`TraceEvent`]s (retrievable via
    /// [`Simulator::trace`]).
    pub fn enable_trace(&mut self) {
        self.core.enable_trace();
    }

    /// The events recorded so far (empty unless
    /// [`Simulator::enable_trace`] was called).
    pub fn trace(&self) -> &[TraceEvent] {
        self.core.trace()
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycles {
        Cycles::new(self.core.now)
    }

    /// Latency statistics of one flow.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of bounds.
    pub fn flow_stats(&self, flow: FlowId) -> &FlowStats {
        &self.core.stats()[flow.index()]
    }

    /// Statistics of all flows, indexed by [`FlowId`].
    pub fn stats(&self) -> &[FlowStats] {
        self.core.stats()
    }

    /// Number of flits currently buffered in the input VC fed by `link` at
    /// priority level `priority` (0 if that VC does not exist).
    pub fn vc_occupancy(&self, link: LinkId, priority: Priority) -> usize {
        self.layout
            .vc_lookup
            .get(&(link, priority.level()))
            .map_or(0, |&vc| self.core.vc_occupancy(vc))
    }

    /// Total flits that have started crossing `link` since the start of
    /// the simulation.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of bounds.
    pub fn link_flits(&self, link: LinkId) -> u64 {
        self.core.link_flits()[link.index()]
    }

    /// Fraction of elapsed cycles during which `link` was transmitting
    /// (`flits · linkl / now`); zero before the first step.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of bounds.
    pub fn link_utilisation(&self, link: LinkId) -> f64 {
        if self.core.now == 0 {
            return 0.0;
        }
        (self.core.link_flits()[link.index()] * self.layout_linkl()) as f64 / self.core.now as f64
    }

    fn layout_linkl(&self) -> u64 {
        self.system.config().link_latency().as_u64()
    }

    /// The `n` busiest links by transmitted flits, descending (ties broken
    /// by link id).
    pub fn busiest_links(&self, n: usize) -> Vec<(LinkId, u64)> {
        let mut ranked: Vec<(LinkId, u64)> = self
            .core
            .link_flits()
            .iter()
            .enumerate()
            .map(|(i, &f)| (LinkId::new(i as u32), f))
            .collect();
        ranked.sort_by_key(|&(id, f)| (std::cmp::Reverse(f), id));
        ranked.truncate(n);
        ranked
    }

    /// `true` when nothing is queued, buffered or in flight. Quiescence is
    /// permanent once every flow has exhausted its packet limit.
    ///
    /// O(1): the core counts live flits instead of scanning every source
    /// queue, VC buffer and link.
    pub fn is_quiescent(&self) -> bool {
        self.core.is_quiescent()
    }

    /// Advances the simulation by exactly one cycle (never skips).
    pub fn step(&mut self) {
        self.core.step(&self.layout, self.system, &self.plan);
    }

    /// Runs until `deadline` (exclusive), skipping idle stretches;
    /// completes immediately if already past it.
    pub fn run_until(&mut self, deadline: Cycles) {
        let limit = deadline.as_u64();
        while self.core.now < limit {
            self.core.step(&self.layout, self.system, &self.plan);
            self.core.skip_idle_gap(limit);
        }
    }

    /// Runs until `flow` has delivered `packets` packets, or `max` cycles
    /// have elapsed, skipping idle stretches (quiescence and pending events
    /// come from the core's event queues, not from scans). Returns `true`
    /// if the packet goal was reached.
    pub fn run_until_delivered(&mut self, flow: FlowId, packets: u64, max: Cycles) -> bool {
        let limit = max.as_u64();
        while self.core.stats()[flow.index()].delivered() < packets {
            if self.core.now >= limit {
                return false;
            }
            self.core.step(&self.layout, self.system, &self.plan);
            self.core.skip_idle_gap(limit);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::prelude::*;

    fn single_flow_system(routl: u64, buffer: u32, flits: u32) -> System {
        let topology = Topology::mesh(4, 1);
        let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(3))
            .priority(Priority::new(1))
            .period(Cycles::new(100_000))
            .length_flits(flits)
            .build()])
        .unwrap();
        let config = NocConfig::builder()
            .buffer_depth(buffer)
            .link_latency(Cycles::ONE)
            .routing_latency(Cycles::new(routl))
            .build();
        System::new(topology, config, flows, &XyRouting).unwrap()
    }

    #[test]
    fn zero_load_latency_matches_equation_one() {
        for (routl, flits) in [(0u64, 1u32), (0, 2), (0, 60), (1, 60), (2, 17)] {
            let sys = single_flow_system(routl, 4, flits);
            let plan = ReleasePlan::synchronous(&sys).with_packet_limit(FlowId::new(0), 1);
            let mut sim = Simulator::new(&sys, plan);
            sim.run_until(Cycles::new(10_000));
            assert_eq!(
                sim.flow_stats(FlowId::new(0)).worst_latency(),
                Some(sys.zero_load_latency(FlowId::new(0))),
                "routl={routl} flits={flits}"
            );
            assert!(sim.is_quiescent());
        }
    }

    #[test]
    fn one_flit_buffers_halve_throughput() {
        // buf = 1 cannot sustain one flit/cycle: latency exceeds Eq. 1.
        let sys = single_flow_system(0, 1, 30);
        let plan = ReleasePlan::synchronous(&sys).with_packet_limit(FlowId::new(0), 1);
        let mut sim = Simulator::new(&sys, plan);
        sim.run_until(Cycles::new(10_000));
        let observed = sim.flow_stats(FlowId::new(0)).worst_latency().unwrap();
        assert!(observed > sys.zero_load_latency(FlowId::new(0)));
    }

    #[test]
    fn periodic_releases_deliver_every_period() {
        let sys = single_flow_system(0, 4, 10);
        let plan = ReleasePlan::synchronous(&sys).with_packet_limit(FlowId::new(0), 5);
        let mut sim = Simulator::new(&sys, plan);
        assert!(sim.run_until_delivered(FlowId::new(0), 5, Cycles::new(600_000)));
        let stats = sim.flow_stats(FlowId::new(0));
        assert_eq!(stats.delivered(), 5);
        // All packets uncontended → identical latency.
        assert_eq!(stats.worst_latency(), stats.best_latency());
    }

    #[test]
    fn higher_priority_preempts_lower() {
        // Two flows sharing the whole path; the high-priority one is
        // unaffected, the low-priority one is delayed.
        let topology = Topology::mesh(4, 1);
        let flows = FlowSet::new(vec![
            Flow::builder(NodeId::new(0), NodeId::new(3))
                .priority(Priority::new(1))
                .period(Cycles::new(10_000))
                .length_flits(40)
                .build(),
            Flow::builder(NodeId::new(0), NodeId::new(3))
                .priority(Priority::new(2))
                .period(Cycles::new(10_000))
                .length_flits(40)
                .build(),
        ])
        .unwrap();
        let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let plan = ReleasePlan::synchronous(&sys)
            .with_packet_limit(FlowId::new(0), 1)
            .with_packet_limit(FlowId::new(1), 1);
        let mut sim = Simulator::new(&sys, plan);
        sim.run_until(Cycles::new(5_000));
        let hi = sim.flow_stats(FlowId::new(0)).worst_latency().unwrap();
        let lo = sim.flow_stats(FlowId::new(1)).worst_latency().unwrap();
        assert_eq!(hi, sys.zero_load_latency(FlowId::new(0)));
        // The low-priority packet waits for roughly the whole high packet.
        assert!(lo >= sys.zero_load_latency(FlowId::new(1)) + Cycles::new(40));
        assert!(sim.is_quiescent());
    }

    #[test]
    fn trace_records_release_launch_delivery() {
        let sys = single_flow_system(0, 4, 2);
        let plan = ReleasePlan::synchronous(&sys).with_packet_limit(FlowId::new(0), 1);
        let mut sim = Simulator::new(&sys, plan);
        sim.enable_trace();
        sim.run_until(Cycles::new(100));
        let trace = sim.trace();
        assert!(matches!(trace[0], TraceEvent::PacketReleased { .. }));
        let launches = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::FlitLaunched { .. }))
            .count();
        // 2 flits × 5 links.
        assert_eq!(launches, 10);
        assert!(matches!(
            trace.last().unwrap(),
            TraceEvent::PacketDelivered { .. }
        ));
    }

    #[test]
    fn occupancy_is_bounded_by_buffer_depth() {
        let sys = single_flow_system(0, 2, 60);
        let plan = ReleasePlan::synchronous(&sys).with_packet_limit(FlowId::new(0), 1);
        let mut sim = Simulator::new(&sys, plan);
        for _ in 0..200 {
            sim.step();
            for l in sys.topology().link_ids() {
                assert!(sim.vc_occupancy(l, Priority::new(1)) <= 2);
            }
        }
    }

    #[test]
    fn offset_delays_release() {
        let sys = single_flow_system(0, 4, 5);
        let plan = ReleasePlan::synchronous(&sys)
            .with_offset(FlowId::new(0), Cycles::new(50))
            .with_packet_limit(FlowId::new(0), 1);
        let mut sim = Simulator::new(&sys, plan);
        sim.enable_trace();
        sim.run_until(Cycles::new(200));
        // Delivered at 50 + C; latency still C (measured from release).
        assert_eq!(
            sim.flow_stats(FlowId::new(0)).worst_latency(),
            Some(sys.zero_load_latency(FlowId::new(0)))
        );
        assert_eq!(sim.trace()[0].cycle(), Cycles::new(50));
    }

    #[test]
    fn link_statistics_count_flits() {
        let sys = single_flow_system(0, 4, 10);
        let plan = ReleasePlan::synchronous(&sys).with_packet_limit(FlowId::new(0), 2);
        let mut sim = Simulator::new(&sys, plan);
        // The second packet releases at t = T = 100 000; run past it.
        sim.run_until(Cycles::new(250_000));
        assert!(sim.is_quiescent());
        // Every link of the route carried exactly 2 packets × 10 flits.
        for &l in sys.route(FlowId::new(0)).links() {
            assert_eq!(sim.link_flits(l), 20);
            assert!(sim.link_utilisation(l) > 0.0);
        }
        // Unused links carried nothing.
        let used: Vec<LinkId> = sys.route(FlowId::new(0)).links().to_vec();
        for l in sys.topology().link_ids() {
            if !used.contains(&l) {
                assert_eq!(sim.link_flits(l), 0);
            }
        }
        // The busiest links are exactly the route's links.
        let busiest = sim.busiest_links(used.len());
        assert!(busiest.iter().all(|&(l, f)| used.contains(&l) && f == 20));
    }

    #[test]
    fn utilisation_is_one_on_saturated_link() {
        // A single flow with back-to-back packets saturates its links.
        let topology = Topology::mesh(2, 1);
        let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(1))
            .priority(Priority::new(1))
            .period(Cycles::new(64))
            .length_flits(64)
            .build()])
        .unwrap();
        let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let mut sim = Simulator::new(&sys, ReleasePlan::synchronous(&sys));
        sim.run_until(Cycles::new(10_000));
        let inj = sys.topology().injection_link(NodeId::new(0));
        assert!(
            sim.link_utilisation(inj) > 0.95,
            "{}",
            sim.link_utilisation(inj)
        );
    }

    #[test]
    fn jittered_releases_obey_declared_bound() {
        use crate::release::JitterPattern;
        let topology = Topology::mesh(2, 1);
        let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(1))
            .priority(Priority::new(1))
            .period(Cycles::new(200))
            .jitter(Cycles::new(40))
            .length_flits(4)
            .build()])
        .unwrap();
        let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let plan = ReleasePlan::synchronous(&sys)
            .with_jitter(FlowId::new(0), JitterPattern::Seeded(3))
            .with_packet_limit(FlowId::new(0), 20);
        let mut sim = Simulator::new(&sys, plan);
        sim.enable_trace();
        sim.run_until(Cycles::new(10_000));
        let mut releases = 0;
        for e in sim.trace() {
            if let TraceEvent::PacketReleased { cycle, packet, .. } = *e {
                let tick = 200 * packet;
                assert!(cycle.as_u64() >= tick && cycle.as_u64() <= tick + 40);
                releases += 1;
            }
        }
        assert_eq!(releases, 20);
    }

    #[test]
    #[should_panic(expected = "release plan does not match")]
    fn plan_mismatch_panics() {
        let sys_a = single_flow_system(0, 2, 2);
        let topology = Topology::mesh(2, 1);
        let flows = FlowSet::new(vec![
            Flow::builder(NodeId::new(0), NodeId::new(1))
                .priority(Priority::new(1))
                .period(Cycles::new(100))
                .build(),
            Flow::builder(NodeId::new(1), NodeId::new(0))
                .priority(Priority::new(2))
                .period(Cycles::new(100))
                .build(),
        ])
        .unwrap();
        let sys_b = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let plan_b = ReleasePlan::synchronous(&sys_b);
        let _ = Simulator::new(&sys_a, plan_b);
    }

    #[test]
    fn shared_layout_runs_match_fresh_runs() {
        let sys = single_flow_system(0, 4, 10);
        let plan = ReleasePlan::synchronous(&sys).with_packet_limit(FlowId::new(0), 3);
        let mut fresh = Simulator::new(&sys, plan.clone());
        fresh.run_until(Cycles::new(300_000));
        let layout = Arc::clone(fresh.layout());
        let mut shared = Simulator::with_layout(&sys, layout, plan);
        shared.run_until(Cycles::new(300_000));
        assert_eq!(fresh.stats(), shared.stats());
    }

    #[test]
    fn step_and_run_until_agree() {
        // The public step() never skips; interleaving it with run_until
        // must leave the same state as stepping throughout.
        let sys = single_flow_system(0, 2, 8);
        let plan = ReleasePlan::synchronous(&sys);
        let mut stepped = Simulator::new(&sys, plan.clone());
        for _ in 0..5_000 {
            stepped.step();
        }
        let mut mixed = Simulator::new(&sys, plan);
        for _ in 0..37 {
            mixed.step();
        }
        mixed.run_until(Cycles::new(5_000));
        assert_eq!(stepped.now(), mixed.now());
        assert_eq!(stepped.stats(), mixed.stats());
    }
}
