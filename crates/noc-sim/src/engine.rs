//! The cycle-accurate simulation engine.
//!
//! Models the router of Figure 1: per-priority virtual channels with private
//! FIFO buffers of `buf(Ξ)` flits, credit-based flow control, and
//! priority-preemptive output arbitration — at any cycle each link carries a
//! flit of the highest-priority packet that is routed to it *and* holds a
//! downstream credit; a blocked high-priority packet (no credit) lets lower
//! priority traffic through, which is exactly the mechanism behind
//! multi-point progressive blocking.
//!
//! # Timing model
//!
//! One call to [`Simulator::step`] advances one flit-clock cycle. A flit
//! launched on a link at cycle `t` occupies it for `linkl` cycles and is
//! delivered at time `t + linkl`. A header flit that becomes the head of an
//! input VC at cycle `t` is routed and eligible for arbitration at
//! `t + routl`. Credits freed by a flit leaving a buffer at cycle `t`
//! become visible upstream at `t + 1`. With `routl = 0`, `linkl = 1` and
//! `buf ≥ 2` an uncontended packet achieves exactly the zero-load latency
//! of Equation 1 (asserted by this crate's tests).

use std::collections::{HashMap, VecDeque};

use noc_model::ids::{FlowId, LinkId, Priority};
use noc_model::system::System;
use noc_model::time::Cycles;
use noc_model::topology::Endpoint;

use crate::flit::Flit;
use crate::release::ReleasePlan;
use crate::stats::FlowStats;
use crate::trace::TraceEvent;

/// A flit in flight on a link.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    flit: Flit,
    remaining: u64,
}

/// The state of one input virtual channel at a router: the FIFO buffer fed
/// by `in_link`, draining into the fixed `out_link` of its flow's route.
#[derive(Debug)]
struct VcState {
    buffer: VecDeque<Flit>,
    capacity: usize,
    in_link: LinkId,
    out_link: LinkId,
    priority: u32,
    /// Head packet's header has been routed.
    routed: bool,
    /// Cycle at which the head header's routing completes.
    routing_ready_at: Option<u64>,
}

/// A traffic source: releases packets per the plan and queues their flits
/// for injection.
#[derive(Debug)]
struct SourceState {
    flow: FlowId,
    next_packet: u64,
    queue: VecDeque<Flit>,
    /// Release times of packets not yet fully delivered.
    release_times: HashMap<u64, u64>,
}

/// Who may feed a given link.
#[derive(Debug, Clone, Copy)]
enum Candidate {
    /// The source queue of a flow whose route starts with this link.
    Source { flow: FlowId },
    /// A router input VC (index into `Simulator::vcs`).
    Vc { idx: usize },
}

/// A cycle-accurate simulator for one [`System`] under one [`ReleasePlan`].
///
/// # Examples
///
/// Measure the latency of an uncontended packet and compare it with
/// Equation 1:
///
/// ```
/// # use noc_model::prelude::*;
/// # use noc_sim::prelude::*;
/// let topology = Topology::mesh(4, 1);
/// let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(3))
///     .priority(Priority::new(1))
///     .period(Cycles::new(10_000))
///     .length_flits(60)
///     .build()])?;
/// let system = System::new(topology, NocConfig::default(), flows, &XyRouting)?;
/// let plan = ReleasePlan::synchronous(&system).with_packet_limit(FlowId::new(0), 1);
/// let mut sim = Simulator::new(&system, plan);
/// sim.run_until(Cycles::new(1_000));
/// assert_eq!(
///     sim.flow_stats(FlowId::new(0)).worst_latency(),
///     Some(system.zero_load_latency(FlowId::new(0)))
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    system: &'a System,
    plan: ReleasePlan,
    now: u64,
    linkl: u64,
    routl: u64,

    vcs: Vec<VcState>,
    vc_index: HashMap<(LinkId, u32), usize>,
    /// Per link: candidate feeders sorted from highest to lowest priority.
    candidates: Vec<Vec<Candidate>>,
    /// Per link: in-flight flit, if the link is busy.
    links: Vec<Option<InFlight>>,
    /// Per (router-bound link, vc): free downstream buffer slots.
    credits: HashMap<(LinkId, u32), u32>,
    sources: Vec<SourceState>,
    stats: Vec<FlowStats>,
    link_flits: Vec<u64>,
    trace: Option<Vec<TraceEvent>>,
    credit_returns: Vec<(LinkId, u32)>,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator for `system` with releases governed by `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `plan` was built for a different number of flows.
    pub fn new(system: &'a System, plan: ReleasePlan) -> Simulator<'a> {
        assert_eq!(
            plan.len(),
            system.flows().len(),
            "release plan does not match the system's flow count"
        );
        let topology = system.topology();
        let n_links = topology.link_count();

        let mut vcs: Vec<VcState> = Vec::new();
        let mut vc_index = HashMap::new();
        let mut candidates: Vec<Vec<Candidate>> = vec![Vec::new(); n_links];
        let mut credits = HashMap::new();

        for (flow_id, flow) in system.flows().iter() {
            let prio = flow.priority().level();
            let route = system.route(flow_id);
            let links = route.links();
            // Credits for every router-bound link of the route, sized by
            // the (possibly per-router) buffer depth at the link's target.
            for &l in links {
                if let Some(depth) = system.buffer_depth_of_link(l) {
                    credits.insert((l, prio), depth);
                }
            }
            // The source feeds the first link.
            candidates[links[0].index()].push(Candidate::Source { flow: flow_id });
            // One VC at every intermediate router: fed by links[p], feeding
            // links[p+1].
            for p in 0..links.len() - 1 {
                let idx = vcs.len();
                let capacity = system
                    .buffer_depth_of_link(links[p])
                    .expect("intermediate links end at routers")
                    as usize;
                vcs.push(VcState {
                    buffer: VecDeque::with_capacity(capacity),
                    capacity,
                    in_link: links[p],
                    out_link: links[p + 1],
                    priority: prio,
                    routed: false,
                    routing_ready_at: None,
                });
                vc_index.insert((links[p], prio), idx);
                candidates[links[p + 1].index()].push(Candidate::Vc { idx });
            }
        }
        // Priority order per link (highest priority = smallest level first).
        for cand in &mut candidates {
            cand.sort_by_key(|c| match *c {
                Candidate::Source { flow } => system.flow(flow).priority().level(),
                Candidate::Vc { idx } => vcs[idx].priority,
            });
        }
        let sources = system
            .flows()
            .ids()
            .map(|flow| SourceState {
                flow,
                next_packet: 0,
                queue: VecDeque::new(),
                release_times: HashMap::new(),
            })
            .collect();
        Simulator {
            system,
            plan,
            now: 0,
            linkl: system.config().link_latency().as_u64(),
            routl: system.config().routing_latency().as_u64(),
            vcs,
            vc_index,
            candidates,
            links: vec![None; n_links],
            credits,
            sources,
            stats: vec![FlowStats::default(); system.flows().len()],
            link_flits: vec![0; n_links],
            trace: None,
            credit_returns: Vec::new(),
        }
    }

    /// Starts recording [`TraceEvent`]s (retrievable via
    /// [`Simulator::trace`]).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The events recorded so far (empty unless
    /// [`Simulator::enable_trace`] was called).
    pub fn trace(&self) -> &[TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycles {
        Cycles::new(self.now)
    }

    /// Latency statistics of one flow.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of bounds.
    pub fn flow_stats(&self, flow: FlowId) -> &FlowStats {
        &self.stats[flow.index()]
    }

    /// Statistics of all flows, indexed by [`FlowId`].
    pub fn stats(&self) -> &[FlowStats] {
        &self.stats
    }

    /// Number of flits currently buffered in the input VC fed by `link` at
    /// priority level `priority` (0 if that VC does not exist).
    pub fn vc_occupancy(&self, link: LinkId, priority: Priority) -> usize {
        self.vc_index
            .get(&(link, priority.level()))
            .map_or(0, |&idx| self.vcs[idx].buffer.len())
    }

    /// Total flits that have started crossing `link` since the start of
    /// the simulation.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of bounds.
    pub fn link_flits(&self, link: LinkId) -> u64 {
        self.link_flits[link.index()]
    }

    /// Fraction of elapsed cycles during which `link` was transmitting
    /// (`flits · linkl / now`); zero before the first step.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of bounds.
    pub fn link_utilisation(&self, link: LinkId) -> f64 {
        if self.now == 0 {
            return 0.0;
        }
        (self.link_flits[link.index()] * self.linkl) as f64 / self.now as f64
    }

    /// The `n` busiest links by transmitted flits, descending (ties broken
    /// by link id).
    pub fn busiest_links(&self, n: usize) -> Vec<(LinkId, u64)> {
        let mut ranked: Vec<(LinkId, u64)> = self
            .link_flits
            .iter()
            .enumerate()
            .map(|(i, &f)| (LinkId::new(i as u32), f))
            .collect();
        ranked.sort_by_key(|&(id, f)| (std::cmp::Reverse(f), id));
        ranked.truncate(n);
        ranked
    }

    /// `true` when nothing is queued, buffered or in flight. Quiescence is
    /// permanent once every flow has exhausted its packet limit.
    pub fn is_quiescent(&self) -> bool {
        self.sources.iter().all(|s| s.queue.is_empty())
            && self.vcs.iter().all(|v| v.buffer.is_empty())
            && self.links.iter().all(Option::is_none)
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        self.release_packets();
        self.progress_routing();
        self.arbitrate_and_launch();
        self.advance_links();
        self.apply_credit_returns();
        self.now += 1;
    }

    /// Runs until `deadline` (exclusive); completes immediately if already
    /// past it.
    pub fn run_until(&mut self, deadline: Cycles) {
        while self.now < deadline.as_u64() {
            self.step();
        }
    }

    /// Runs until `flow` has delivered `packets` packets, or `max` cycles
    /// have elapsed. Returns `true` if the packet goal was reached.
    pub fn run_until_delivered(&mut self, flow: FlowId, packets: u64, max: Cycles) -> bool {
        while self.stats[flow.index()].delivered() < packets {
            if self.now >= max.as_u64() {
                return false;
            }
            self.step();
        }
        true
    }

    fn release_packets(&mut self) {
        for src in &mut self.sources {
            let flow = self.system.flow(src.flow);
            while let Some(t) = self
                .plan
                .release_time(self.system, src.flow, src.next_packet)
            {
                if t.as_u64() > self.now {
                    break;
                }
                let packet = src.next_packet;
                let len = flow.length_flits();
                for index in 0..len {
                    src.queue.push_back(Flit::new(src.flow, packet, index, len));
                }
                src.release_times.insert(packet, t.as_u64());
                src.next_packet += 1;
                if let Some(tr) = &mut self.trace {
                    tr.push(TraceEvent::PacketReleased {
                        cycle: Cycles::new(self.now),
                        flow: src.flow,
                        packet,
                    });
                }
            }
        }
    }

    fn progress_routing(&mut self) {
        for vc in &mut self.vcs {
            let Some(head) = vc.buffer.front() else {
                vc.routing_ready_at = None;
                continue;
            };
            if head.is_header() && !vc.routed {
                match vc.routing_ready_at {
                    None => {
                        let ready = self.now + self.routl;
                        vc.routing_ready_at = Some(ready);
                        if self.now >= ready {
                            vc.routed = true;
                        }
                    }
                    Some(ready) if self.now >= ready => vc.routed = true,
                    Some(_) => {}
                }
            }
        }
    }

    fn arbitrate_and_launch(&mut self) {
        for link_idx in 0..self.links.len() {
            if self.links[link_idx].is_some() {
                continue; // mid-transmission (linkl > 1)
            }
            let link = LinkId::new(link_idx as u32);
            let needs_credit = matches!(
                self.system.topology().link(link).target(),
                Endpoint::Router(_)
            );
            let mut winner: Option<Candidate> = None;
            for &cand in &self.candidates[link_idx] {
                let (available, prio) = match cand {
                    Candidate::Source { flow } => (
                        !self.sources[flow.index()].queue.is_empty(),
                        self.system.flow(flow).priority().level(),
                    ),
                    Candidate::Vc { idx } => {
                        let vc = &self.vcs[idx];
                        let head_ready = match vc.buffer.front() {
                            Some(f) if f.is_header() => vc.routed,
                            Some(_) => true,
                            None => false,
                        };
                        (head_ready, vc.priority)
                    }
                };
                if !available {
                    continue;
                }
                if needs_credit && self.credits.get(&(link, prio)).copied().unwrap_or(0) == 0 {
                    continue; // blocked: no downstream buffer space
                }
                winner = Some(cand);
                break; // candidates are sorted by priority
            }
            let Some(winner) = winner else { continue };
            let flit = match winner {
                Candidate::Source { flow } => self.sources[flow.index()]
                    .queue
                    .pop_front()
                    .expect("availability checked"),
                Candidate::Vc { idx } => {
                    let vc = &mut self.vcs[idx];
                    debug_assert_eq!(vc.out_link, link, "candidate wired to wrong output");
                    let flit = vc.buffer.pop_front().expect("availability checked");
                    if flit.is_tail() {
                        vc.routed = false;
                        vc.routing_ready_at = None;
                    }
                    // The freed slot becomes a credit for the upstream
                    // sender of `in_link` at the next cycle boundary.
                    self.credit_returns.push((vc.in_link, vc.priority));
                    flit
                }
            };
            if needs_credit {
                let prio = self.system.flow(flit.flow()).priority().level();
                let c = self
                    .credits
                    .get_mut(&(link, prio))
                    .expect("credit entry exists for routed links");
                debug_assert!(*c > 0);
                *c -= 1;
            }
            self.links[link_idx] = Some(InFlight {
                flit,
                remaining: self.linkl,
            });
            self.link_flits[link_idx] += 1;
            if let Some(tr) = &mut self.trace {
                tr.push(TraceEvent::FlitLaunched {
                    cycle: Cycles::new(self.now),
                    link,
                    flit,
                });
            }
        }
    }

    fn advance_links(&mut self) {
        for link_idx in 0..self.links.len() {
            let Some(mut inflight) = self.links[link_idx].take() else {
                continue;
            };
            inflight.remaining -= 1;
            if inflight.remaining > 0 {
                self.links[link_idx] = Some(inflight);
                continue;
            }
            let link = LinkId::new(link_idx as u32);
            let flit = inflight.flit;
            match self.system.topology().link(link).target() {
                Endpoint::Router(_) => {
                    let prio = self.system.flow(flit.flow()).priority().level();
                    let idx = self.vc_index[&(link, prio)];
                    let vc = &mut self.vcs[idx];
                    assert!(
                        vc.buffer.len() < vc.capacity,
                        "credit discipline violated: buffer overflow on {link}"
                    );
                    vc.buffer.push_back(flit);
                }
                Endpoint::Node(_) => {
                    if flit.is_tail() {
                        let arrival = self.now + 1;
                        let src = &mut self.sources[flit.flow().index()];
                        let released = src
                            .release_times
                            .remove(&flit.packet())
                            .expect("packet was released");
                        let latency = Cycles::new(arrival - released);
                        self.stats[flit.flow().index()].record(latency);
                        if let Some(tr) = &mut self.trace {
                            tr.push(TraceEvent::PacketDelivered {
                                cycle: Cycles::new(arrival),
                                flow: flit.flow(),
                                packet: flit.packet(),
                                latency,
                            });
                        }
                    }
                }
            }
        }
    }

    fn apply_credit_returns(&mut self) {
        for (link, prio) in self.credit_returns.drain(..) {
            let c = self
                .credits
                .get_mut(&(link, prio))
                .expect("credit entry exists");
            *c += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::prelude::*;

    fn single_flow_system(routl: u64, buffer: u32, flits: u32) -> System {
        let topology = Topology::mesh(4, 1);
        let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(3))
            .priority(Priority::new(1))
            .period(Cycles::new(100_000))
            .length_flits(flits)
            .build()])
        .unwrap();
        let config = NocConfig::builder()
            .buffer_depth(buffer)
            .link_latency(Cycles::ONE)
            .routing_latency(Cycles::new(routl))
            .build();
        System::new(topology, config, flows, &XyRouting).unwrap()
    }

    #[test]
    fn zero_load_latency_matches_equation_one() {
        for (routl, flits) in [(0u64, 1u32), (0, 2), (0, 60), (1, 60), (2, 17)] {
            let sys = single_flow_system(routl, 4, flits);
            let plan = ReleasePlan::synchronous(&sys).with_packet_limit(FlowId::new(0), 1);
            let mut sim = Simulator::new(&sys, plan);
            sim.run_until(Cycles::new(10_000));
            assert_eq!(
                sim.flow_stats(FlowId::new(0)).worst_latency(),
                Some(sys.zero_load_latency(FlowId::new(0))),
                "routl={routl} flits={flits}"
            );
            assert!(sim.is_quiescent());
        }
    }

    #[test]
    fn one_flit_buffers_halve_throughput() {
        // buf = 1 cannot sustain one flit/cycle: latency exceeds Eq. 1.
        let sys = single_flow_system(0, 1, 30);
        let plan = ReleasePlan::synchronous(&sys).with_packet_limit(FlowId::new(0), 1);
        let mut sim = Simulator::new(&sys, plan);
        sim.run_until(Cycles::new(10_000));
        let observed = sim.flow_stats(FlowId::new(0)).worst_latency().unwrap();
        assert!(observed > sys.zero_load_latency(FlowId::new(0)));
    }

    #[test]
    fn periodic_releases_deliver_every_period() {
        let sys = single_flow_system(0, 4, 10);
        let plan = ReleasePlan::synchronous(&sys).with_packet_limit(FlowId::new(0), 5);
        let mut sim = Simulator::new(&sys, plan);
        assert!(sim.run_until_delivered(FlowId::new(0), 5, Cycles::new(600_000)));
        let stats = sim.flow_stats(FlowId::new(0));
        assert_eq!(stats.delivered(), 5);
        // All packets uncontended → identical latency.
        assert_eq!(stats.worst_latency(), stats.best_latency());
    }

    #[test]
    fn higher_priority_preempts_lower() {
        // Two flows sharing the whole path; the high-priority one is
        // unaffected, the low-priority one is delayed.
        let topology = Topology::mesh(4, 1);
        let flows = FlowSet::new(vec![
            Flow::builder(NodeId::new(0), NodeId::new(3))
                .priority(Priority::new(1))
                .period(Cycles::new(10_000))
                .length_flits(40)
                .build(),
            Flow::builder(NodeId::new(0), NodeId::new(3))
                .priority(Priority::new(2))
                .period(Cycles::new(10_000))
                .length_flits(40)
                .build(),
        ])
        .unwrap();
        let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let plan = ReleasePlan::synchronous(&sys)
            .with_packet_limit(FlowId::new(0), 1)
            .with_packet_limit(FlowId::new(1), 1);
        let mut sim = Simulator::new(&sys, plan);
        sim.run_until(Cycles::new(5_000));
        let hi = sim.flow_stats(FlowId::new(0)).worst_latency().unwrap();
        let lo = sim.flow_stats(FlowId::new(1)).worst_latency().unwrap();
        assert_eq!(hi, sys.zero_load_latency(FlowId::new(0)));
        // The low-priority packet waits for roughly the whole high packet.
        assert!(lo >= sys.zero_load_latency(FlowId::new(1)) + Cycles::new(40));
        assert!(sim.is_quiescent());
    }

    #[test]
    fn trace_records_release_launch_delivery() {
        let sys = single_flow_system(0, 4, 2);
        let plan = ReleasePlan::synchronous(&sys).with_packet_limit(FlowId::new(0), 1);
        let mut sim = Simulator::new(&sys, plan);
        sim.enable_trace();
        sim.run_until(Cycles::new(100));
        let trace = sim.trace();
        assert!(matches!(trace[0], TraceEvent::PacketReleased { .. }));
        let launches = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::FlitLaunched { .. }))
            .count();
        // 2 flits × 5 links.
        assert_eq!(launches, 10);
        assert!(matches!(
            trace.last().unwrap(),
            TraceEvent::PacketDelivered { .. }
        ));
    }

    #[test]
    fn occupancy_is_bounded_by_buffer_depth() {
        let sys = single_flow_system(0, 2, 60);
        let plan = ReleasePlan::synchronous(&sys).with_packet_limit(FlowId::new(0), 1);
        let mut sim = Simulator::new(&sys, plan);
        for _ in 0..200 {
            sim.step();
            for l in sys.topology().link_ids() {
                assert!(sim.vc_occupancy(l, Priority::new(1)) <= 2);
            }
        }
    }

    #[test]
    fn offset_delays_release() {
        let sys = single_flow_system(0, 4, 5);
        let plan = ReleasePlan::synchronous(&sys)
            .with_offset(FlowId::new(0), Cycles::new(50))
            .with_packet_limit(FlowId::new(0), 1);
        let mut sim = Simulator::new(&sys, plan);
        sim.enable_trace();
        sim.run_until(Cycles::new(200));
        // Delivered at 50 + C; latency still C (measured from release).
        assert_eq!(
            sim.flow_stats(FlowId::new(0)).worst_latency(),
            Some(sys.zero_load_latency(FlowId::new(0)))
        );
        assert_eq!(sim.trace()[0].cycle(), Cycles::new(50));
    }

    #[test]
    fn link_statistics_count_flits() {
        let sys = single_flow_system(0, 4, 10);
        let plan = ReleasePlan::synchronous(&sys).with_packet_limit(FlowId::new(0), 2);
        let mut sim = Simulator::new(&sys, plan);
        // The second packet releases at t = T = 100 000; run past it.
        sim.run_until(Cycles::new(250_000));
        assert!(sim.is_quiescent());
        // Every link of the route carried exactly 2 packets × 10 flits.
        for &l in sys.route(FlowId::new(0)).links() {
            assert_eq!(sim.link_flits(l), 20);
            assert!(sim.link_utilisation(l) > 0.0);
        }
        // Unused links carried nothing.
        let used: Vec<LinkId> = sys.route(FlowId::new(0)).links().to_vec();
        for l in sys.topology().link_ids() {
            if !used.contains(&l) {
                assert_eq!(sim.link_flits(l), 0);
            }
        }
        // The busiest links are exactly the route's links.
        let busiest = sim.busiest_links(used.len());
        assert!(busiest.iter().all(|&(l, f)| used.contains(&l) && f == 20));
    }

    #[test]
    fn utilisation_is_one_on_saturated_link() {
        // A single flow with back-to-back packets saturates its links.
        let topology = Topology::mesh(2, 1);
        let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(1))
            .priority(Priority::new(1))
            .period(Cycles::new(64))
            .length_flits(64)
            .build()])
        .unwrap();
        let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let mut sim = Simulator::new(&sys, ReleasePlan::synchronous(&sys));
        sim.run_until(Cycles::new(10_000));
        let inj = sys.topology().injection_link(NodeId::new(0));
        assert!(
            sim.link_utilisation(inj) > 0.95,
            "{}",
            sim.link_utilisation(inj)
        );
    }

    #[test]
    fn jittered_releases_obey_declared_bound() {
        use crate::release::JitterPattern;
        let topology = Topology::mesh(2, 1);
        let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(1))
            .priority(Priority::new(1))
            .period(Cycles::new(200))
            .jitter(Cycles::new(40))
            .length_flits(4)
            .build()])
        .unwrap();
        let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let plan = ReleasePlan::synchronous(&sys)
            .with_jitter(FlowId::new(0), JitterPattern::Seeded(3))
            .with_packet_limit(FlowId::new(0), 20);
        let mut sim = Simulator::new(&sys, plan);
        sim.enable_trace();
        sim.run_until(Cycles::new(10_000));
        let mut releases = 0;
        for e in sim.trace() {
            if let TraceEvent::PacketReleased { cycle, packet, .. } = *e {
                let tick = 200 * packet;
                assert!(cycle.as_u64() >= tick && cycle.as_u64() <= tick + 40);
                releases += 1;
            }
        }
        assert_eq!(releases, 20);
    }

    #[test]
    #[should_panic(expected = "release plan does not match")]
    fn plan_mismatch_panics() {
        let sys_a = single_flow_system(0, 2, 2);
        let topology = Topology::mesh(2, 1);
        let flows = FlowSet::new(vec![
            Flow::builder(NodeId::new(0), NodeId::new(1))
                .priority(Priority::new(1))
                .period(Cycles::new(100))
                .build(),
            Flow::builder(NodeId::new(1), NodeId::new(0))
                .priority(Priority::new(2))
                .period(Cycles::new(100))
                .build(),
        ])
        .unwrap();
        let sys_b = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let plan_b = ReleasePlan::synchronous(&sys_b);
        let _ = Simulator::new(&sys_a, plan_b);
    }
}
