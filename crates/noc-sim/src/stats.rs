//! Per-flow latency statistics collected by the simulator.

use std::fmt;

use noc_model::time::Cycles;

/// Observed end-to-end packet latencies of one flow.
///
/// Latency is measured from the packet's *release* (entry into the source
/// queue) to the arrival of its tail flit at the destination node — the
/// quantity the analyses of `noc-analysis` upper-bound.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlowStats {
    delivered: u64,
    worst: Option<Cycles>,
    best: Option<Cycles>,
    total: u64,
    samples: Vec<u64>,
}

impl FlowStats {
    /// Records one delivered packet.
    pub(crate) fn record(&mut self, latency: Cycles) {
        self.delivered += 1;
        self.total = self.total.saturating_add(latency.as_u64());
        self.worst = Some(self.worst.map_or(latency, |w| w.max(latency)));
        self.best = Some(self.best.map_or(latency, |b| b.min(latency)));
        self.samples.push(latency.as_u64());
    }

    /// Rewinds to the empty state, keeping the samples allocation (used by
    /// the batch path to reuse one `FlowStats` per flow across runs).
    pub(crate) fn reset(&mut self) {
        self.delivered = 0;
        self.worst = None;
        self.best = None;
        self.total = 0;
        self.samples.clear();
    }

    /// Number of packets fully delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Worst observed latency, if any packet completed.
    pub fn worst_latency(&self) -> Option<Cycles> {
        self.worst
    }

    /// Best observed latency, if any packet completed.
    pub fn best_latency(&self) -> Option<Cycles> {
        self.best
    }

    /// Mean observed latency, if any packet completed.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.delivered == 0 {
            None
        } else {
            Some(self.total as f64 / self.delivered as f64)
        }
    }

    /// The `p`-th percentile of observed latencies (nearest-rank method),
    /// if any packet completed.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> Option<Cycles> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in 0..=100");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(Cycles::new(
            sorted[rank.saturating_sub(1).min(sorted.len() - 1)],
        ))
    }

    /// All observed latencies in delivery order. One entry per packet —
    /// bounded by the run's packet count, so long saturation runs should
    /// use packet limits if memory matters.
    pub fn latencies(&self) -> impl Iterator<Item = Cycles> + '_ {
        self.samples.iter().map(|&v| Cycles::new(v))
    }
}

impl fmt::Display for FlowStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.worst, self.best) {
            (Some(w), Some(b)) => write!(
                f,
                "{} packets, latency best/mean/worst = {}/{:.1}/{}",
                self.delivered,
                b,
                self.mean_latency().unwrap_or_default(),
                w
            ),
            _ => write!(f, "no packets delivered"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_extremes_and_mean() {
        let mut s = FlowStats::default();
        assert_eq!(s.delivered(), 0);
        assert_eq!(s.worst_latency(), None);
        assert_eq!(s.mean_latency(), None);
        s.record(Cycles::new(10));
        s.record(Cycles::new(30));
        s.record(Cycles::new(20));
        assert_eq!(s.delivered(), 3);
        assert_eq!(s.worst_latency(), Some(Cycles::new(30)));
        assert_eq!(s.best_latency(), Some(Cycles::new(10)));
        assert_eq!(s.mean_latency(), Some(20.0));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = FlowStats::default();
        assert_eq!(s.percentile(99.0), None);
        for v in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            s.record(Cycles::new(v));
        }
        assert_eq!(s.percentile(0.0), Some(Cycles::new(10)));
        assert_eq!(s.percentile(50.0), Some(Cycles::new(50)));
        assert_eq!(s.percentile(90.0), Some(Cycles::new(90)));
        assert_eq!(s.percentile(100.0), Some(Cycles::new(100)));
        assert_eq!(s.latencies().count(), 10);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_out_of_range_panics() {
        let _ = FlowStats::default().percentile(150.0);
    }

    #[test]
    fn display_mentions_counts() {
        let mut s = FlowStats::default();
        assert_eq!(s.to_string(), "no packets delivered");
        s.record(Cycles::new(5));
        assert!(s.to_string().contains("1 packets"));
    }
}
