//! Worst-case scenario search by release-offset sweeping.
//!
//! Analytical bounds hold for *all* release phasings; a simulator only ever
//! observes one phasing per run. To approximate the worst case (the `R^sim`
//! columns of Table II) the paper's methodology sweeps the relative offsets
//! of the interfering flows and records the worst latency seen.
//!
//! Two search strategies are provided:
//!
//! * [`offset_sweep`] — the exhaustive grid (every offset in steps of
//!   `step`), the paper's original methodology;
//! * [`critical_offset_candidates`] / [`critical_offset_sweep`] — a pruned
//!   enumeration of only those offsets at which some interferer's alignment
//!   against the swept flow can change (derived from the flow set's
//!   periods, jitters and zero-load latencies), typically an order of
//!   magnitude fewer simulations for the same worst case.

use std::collections::BTreeSet;

use noc_model::ids::FlowId;
use noc_model::system::System;
use noc_model::time::Cycles;

use crate::core::BatchSimulator;
use crate::release::ReleasePlan;
use crate::stats::FlowStats;

/// Result of a worst-case search for one flow.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Worst latency observed across all scenarios.
    pub worst_latency: Cycles,
    /// The release plan that produced it.
    pub worst_plan: ReleasePlan,
    /// Packets observed in total (across all scenarios).
    pub packets_observed: u64,
}

/// Runs every plan produced by `plans`, simulating each for `horizon`
/// cycles, and returns the worst latency observed for `victim`.
///
/// All plans run through one [`BatchSimulator`] — the system's layout is
/// precomputed once and one state allocation is reused across the whole
/// sweep, with idle stretches skipped.
///
/// Returns `None` if no plan delivered any packet of `victim` within the
/// horizon.
///
/// # Examples
///
/// ```
/// # use noc_model::prelude::*;
/// # use noc_sim::prelude::*;
/// # use noc_sim::search::search_worst_case;
/// # let topology = Topology::mesh(2, 1);
/// # let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(1))
/// #     .priority(Priority::new(1)).period(Cycles::new(100)).length_flits(4).build()])?;
/// # let system = System::new(topology, NocConfig::default(), flows, &XyRouting)?;
/// let plans = vec![ReleasePlan::synchronous(&system)];
/// let outcome = search_worst_case(&system, FlowId::new(0), plans, Cycles::new(1_000));
/// assert_eq!(outcome.unwrap().worst_latency, system.zero_load_latency(FlowId::new(0)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn search_worst_case(
    system: &System,
    victim: FlowId,
    plans: impl IntoIterator<Item = ReleasePlan>,
    horizon: Cycles,
) -> Option<SearchOutcome> {
    let mut outcome: Option<SearchOutcome> = None;
    let mut packets_total = 0;
    let mut batch = BatchSimulator::new(system);
    for plan in plans {
        let stats: &FlowStats = &batch.run(&plan, horizon)[victim.index()];
        packets_total += stats.delivered();
        if let Some(worst) = stats.worst_latency() {
            let better = outcome.as_ref().is_none_or(|o| worst > o.worst_latency);
            if better {
                outcome = Some(SearchOutcome {
                    worst_latency: worst,
                    worst_plan: plan,
                    packets_observed: 0,
                });
            }
        }
    }
    if let Some(o) = &mut outcome {
        o.packets_observed = packets_total;
    }
    outcome
}

/// Builds one plan per offset of `swept` over `0..range` in steps of
/// `step`, all other flows released at time zero.
///
/// # Panics
///
/// Panics if `step` is zero.
pub fn offset_sweep(
    system: &System,
    swept: FlowId,
    range: Cycles,
    step: Cycles,
) -> Vec<ReleasePlan> {
    assert!(!step.is_zero(), "sweep step must be positive");
    let mut plans = Vec::new();
    let mut offset = 0;
    while offset < range.as_u64() {
        plans.push(ReleasePlan::synchronous(system).with_offset(swept, Cycles::new(offset)));
        offset += step.as_u64();
    }
    plans
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Critical-instant candidate offsets for `swept` over `0..range`.
///
/// Shifting the swept flow's release by one cycle only changes the observed
/// worst case when the shift re-aligns one of its packets against an event
/// of another flow. With every other flow released at time zero (the
/// [`offset_sweep`] scenario), those events live on each interferer's
/// release lattice `{k·T_f}` shifted by its jitter `J_f` and by packet
/// extents — the zero-load latencies `C_f` (when τ_f's tail clears a
/// resource) and `C_swept` (when the swept packet's own tail arrives).
/// Because the swept flow's releases repeat with its period, only the
/// residues of those event times modulo `range` matter.
///
/// The candidate set is therefore
/// `{ (k·T_f + δ) mod range : δ ∈ {0, J_f, C_f, C_f+J_f, −C_s, C_f−C_s} }`
/// for every other flow τ_f, each with a ±1-cycle guard band (the windows
/// are half-open, so the extremum can sit one cycle to either side of an
/// alignment point), plus offset 0 (the synchronous release). Offsets are
/// returned sorted and deduplicated. The lattice residues
/// `{k·T_f mod range}` are exactly the multiples of `gcd(range, T_f)` and
/// are enumerated in full — tiny for harmonic periods (a single residue
/// when `T_f` divides `range`), degenerating to every offset of the
/// exhaustive grid for co-prime period pairs, so pruning never drops an
/// alignment the grid would visit.
///
/// This is a *heuristic* in the presence of feedback (a shifted packet can
/// change downstream stalls, which shifts later events); the
/// `sweep_equivalence` integration test pins it against the exhaustive
/// sweep on the didactic workloads, and `NOC_MPB_SWEEP_EXHAUSTIVE=1`
/// restores the grid search end to end.
///
/// # Examples
///
/// ```
/// # use noc_model::prelude::*;
/// # use noc_sim::search::critical_offset_candidates;
/// # let topology = Topology::mesh(3, 1);
/// # let flows = FlowSet::new(vec![
/// #     Flow::builder(NodeId::new(0), NodeId::new(2))
/// #         .priority(Priority::new(1)).period(Cycles::new(200)).length_flits(4).build(),
/// #     Flow::builder(NodeId::new(1), NodeId::new(2))
/// #         .priority(Priority::new(2)).period(Cycles::new(800)).length_flits(8).build(),
/// # ])?;
/// # let system = System::new(topology, NocConfig::default(), flows, &XyRouting)?;
/// let candidates = critical_offset_candidates(&system, FlowId::new(0), Cycles::new(200));
/// // Far fewer than the 200 offsets of the exhaustive grid:
/// assert!(candidates.len() < 40);
/// assert!(candidates.contains(&Cycles::ZERO));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Panics
///
/// Panics if `range` is zero.
pub fn critical_offset_candidates(system: &System, swept: FlowId, range: Cycles) -> Vec<Cycles> {
    let t = range.as_u64();
    assert!(t >= 1, "sweep range must be positive");
    let c_s = i128::from(system.zero_load_latency(swept).as_u64());
    let mut candidates: BTreeSet<u64> = BTreeSet::new();
    let mut push = |v: i128| {
        let m = v.rem_euclid(i128::from(t)) as u64;
        candidates.insert(m);
        candidates.insert((m + 1) % t);
        candidates.insert((m + t - 1) % t);
    };
    push(0);
    for (id, flow) in system.flows().iter() {
        if id == swept {
            continue;
        }
        let t_f = (u128::from(flow.period().as_u64()) % u128::from(t)) as u64;
        let j_f = i128::from(flow.jitter().as_u64());
        let c_f = i128::from(system.zero_load_latency(id).as_u64());
        // {k·T_f mod t} = the multiples of gcd(t, T_f); gcd(t, 0) = t keeps
        // the harmonic case (T_f divides t) at the single residue 0.
        let g = gcd(t, t_f);
        for base in (0..t).step_by(usize::try_from(g).unwrap_or(usize::MAX)) {
            for delta in [0, j_f, c_f, c_f + j_f, -c_s, c_f - c_s] {
                push(i128::from(base) + delta);
            }
        }
    }
    candidates.into_iter().map(Cycles::new).collect()
}

/// Builds one plan per [`critical_offset_candidates`] offset of `swept`,
/// all other flows released at time zero — the pruned counterpart of
/// [`offset_sweep`].
///
/// # Panics
///
/// Panics if `range` is zero.
pub fn critical_offset_sweep(system: &System, swept: FlowId, range: Cycles) -> Vec<ReleasePlan> {
    critical_offset_candidates(system, swept, range)
        .into_iter()
        .map(|offset| ReleasePlan::synchronous(system).with_offset(swept, offset))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::prelude::*;

    fn contended_system() -> System {
        let topology = Topology::mesh(3, 1);
        let flows = FlowSet::new(vec![
            Flow::builder(NodeId::new(0), NodeId::new(2))
                .priority(Priority::new(1))
                .period(Cycles::new(200))
                .length_flits(20)
                .build(),
            Flow::builder(NodeId::new(0), NodeId::new(2))
                .priority(Priority::new(2))
                .period(Cycles::new(1_000))
                .length_flits(40)
                .build(),
        ])
        .unwrap();
        System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap()
    }

    #[test]
    fn sweep_generates_expected_plan_count() {
        let sys = contended_system();
        let plans = offset_sweep(&sys, FlowId::new(0), Cycles::new(100), Cycles::new(10));
        assert_eq!(plans.len(), 10);
        assert_eq!(plans[3].offset(FlowId::new(0)), Cycles::new(30));
    }

    #[test]
    fn search_finds_worse_cases_than_synchronous_release() {
        let sys = contended_system();
        let victim = FlowId::new(1);
        // Synchronous only:
        let sync = search_worst_case(
            &sys,
            victim,
            vec![ReleasePlan::synchronous(&sys)],
            Cycles::new(5_000),
        )
        .unwrap();
        // Sweeping the interferer's phase can only reveal worse latencies.
        let swept = search_worst_case(
            &sys,
            victim,
            offset_sweep(&sys, FlowId::new(0), Cycles::new(200), Cycles::new(5)),
            Cycles::new(5_000),
        )
        .unwrap();
        assert!(swept.worst_latency >= sync.worst_latency);
        assert!(swept.packets_observed > 0);
    }

    #[test]
    fn search_none_when_no_packets() {
        let sys = contended_system();
        // Victim released beyond the horizon delivers nothing.
        let plan = ReleasePlan::synchronous(&sys).with_offset(FlowId::new(1), Cycles::new(10_000));
        let outcome = search_worst_case(&sys, FlowId::new(1), vec![plan], Cycles::new(100));
        assert!(outcome.is_none());
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_rejected() {
        let sys = contended_system();
        let _ = offset_sweep(&sys, FlowId::new(0), Cycles::new(10), Cycles::ZERO);
    }

    #[test]
    fn candidates_are_sorted_deduplicated_and_in_range() {
        let sys = contended_system();
        let range = Cycles::new(200);
        let candidates = critical_offset_candidates(&sys, FlowId::new(0), range);
        assert!(!candidates.is_empty());
        for pair in candidates.windows(2) {
            assert!(pair[0] < pair[1], "not strictly ascending: {pair:?}");
        }
        assert!(candidates.iter().all(|&c| c < range));
        // The synchronous release is always a candidate.
        assert!(candidates.contains(&Cycles::ZERO));
    }

    #[test]
    fn candidates_include_latency_alignments() {
        let sys = contended_system();
        // Sweeping τ0 against τ1: τ1's zero-load latency mod 200 and the
        // relative alignment C₁ − C₀ must both be candidates.
        let c0 = sys.zero_load_latency(FlowId::new(0)).as_u64() as i128;
        let c1 = sys.zero_load_latency(FlowId::new(1)).as_u64() as i128;
        let candidates = critical_offset_candidates(&sys, FlowId::new(0), Cycles::new(200));
        for expect in [c1.rem_euclid(200), (c1 - c0).rem_euclid(200)] {
            assert!(
                candidates.contains(&Cycles::new(expect as u64)),
                "missing alignment offset {expect} in {candidates:?}"
            );
        }
    }

    #[test]
    fn critical_sweep_never_beats_bounds_and_spans_candidates() {
        let sys = contended_system();
        let plans = critical_offset_sweep(&sys, FlowId::new(0), Cycles::new(200));
        let candidates = critical_offset_candidates(&sys, FlowId::new(0), Cycles::new(200));
        assert_eq!(plans.len(), candidates.len());
        for (plan, offset) in plans.iter().zip(&candidates) {
            assert_eq!(plan.offset(FlowId::new(0)), *offset);
        }
    }

    #[test]
    fn critical_sweep_finds_the_exhaustive_worst_case_here() {
        // On this two-flow system the pruned search must reproduce the
        // exhaustive grid's worst observed latency for the victim.
        let sys = contended_system();
        let victim = FlowId::new(1);
        let horizon = Cycles::new(5_000);
        let exhaustive = search_worst_case(
            &sys,
            victim,
            offset_sweep(&sys, FlowId::new(0), Cycles::new(200), Cycles::ONE),
            horizon,
        )
        .unwrap();
        let pruned = search_worst_case(
            &sys,
            victim,
            critical_offset_sweep(&sys, FlowId::new(0), Cycles::new(200)),
            horizon,
        )
        .unwrap();
        assert_eq!(pruned.worst_latency, exhaustive.worst_latency);
    }

    #[test]
    fn coprime_periods_degenerate_to_the_full_grid() {
        // An interferer whose period is co-prime with the sweep range has
        // gcd 1, so its release lattice hits every residue: the candidate
        // set must cover the whole exhaustive grid rather than silently
        // truncating it.
        let topology = Topology::mesh(3, 1);
        let flows = FlowSet::new(vec![
            Flow::builder(NodeId::new(0), NodeId::new(2))
                .priority(Priority::new(1))
                .period(Cycles::new(200))
                .length_flits(20)
                .build(),
            Flow::builder(NodeId::new(0), NodeId::new(2))
                .priority(Priority::new(2))
                .period(Cycles::new(201))
                .length_flits(40)
                .build(),
        ])
        .unwrap();
        let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let candidates = critical_offset_candidates(&sys, FlowId::new(0), Cycles::new(200));
        assert_eq!(
            candidates.len(),
            200,
            "co-prime lattice must cover the grid"
        );
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn zero_range_rejected() {
        let sys = contended_system();
        let _ = critical_offset_candidates(&sys, FlowId::new(0), Cycles::ZERO);
    }
}
