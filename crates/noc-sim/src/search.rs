//! Worst-case scenario search by release-offset sweeping.
//!
//! Analytical bounds hold for *all* release phasings; a simulator only ever
//! observes one phasing per run. To approximate the worst case (the `R^sim`
//! columns of Table II) the paper's methodology sweeps the relative offsets
//! of the interfering flows and records the worst latency seen.

use noc_model::ids::FlowId;
use noc_model::system::System;
use noc_model::time::Cycles;

use crate::engine::Simulator;
use crate::release::ReleasePlan;
use crate::stats::FlowStats;

/// Result of a worst-case search for one flow.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Worst latency observed across all scenarios.
    pub worst_latency: Cycles,
    /// The release plan that produced it.
    pub worst_plan: ReleasePlan,
    /// Packets observed in total (across all scenarios).
    pub packets_observed: u64,
}

/// Runs every plan produced by `plans`, simulating each for `horizon`
/// cycles, and returns the worst latency observed for `victim`.
///
/// Returns `None` if no plan delivered any packet of `victim` within the
/// horizon.
///
/// # Examples
///
/// ```
/// # use noc_model::prelude::*;
/// # use noc_sim::prelude::*;
/// # use noc_sim::search::search_worst_case;
/// # let topology = Topology::mesh(2, 1);
/// # let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(1))
/// #     .priority(Priority::new(1)).period(Cycles::new(100)).length_flits(4).build()])?;
/// # let system = System::new(topology, NocConfig::default(), flows, &XyRouting)?;
/// let plans = vec![ReleasePlan::synchronous(&system)];
/// let outcome = search_worst_case(&system, FlowId::new(0), plans, Cycles::new(1_000));
/// assert_eq!(outcome.unwrap().worst_latency, system.zero_load_latency(FlowId::new(0)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn search_worst_case(
    system: &System,
    victim: FlowId,
    plans: impl IntoIterator<Item = ReleasePlan>,
    horizon: Cycles,
) -> Option<SearchOutcome> {
    let mut outcome: Option<SearchOutcome> = None;
    let mut packets_total = 0;
    for plan in plans {
        let mut sim = Simulator::new(system, plan.clone());
        sim.run_until(horizon);
        let stats: &FlowStats = sim.flow_stats(victim);
        packets_total += stats.delivered();
        if let Some(worst) = stats.worst_latency() {
            let better = outcome.as_ref().is_none_or(|o| worst > o.worst_latency);
            if better {
                outcome = Some(SearchOutcome {
                    worst_latency: worst,
                    worst_plan: plan,
                    packets_observed: 0,
                });
            }
        }
    }
    if let Some(o) = &mut outcome {
        o.packets_observed = packets_total;
    }
    outcome
}

/// Builds one plan per offset of `swept` over `0..range` in steps of
/// `step`, all other flows released at time zero.
///
/// # Panics
///
/// Panics if `step` is zero.
pub fn offset_sweep(
    system: &System,
    swept: FlowId,
    range: Cycles,
    step: Cycles,
) -> Vec<ReleasePlan> {
    assert!(!step.is_zero(), "sweep step must be positive");
    let mut plans = Vec::new();
    let mut offset = 0;
    while offset < range.as_u64() {
        plans.push(ReleasePlan::synchronous(system).with_offset(swept, Cycles::new(offset)));
        offset += step.as_u64();
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::prelude::*;

    fn contended_system() -> System {
        let topology = Topology::mesh(3, 1);
        let flows = FlowSet::new(vec![
            Flow::builder(NodeId::new(0), NodeId::new(2))
                .priority(Priority::new(1))
                .period(Cycles::new(200))
                .length_flits(20)
                .build(),
            Flow::builder(NodeId::new(0), NodeId::new(2))
                .priority(Priority::new(2))
                .period(Cycles::new(1_000))
                .length_flits(40)
                .build(),
        ])
        .unwrap();
        System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap()
    }

    #[test]
    fn sweep_generates_expected_plan_count() {
        let sys = contended_system();
        let plans = offset_sweep(&sys, FlowId::new(0), Cycles::new(100), Cycles::new(10));
        assert_eq!(plans.len(), 10);
        assert_eq!(plans[3].offset(FlowId::new(0)), Cycles::new(30));
    }

    #[test]
    fn search_finds_worse_cases_than_synchronous_release() {
        let sys = contended_system();
        let victim = FlowId::new(1);
        // Synchronous only:
        let sync = search_worst_case(
            &sys,
            victim,
            vec![ReleasePlan::synchronous(&sys)],
            Cycles::new(5_000),
        )
        .unwrap();
        // Sweeping the interferer's phase can only reveal worse latencies.
        let swept = search_worst_case(
            &sys,
            victim,
            offset_sweep(&sys, FlowId::new(0), Cycles::new(200), Cycles::new(5)),
            Cycles::new(5_000),
        )
        .unwrap();
        assert!(swept.worst_latency >= sync.worst_latency);
        assert!(swept.packets_observed > 0);
    }

    #[test]
    fn search_none_when_no_packets() {
        let sys = contended_system();
        // Victim released beyond the horizon delivers nothing.
        let plan = ReleasePlan::synchronous(&sys).with_offset(FlowId::new(1), Cycles::new(10_000));
        let outcome = search_worst_case(&sys, FlowId::new(1), vec![plan], Cycles::new(100));
        assert!(outcome.is_none());
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_rejected() {
        let sys = contended_system();
        let _ = offset_sweep(&sys, FlowId::new(0), Cycles::new(10), Cycles::ZERO);
    }
}
