//! Flits: the unit of transfer and flow control in a wormhole network.

use std::fmt;

use noc_model::ids::FlowId;

/// One flit of a packet in flight.
///
/// Wormhole switching routes the *header* flit and lets the payload follow
/// the same path in a pipeline; the *tail* flit releases the path. Packets
/// are numbered per flow in release order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    flow: FlowId,
    packet: u64,
    index: u32,
    packet_len: u32,
}

impl Flit {
    /// Creates flit `index` (0-based) of packet `packet` of `flow`, where
    /// the packet has `packet_len` flits in total.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ packet_len` or `packet_len == 0`.
    pub fn new(flow: FlowId, packet: u64, index: u32, packet_len: u32) -> Flit {
        assert!(packet_len > 0, "packets have at least one flit");
        assert!(index < packet_len, "flit index out of range");
        Flit {
            flow,
            packet,
            index,
            packet_len,
        }
    }

    /// The flow this flit belongs to.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Per-flow packet sequence number (0-based, release order).
    pub fn packet(&self) -> u64 {
        self.packet
    }

    /// Position within the packet (0 = header).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Total flits in this packet.
    pub fn packet_len(&self) -> u32 {
        self.packet_len
    }

    /// `true` for the header flit (carries routing information).
    pub fn is_header(&self) -> bool {
        self.index == 0
    }

    /// `true` for the tail flit (releases the wormhole path). A single-flit
    /// packet's flit is both header and tail.
    pub fn is_tail(&self) -> bool {
        self.index + 1 == self.packet_len
    }
}

impl fmt::Display for Flit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{}[{}/{}]",
            self.flow, self.packet, self.index, self.packet_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_tail_flags() {
        let h = Flit::new(FlowId::new(0), 0, 0, 3);
        assert!(h.is_header() && !h.is_tail());
        let b = Flit::new(FlowId::new(0), 0, 1, 3);
        assert!(!b.is_header() && !b.is_tail());
        let t = Flit::new(FlowId::new(0), 0, 2, 3);
        assert!(!t.is_header() && t.is_tail());
    }

    #[test]
    fn single_flit_packet_is_header_and_tail() {
        let f = Flit::new(FlowId::new(1), 7, 0, 1);
        assert!(f.is_header() && f.is_tail());
        assert_eq!(f.packet(), 7);
        assert_eq!(f.flow(), FlowId::new(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_bounds_checked() {
        let _ = Flit::new(FlowId::new(0), 0, 3, 3);
    }

    #[test]
    fn display_format() {
        let f = Flit::new(FlowId::new(2), 1, 0, 4);
        assert_eq!(f.to_string(), "f2#1[0/4]");
    }
}
