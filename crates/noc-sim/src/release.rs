//! Release plans: when each flow's packets enter their source queues.

use noc_model::arrival::ArrivalCurve;
use noc_model::ids::FlowId;
use noc_model::system::System;
use noc_model::time::Cycles;

/// Deterministic per-packet release jitter.
///
/// A flow with release jitter `Jᵢ` may release each packet up to `Jᵢ`
/// after its periodic tick; the analyses charge for the worst alignment.
/// These patterns let the simulator exercise specific alignments — all
/// values are clamped to the flow's declared `Jᵢ`, so a simulated release
/// never violates the model the analyses assume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JitterPattern {
    /// Release exactly on the periodic tick.
    #[default]
    None,
    /// Delay every release by the same amount (≤ Jᵢ).
    Fixed(Cycles),
    /// Delay odd-numbered packets by the full Jᵢ and release even ones on
    /// time — produces the "back-to-back hit" alignment (two packets only
    /// `T − J` apart) that interference jitter accounts for.
    Alternating,
    /// Pseudo-random delay in `[0, Jᵢ]`, deterministic per (seed, packet).
    Seeded(u64),
}

impl JitterPattern {
    /// The release delay of packet `k` for a flow with jitter bound `j`.
    fn delay(self, flow: FlowId, k: u64, j: Cycles) -> Cycles {
        match self {
            JitterPattern::None => Cycles::ZERO,
            JitterPattern::Fixed(d) => d.min(j),
            JitterPattern::Alternating => {
                if k % 2 == 1 {
                    j
                } else {
                    Cycles::ZERO
                }
            }
            JitterPattern::Seeded(seed) => {
                if j.is_zero() {
                    return Cycles::ZERO;
                }
                // splitmix64 over (seed, flow, k) for a stable stream.
                let mut z = seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(k + 1))
                    .wrapping_add(u64::from(flow.raw()) << 32);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                Cycles::new(z % (j.as_u64() + 1))
            }
        }
    }
}

/// Per-flow release schedule for a simulation run.
///
/// Each flow releases packets periodically starting at its *offset* (phase);
/// an optional per-flow packet limit turns a flow into a one-shot or k-shot
/// source, which is useful when constructing worst-case scenarios by hand.
///
/// # Examples
///
/// ```
/// # use noc_model::prelude::*;
/// # use noc_sim::release::ReleasePlan;
/// # let topology = Topology::mesh(2, 1);
/// # let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(1))
/// #     .priority(Priority::new(1)).period(Cycles::new(100)).build()]).unwrap();
/// # let system = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
/// let plan = ReleasePlan::synchronous(&system)
///     .with_offset(FlowId::new(0), Cycles::new(40))
///     .with_packet_limit(FlowId::new(0), 3);
/// assert_eq!(plan.offset(FlowId::new(0)), Cycles::new(40));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleasePlan {
    offsets: Vec<Cycles>,
    limits: Vec<Option<u64>>,
    jitter: Vec<JitterPattern>,
}

impl ReleasePlan {
    /// All flows release their first packet at time zero and continue
    /// periodically forever.
    pub fn synchronous(system: &System) -> ReleasePlan {
        let n = system.flows().len();
        ReleasePlan {
            offsets: vec![Cycles::ZERO; n],
            limits: vec![None; n],
            jitter: vec![JitterPattern::None; n],
        }
    }

    /// Sets the release offset (phase) of one flow.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range for the system this plan was built
    /// for.
    #[must_use]
    pub fn with_offset(mut self, flow: FlowId, offset: Cycles) -> ReleasePlan {
        self.offsets[flow.index()] = offset;
        self
    }

    /// Limits a flow to its first `packets` packets.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    #[must_use]
    pub fn with_packet_limit(mut self, flow: FlowId, packets: u64) -> ReleasePlan {
        self.limits[flow.index()] = Some(packets);
        self
    }

    /// Sets the release-jitter pattern of one flow; delays are clamped to
    /// the flow's declared jitter bound Jᵢ.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    #[must_use]
    pub fn with_jitter(mut self, flow: FlowId, pattern: JitterPattern) -> ReleasePlan {
        self.jitter[flow.index()] = pattern;
        self
    }

    /// The jitter pattern of `flow`.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    pub fn jitter_pattern(&self, flow: FlowId) -> JitterPattern {
        self.jitter[flow.index()]
    }

    /// The release offset of `flow`.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    pub fn offset(&self, flow: FlowId) -> Cycles {
        self.offsets[flow.index()]
    }

    /// The packet limit of `flow`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    pub fn packet_limit(&self, flow: FlowId) -> Option<u64> {
        self.limits[flow.index()]
    }

    /// Number of flows covered by this plan.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// `true` when the plan covers no flows.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Release time of packet `k` (0-based) of `flow` under this plan, or
    /// `None` if the flow is limited to fewer packets.
    ///
    /// The nominal (pre-jitter) time is the flow's arrival curve's
    /// worst-case realisation, `T · max(0, k − σ)`: a flow with burst
    /// allowance σ releases its first `σ + 1` packets together at the
    /// offset and the tail strictly periodically. For σ = 0 this is the
    /// plain periodic schedule `offset + T·k` the plan always produced.
    pub fn release_time(&self, system: &System, flow: FlowId, k: u64) -> Option<Cycles> {
        if let Some(limit) = self.limits[flow.index()] {
            if k >= limit {
                return None;
            }
        }
        let f = system.flow(flow);
        let delay = self.jitter[flow.index()].delay(flow, k, f.jitter());
        Some(self.offsets[flow.index()] + f.arrival_curve().nominal_release(k) + delay)
    }

    /// The earliest release time strictly after `now`, across all flows,
    /// or `None` when every flow has exhausted its packet limit by `now`.
    ///
    /// Packets of one flow enter the source queue in sequence order, so a
    /// packet whose nominal time has passed gates its successors even if
    /// jitter pulled a successor's nominal time earlier — this walks each
    /// flow's sequence exactly as the engine releases it. Event-skipping
    /// support: the simulator keeps the same quantity incrementally in its
    /// release heap; this is the from-scratch reference (and the cheap way
    /// for callers to bound an idle gap without building a simulator).
    pub fn next_release_after(&self, system: &System, now: Cycles) -> Option<Cycles> {
        let mut next: Option<Cycles> = None;
        for flow in system.flows().ids() {
            let mut k = 0;
            while let Some(t) = self.release_time(system, flow, k) {
                if t > now {
                    next = Some(next.map_or(t, |n| n.min(t)));
                    break;
                }
                k += 1;
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::prelude::*;

    fn system() -> System {
        let topology = Topology::mesh(2, 1);
        let flows = FlowSet::new(vec![
            Flow::builder(NodeId::new(0), NodeId::new(1))
                .priority(Priority::new(1))
                .period(Cycles::new(100))
                .build(),
            Flow::builder(NodeId::new(1), NodeId::new(0))
                .priority(Priority::new(2))
                .period(Cycles::new(300))
                .build(),
        ])
        .unwrap();
        System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap()
    }

    #[test]
    fn synchronous_defaults() {
        let sys = system();
        let plan = ReleasePlan::synchronous(&sys);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.offset(FlowId::new(0)), Cycles::ZERO);
        assert_eq!(plan.packet_limit(FlowId::new(0)), None);
    }

    #[test]
    fn release_times_are_periodic_with_offset() {
        let sys = system();
        let plan = ReleasePlan::synchronous(&sys).with_offset(FlowId::new(0), Cycles::new(7));
        assert_eq!(
            plan.release_time(&sys, FlowId::new(0), 0),
            Some(Cycles::new(7))
        );
        assert_eq!(
            plan.release_time(&sys, FlowId::new(0), 3),
            Some(Cycles::new(307))
        );
    }

    #[test]
    fn packet_limit_cuts_off_releases() {
        let sys = system();
        let plan = ReleasePlan::synchronous(&sys).with_packet_limit(FlowId::new(1), 2);
        assert!(plan.release_time(&sys, FlowId::new(1), 1).is_some());
        assert_eq!(plan.release_time(&sys, FlowId::new(1), 2), None);
    }

    fn jittery_system(j: u64) -> System {
        let topology = Topology::mesh(2, 1);
        let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(1))
            .priority(Priority::new(1))
            .period(Cycles::new(100))
            .jitter(Cycles::new(j))
            .build()])
        .unwrap();
        System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap()
    }

    #[test]
    fn alternating_jitter_creates_back_to_back_gap() {
        let sys = jittery_system(30);
        let f = FlowId::new(0);
        let plan = ReleasePlan::synchronous(&sys).with_jitter(f, JitterPattern::Alternating);
        let t0 = plan.release_time(&sys, f, 0).unwrap();
        let t1 = plan.release_time(&sys, f, 1).unwrap();
        let t2 = plan.release_time(&sys, f, 2).unwrap();
        assert_eq!(t0, Cycles::ZERO);
        assert_eq!(t1, Cycles::new(130)); // delayed by full J
        assert_eq!(t2, Cycles::new(200)); // back on the tick: gap of 70 = T − J
        assert_eq!(t2 - t1, Cycles::new(70));
    }

    #[test]
    fn fixed_jitter_clamps_to_declared_bound() {
        let sys = jittery_system(10);
        let f = FlowId::new(0);
        let plan =
            ReleasePlan::synchronous(&sys).with_jitter(f, JitterPattern::Fixed(Cycles::new(50)));
        // Requested 50 but the flow only declares J = 10.
        assert_eq!(plan.release_time(&sys, f, 0), Some(Cycles::new(10)));
        assert_eq!(
            plan.jitter_pattern(f),
            JitterPattern::Fixed(Cycles::new(50))
        );
    }

    #[test]
    fn seeded_jitter_is_deterministic_and_bounded() {
        let sys = jittery_system(25);
        let f = FlowId::new(0);
        let plan = ReleasePlan::synchronous(&sys).with_jitter(f, JitterPattern::Seeded(9));
        for k in 0..50 {
            let t = plan.release_time(&sys, f, k).unwrap();
            let tick = Cycles::new(100 * k);
            assert!(t >= tick && t <= tick + Cycles::new(25), "packet {k}");
            assert_eq!(plan.release_time(&sys, f, k), Some(t), "stable");
        }
    }

    #[test]
    fn next_release_after_scans_all_flows() {
        let sys = system(); // periods 100 and 300
        let plan = ReleasePlan::synchronous(&sys).with_offset(FlowId::new(1), Cycles::new(40));
        assert_eq!(
            plan.next_release_after(&sys, Cycles::ZERO),
            Some(Cycles::new(40))
        );
        assert_eq!(
            plan.next_release_after(&sys, Cycles::new(40)),
            Some(Cycles::new(100))
        );
        assert_eq!(
            plan.next_release_after(&sys, Cycles::new(100)),
            Some(Cycles::new(200))
        );
    }

    #[test]
    fn next_release_after_none_once_limits_exhaust() {
        let sys = system();
        let plan = ReleasePlan::synchronous(&sys)
            .with_packet_limit(FlowId::new(0), 2)
            .with_packet_limit(FlowId::new(1), 1);
        // Remaining releases: flow 0 at 0 and 100, flow 1 at 0.
        assert_eq!(
            plan.next_release_after(&sys, Cycles::ZERO),
            Some(Cycles::new(100))
        );
        assert_eq!(plan.next_release_after(&sys, Cycles::new(100)), None);
    }

    fn bursty_system(burst: u32) -> System {
        let topology = Topology::mesh(2, 1);
        let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(1))
            .priority(Priority::new(1))
            .period(Cycles::new(100))
            .burst(burst)
            .build()])
        .unwrap();
        System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap()
    }

    #[test]
    fn bursty_flow_front_loads_sigma_plus_one_packets() {
        let sys = bursty_system(2);
        let f = FlowId::new(0);
        let plan = ReleasePlan::synchronous(&sys).with_offset(f, Cycles::new(5));
        assert_eq!(plan.release_time(&sys, f, 0), Some(Cycles::new(5)));
        assert_eq!(plan.release_time(&sys, f, 1), Some(Cycles::new(5)));
        assert_eq!(plan.release_time(&sys, f, 2), Some(Cycles::new(5)));
        assert_eq!(plan.release_time(&sys, f, 3), Some(Cycles::new(105)));
        assert_eq!(plan.release_time(&sys, f, 4), Some(Cycles::new(205)));
    }

    #[test]
    fn bursty_next_release_skips_the_simultaneous_burst() {
        let sys = bursty_system(3);
        // Packets 0..=3 release at 0; the next distinct instant is T.
        assert_eq!(
            plan_next(&sys, Cycles::ZERO),
            Some(Cycles::new(100)),
            "burst collapses to one instant"
        );
    }

    fn plan_next(sys: &System, now: Cycles) -> Option<Cycles> {
        ReleasePlan::synchronous(sys).next_release_after(sys, now)
    }

    #[test]
    fn zero_burst_schedule_is_identical_to_periodic() {
        let periodic = system();
        let zero_burst = bursty_system(0);
        let f = FlowId::new(0);
        let a = ReleasePlan::synchronous(&periodic);
        let b = ReleasePlan::synchronous(&zero_burst);
        for k in 0..20 {
            assert_eq!(
                a.release_time(&periodic, f, k),
                b.release_time(&zero_burst, f, k),
                "packet {k}"
            );
        }
    }

    #[test]
    fn zero_jitter_flow_ignores_patterns() {
        let sys = system(); // J = 0 flows
        let f = FlowId::new(0);
        for pattern in [
            JitterPattern::Alternating,
            JitterPattern::Seeded(1),
            JitterPattern::Fixed(Cycles::new(99)),
        ] {
            let plan = ReleasePlan::synchronous(&sys).with_jitter(f, pattern);
            assert_eq!(plan.release_time(&sys, f, 3), Some(Cycles::new(300)));
        }
    }
}
