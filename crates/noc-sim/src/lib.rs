//! Cycle-accurate simulator for priority-preemptive wormhole NoCs.
//!
//! Implements the router architecture of §II / Figure 1 of *"Buffer-aware
//! bounds to multi-point progressive blocking in priority-preemptive NoCs"*
//! (DATE 2018): one virtual channel per priority level, per-VC FIFO buffers
//! of `buf(Ξ)` flits, credit-based flow control and priority-preemptive
//! output arbitration. The simulator produces the `R^sim` columns of the
//! paper's Table II and exhibits the multi-point progressive blocking
//! mechanism (buffered interference) the analyses bound.
//!
//! # Quick start
//!
//! ```
//! use noc_model::prelude::*;
//! use noc_sim::prelude::*;
//!
//! let topology = Topology::mesh(3, 1);
//! let flows = FlowSet::new(vec![
//!     Flow::builder(NodeId::new(0), NodeId::new(2))
//!         .priority(Priority::new(1))
//!         .period(Cycles::new(500))
//!         .length_flits(8)
//!         .build(),
//! ])?;
//! let system = System::new(topology, NocConfig::default(), flows, &XyRouting)?;
//!
//! let mut sim = Simulator::new(&system, ReleasePlan::synchronous(&system));
//! sim.run_until(Cycles::new(2_000));
//! let stats = sim.flow_stats(FlowId::new(0));
//! assert_eq!(stats.best_latency(), Some(system.zero_load_latency(FlowId::new(0))));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Module map (code ↔ paper)
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`engine`] | the §II / Figure 1 router: per-priority VCs, credit-based flow control, preemptive arbitration |
//! | [`core`] | the struct-of-arrays kernel behind [`Simulator`]: shared [`SimLayout`], event-driven stepping, [`BatchSimulator`] |
//! | [`flit`] | header/payload/tail flits of the wormhole model |
//! | [`release`] | packet release phasings (synchronous, offsets, jitter patterns) |
//! | [`search`] | Table II `R^sim` methodology: exhaustive offset sweep and the pruned critical-instant candidate search |
//! | [`stats`] | per-flow best/worst observed latencies |
//! | [`trace`] | event traces — `examples/mpb_trace` replays Figure 2's MPB mechanism from these |
//! | [`metrics`] | kernel telemetry (steps, skipped cycles, credit stalls) — no-ops unless `NOC_TELEMETRY=1` |
//!
//! # Architecture: facade over a struct-of-arrays core
//!
//! [`Simulator`] is a thin facade. The actual machine lives in [`core`]
//! and is split into an immutable *layout* and flat mutable *state*:
//!
//! * [`SimLayout`] is precomputed **once** from a [`noc_model::system::System`]:
//!   dense virtual-channel ids, per-link candidate lists sorted by priority
//!   with each candidate's downstream destination resolved ahead of time,
//!   and per-flow route/length tables. It is immutable and lives behind an
//!   `Arc`, so many runs — different release plans, offsets, jitter seeds —
//!   share one layout ([`Simulator::with_layout`], [`BatchSimulator`]).
//! * The per-run state is flat arrays indexed by those dense ids: VC
//!   buffers are (head, length) cursors into each flow's flit stream
//!   rather than `VecDeque`s of flits, credits are a plain `Vec` (globally
//!   unique priorities make `(link, priority)` identify exactly one VC),
//!   and release times live in a flat per-flow `Vec` instead of a
//!   `HashMap`.
//!
//! Stepping is event-driven: a release min-heap and a routing-ready heap
//! feed a set of *armed* links, and each cycle touches only armed or busy
//! links. When a step changes nothing, `run_until` /
//! `run_until_delivered` jump `now` straight to the next pending event
//! (**event skipping**). The invariant — checked by
//! `tests/engine_equivalence.rs` against the pre-refactor engine — is that
//! a skip never crosses a release, launch or delivery, so statistics,
//! traces and horizon behaviour are bit-identical to stepping every
//! cycle. [`Simulator::step`] itself always advances exactly one cycle.
//!
//! For sweeps, [`BatchSimulator`] reuses one layout *and* one state
//! allocation across plans ([`search::critical_offset_sweep`] and the
//! Table II experiment drive it); `BENCH_sim.json` records the resulting
//! speedups over the per-run-allocation baseline.
//!
//! # Fidelity preconditions
//!
//! * **`buf(Ξ) ≥ 2`.** Equation 1 assumes flits stream at link rate; with
//!   a 1-flit buffer the credit round-trip inserts a bubble behind every
//!   flit, so observed latencies can exceed Equation 1's zero-load latency
//!   — and hence cross the analytical bounds built on it. All
//!   simulation-vs-bound comparisons (`R^sim ≤ R^IBN ≤ R^XLWX`,
//!   `tests/soundness_invariant.rs`) require depths of at least two flits;
//!   the full statement lives on
//!   [`noc_model::config::NocConfigBuilder::buffer_depth`].
//! * With `routl = 0`, `linkl = 1` and `buf(Ξ) ≥ 2`, an uncontended packet
//!   achieves exactly the zero-load latency of Equation 1 (tested).
//! * A blocked high-priority packet with exhausted credits releases its
//!   links to lower-priority traffic — the root cause of MPB.
//! * Observed latencies are *lower* bounds on the true worst case; use
//!   [`search::search_worst_case`] with [`search::offset_sweep`] or
//!   [`search::critical_offset_sweep`] to explore release offsets.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod core;
pub mod engine;
pub mod flit;
pub mod metrics;
pub mod release;
pub mod search;
pub mod stats;
pub mod trace;

pub use core::{BatchSimulator, SimLayout};
pub use engine::Simulator;
pub use release::{JitterPattern, ReleasePlan};
pub use stats::FlowStats;
pub use trace::TraceEvent;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::core::{BatchSimulator, SimLayout};
    pub use crate::engine::Simulator;
    pub use crate::flit::Flit;
    pub use crate::release::{JitterPattern, ReleasePlan};
    pub use crate::search::{
        critical_offset_candidates, critical_offset_sweep, offset_sweep, search_worst_case,
        SearchOutcome,
    };
    pub use crate::stats::FlowStats;
    pub use crate::trace::TraceEvent;
}
