//! Differential regression test: the struct-of-arrays engine behind
//! [`Simulator`] (with event skipping) against the pre-refactor engine.
//!
//! The `reference` module below is the original cycle-accurate engine —
//! `VecDeque` buffers, `HashMap` credits, per-cycle scans — kept verbatim
//! except that it collects latencies in plain vectors (the crate's
//! `FlowStats::record` is private) and always records a trace. The SoA
//! engine must produce bit-identical latency sequences *and* identical
//! trace event sequences (same events, same order, same cycles) on:
//!
//! * the didactic Table II scenario (synchronous and the pruned
//!   critical-instant offset sweep, both buffer depths),
//! * the Figure 2 multi-point-progressive-blocking scenario,
//! * randomized-jitter release schedules,
//!
//! and across every public driving mode: `step` loops, `run_until` (the
//! skipping path), `run_until_delivered`, and the shared-layout
//! [`BatchSimulator`] batch path.

use noc_model::prelude::*;
use noc_sim::prelude::*;
use noc_workload::didactic;

/// The pre-refactor engine, embedded as the semantics oracle.
mod reference {
    use std::collections::{HashMap, VecDeque};

    use noc_model::ids::{FlowId, LinkId};
    use noc_model::system::System;
    use noc_model::time::Cycles;
    use noc_model::topology::Endpoint;
    use noc_sim::flit::Flit;
    use noc_sim::release::ReleasePlan;
    use noc_sim::trace::TraceEvent;

    #[derive(Debug, Clone, Copy)]
    struct InFlight {
        flit: Flit,
        remaining: u64,
    }

    #[derive(Debug)]
    struct VcState {
        buffer: VecDeque<Flit>,
        capacity: usize,
        in_link: LinkId,
        out_link: LinkId,
        priority: u32,
        routed: bool,
        routing_ready_at: Option<u64>,
    }

    #[derive(Debug)]
    struct SourceState {
        flow: FlowId,
        next_packet: u64,
        queue: VecDeque<Flit>,
        release_times: HashMap<u64, u64>,
    }

    #[derive(Debug, Clone, Copy)]
    enum Candidate {
        Source { flow: FlowId },
        Vc { idx: usize },
    }

    /// The original scan-everything simulator; one [`step`](Self::step) is
    /// one cycle, with the exact phase order of the pre-refactor engine.
    #[derive(Debug)]
    pub struct RefSimulator<'a> {
        system: &'a System,
        plan: ReleasePlan,
        now: u64,
        linkl: u64,
        routl: u64,
        vcs: Vec<VcState>,
        vc_index: HashMap<(LinkId, u32), usize>,
        candidates: Vec<Vec<Candidate>>,
        links: Vec<Option<InFlight>>,
        credits: HashMap<(LinkId, u32), u32>,
        sources: Vec<SourceState>,
        /// Per-flow latencies in delivery order.
        latencies: Vec<Vec<u64>>,
        trace: Vec<TraceEvent>,
        credit_returns: Vec<(LinkId, u32)>,
    }

    impl<'a> RefSimulator<'a> {
        pub fn new(system: &'a System, plan: ReleasePlan) -> RefSimulator<'a> {
            assert_eq!(plan.len(), system.flows().len());
            let topology = system.topology();
            let n_links = topology.link_count();

            let mut vcs: Vec<VcState> = Vec::new();
            let mut vc_index = HashMap::new();
            let mut candidates: Vec<Vec<Candidate>> = vec![Vec::new(); n_links];
            let mut credits = HashMap::new();

            for (flow_id, flow) in system.flows().iter() {
                let prio = flow.priority().level();
                let route = system.route(flow_id);
                let links = route.links();
                for &l in links {
                    if let Some(depth) = system.buffer_depth_of_link(l) {
                        credits.insert((l, prio), depth);
                    }
                }
                candidates[links[0].index()].push(Candidate::Source { flow: flow_id });
                for p in 0..links.len() - 1 {
                    let idx = vcs.len();
                    let capacity = system
                        .buffer_depth_of_link(links[p])
                        .expect("intermediate links end at routers")
                        as usize;
                    vcs.push(VcState {
                        buffer: VecDeque::with_capacity(capacity),
                        capacity,
                        in_link: links[p],
                        out_link: links[p + 1],
                        priority: prio,
                        routed: false,
                        routing_ready_at: None,
                    });
                    vc_index.insert((links[p], prio), idx);
                    candidates[links[p + 1].index()].push(Candidate::Vc { idx });
                }
            }
            for cand in &mut candidates {
                cand.sort_by_key(|c| match *c {
                    Candidate::Source { flow } => system.flow(flow).priority().level(),
                    Candidate::Vc { idx } => vcs[idx].priority,
                });
            }
            let sources = system
                .flows()
                .ids()
                .map(|flow| SourceState {
                    flow,
                    next_packet: 0,
                    queue: VecDeque::new(),
                    release_times: HashMap::new(),
                })
                .collect();
            RefSimulator {
                system,
                plan,
                now: 0,
                linkl: system.config().link_latency().as_u64(),
                routl: system.config().routing_latency().as_u64(),
                vcs,
                vc_index,
                candidates,
                links: vec![None; n_links],
                credits,
                sources,
                latencies: vec![Vec::new(); system.flows().len()],
                trace: Vec::new(),
                credit_returns: Vec::new(),
            }
        }

        pub fn now(&self) -> u64 {
            self.now
        }

        pub fn delivered(&self, flow: FlowId) -> u64 {
            self.latencies[flow.index()].len() as u64
        }

        /// Per-flow latencies in delivery order, indexed by `FlowId`.
        pub fn latencies(&self) -> &[Vec<u64>] {
            &self.latencies
        }

        pub fn trace(&self) -> &[TraceEvent] {
            &self.trace
        }

        pub fn step(&mut self) {
            self.release_packets();
            self.progress_routing();
            self.arbitrate_and_launch();
            self.advance_links();
            self.apply_credit_returns();
            self.now += 1;
        }

        pub fn run_until(&mut self, deadline: Cycles) {
            while self.now < deadline.as_u64() {
                self.step();
            }
        }

        pub fn run_until_delivered(&mut self, flow: FlowId, packets: u64, max: Cycles) -> bool {
            while self.delivered(flow) < packets {
                if self.now >= max.as_u64() {
                    return false;
                }
                self.step();
            }
            true
        }

        fn release_packets(&mut self) {
            for src in &mut self.sources {
                let flow = self.system.flow(src.flow);
                while let Some(t) = self
                    .plan
                    .release_time(self.system, src.flow, src.next_packet)
                {
                    if t.as_u64() > self.now {
                        break;
                    }
                    let packet = src.next_packet;
                    let len = flow.length_flits();
                    for index in 0..len {
                        src.queue.push_back(Flit::new(src.flow, packet, index, len));
                    }
                    src.release_times.insert(packet, t.as_u64());
                    src.next_packet += 1;
                    self.trace.push(TraceEvent::PacketReleased {
                        cycle: Cycles::new(self.now),
                        flow: src.flow,
                        packet,
                    });
                }
            }
        }

        fn progress_routing(&mut self) {
            for vc in &mut self.vcs {
                let Some(head) = vc.buffer.front() else {
                    vc.routing_ready_at = None;
                    continue;
                };
                if head.is_header() && !vc.routed {
                    match vc.routing_ready_at {
                        None => {
                            let ready = self.now + self.routl;
                            vc.routing_ready_at = Some(ready);
                            if self.now >= ready {
                                vc.routed = true;
                            }
                        }
                        Some(ready) if self.now >= ready => vc.routed = true,
                        Some(_) => {}
                    }
                }
            }
        }

        fn arbitrate_and_launch(&mut self) {
            for link_idx in 0..self.links.len() {
                if self.links[link_idx].is_some() {
                    continue;
                }
                let link = LinkId::new(link_idx as u32);
                let needs_credit = matches!(
                    self.system.topology().link(link).target(),
                    Endpoint::Router(_)
                );
                let mut winner: Option<Candidate> = None;
                for &cand in &self.candidates[link_idx] {
                    let (available, prio) = match cand {
                        Candidate::Source { flow } => (
                            !self.sources[flow.index()].queue.is_empty(),
                            self.system.flow(flow).priority().level(),
                        ),
                        Candidate::Vc { idx } => {
                            let vc = &self.vcs[idx];
                            let head_ready = match vc.buffer.front() {
                                Some(f) if f.is_header() => vc.routed,
                                Some(_) => true,
                                None => false,
                            };
                            (head_ready, vc.priority)
                        }
                    };
                    if !available {
                        continue;
                    }
                    if needs_credit && self.credits.get(&(link, prio)).copied().unwrap_or(0) == 0 {
                        continue;
                    }
                    winner = Some(cand);
                    break;
                }
                let Some(winner) = winner else { continue };
                let flit = match winner {
                    Candidate::Source { flow } => self.sources[flow.index()]
                        .queue
                        .pop_front()
                        .expect("availability checked"),
                    Candidate::Vc { idx } => {
                        let vc = &mut self.vcs[idx];
                        assert_eq!(vc.out_link, link, "candidate wired to wrong output");
                        let flit = vc.buffer.pop_front().expect("availability checked");
                        if flit.is_tail() {
                            vc.routed = false;
                            vc.routing_ready_at = None;
                        }
                        self.credit_returns.push((vc.in_link, vc.priority));
                        flit
                    }
                };
                if needs_credit {
                    let prio = self.system.flow(flit.flow()).priority().level();
                    let c = self
                        .credits
                        .get_mut(&(link, prio))
                        .expect("credit entry exists for routed links");
                    *c -= 1;
                }
                self.links[link_idx] = Some(InFlight {
                    flit,
                    remaining: self.linkl,
                });
                self.trace.push(TraceEvent::FlitLaunched {
                    cycle: Cycles::new(self.now),
                    link,
                    flit,
                });
            }
        }

        fn advance_links(&mut self) {
            for link_idx in 0..self.links.len() {
                let Some(mut inflight) = self.links[link_idx].take() else {
                    continue;
                };
                inflight.remaining -= 1;
                if inflight.remaining > 0 {
                    self.links[link_idx] = Some(inflight);
                    continue;
                }
                let link = LinkId::new(link_idx as u32);
                let flit = inflight.flit;
                match self.system.topology().link(link).target() {
                    Endpoint::Router(_) => {
                        let prio = self.system.flow(flit.flow()).priority().level();
                        let idx = self.vc_index[&(link, prio)];
                        let vc = &mut self.vcs[idx];
                        assert!(vc.buffer.len() < vc.capacity, "overflow on {link}");
                        vc.buffer.push_back(flit);
                    }
                    Endpoint::Node(_) => {
                        if flit.is_tail() {
                            let arrival = self.now + 1;
                            let src = &mut self.sources[flit.flow().index()];
                            let released = src
                                .release_times
                                .remove(&flit.packet())
                                .expect("packet was released");
                            let latency = arrival - released;
                            self.latencies[flit.flow().index()].push(latency);
                            self.trace.push(TraceEvent::PacketDelivered {
                                cycle: Cycles::new(arrival),
                                flow: flit.flow(),
                                packet: flit.packet(),
                                latency: Cycles::new(latency),
                            });
                        }
                    }
                }
            }
        }

        fn apply_credit_returns(&mut self) {
            for (link, prio) in self.credit_returns.drain(..) {
                *self.credits.get_mut(&(link, prio)).expect("credit entry") += 1;
            }
        }
    }
}

use reference::RefSimulator;

/// Runs the reference engine to `horizon` and returns it.
fn run_reference<'a>(system: &'a System, plan: &ReleasePlan, horizon: u64) -> RefSimulator<'a> {
    let mut sim = RefSimulator::new(system, plan.clone());
    sim.run_until(Cycles::new(horizon));
    sim
}

/// Asserts the SoA simulator's statistics and trace equal the reference's.
fn assert_matches_reference(sim: &Simulator<'_>, reference: &RefSimulator<'_>, label: &str) {
    for flow in sim.stats().iter().zip(reference.latencies()).enumerate() {
        let (idx, (stats, ref_lat)) = flow;
        let got: Vec<u64> = stats.latencies().map(|c| c.as_u64()).collect();
        assert_eq!(got, *ref_lat, "{label}: latency sequence of flow {idx}");
        assert_eq!(
            stats.delivered(),
            ref_lat.len() as u64,
            "{label}: delivered count of flow {idx}"
        );
        assert_eq!(
            stats.worst_latency().map(|c| c.as_u64()),
            ref_lat.iter().copied().max(),
            "{label}: worst latency of flow {idx}"
        );
        assert_eq!(
            stats.best_latency().map(|c| c.as_u64()),
            ref_lat.iter().copied().min(),
            "{label}: best latency of flow {idx}"
        );
    }
    assert_eq!(
        sim.trace(),
        reference.trace(),
        "{label}: trace event sequences differ"
    );
}

#[test]
fn didactic_synchronous_matches_reference() {
    for depth in [2, 10] {
        let sys = didactic::system(depth);
        let plan = ReleasePlan::synchronous(&sys);
        let reference = run_reference(&sys, &plan, 18_000);
        let mut sim = Simulator::new(&sys, plan);
        sim.enable_trace();
        sim.run_until(Cycles::new(18_000));
        assert_eq!(sim.now().as_u64(), reference.now());
        assert_matches_reference(&sim, &reference, &format!("didactic b={depth}"));
    }
}

#[test]
fn figure2_mpb_scenario_matches_reference() {
    let sys = didactic::figure2_system(4);
    let plan = ReleasePlan::synchronous(&sys);
    let reference = run_reference(&sys, &plan, 12_000);
    let mut sim = Simulator::new(&sys, plan);
    sim.enable_trace();
    sim.run_until(Cycles::new(12_000));
    assert_matches_reference(&sim, &reference, "figure2 b=4");
}

#[test]
fn pure_step_loop_matches_reference() {
    // step() never skips; drive both engines cycle by cycle and compare
    // intermediate delivered counts as well as the final state.
    let sys = didactic::figure2_system(2);
    let f = didactic::Figure2Flows::ids();
    let plan = ReleasePlan::synchronous(&sys);
    let mut reference = RefSimulator::new(&sys, plan.clone());
    let mut sim = Simulator::new(&sys, plan);
    sim.enable_trace();
    for _ in 0..3_000 {
        sim.step();
        reference.step();
        assert_eq!(
            sim.flow_stats(f.tau_i).delivered(),
            reference.delivered(f.tau_i)
        );
    }
    assert_matches_reference(&sim, &reference, "figure2 stepped");
}

#[test]
fn critical_offset_sweep_matches_reference_via_simulator_and_batch() {
    // Every candidate plan of the pruned Table II sweep, checked through
    // both the facade (with tracing) and the shared-layout batch path.
    let sys = didactic::system(2);
    let f = didactic::DidacticFlows::ids();
    let period = sys.flow(f.tau1).period();
    let mut batch = BatchSimulator::new(&sys);
    let mut plans = 0;
    for plan in critical_offset_sweep(&sys, f.tau1, period) {
        let reference = run_reference(&sys, &plan, 18_000);
        let mut sim =
            Simulator::with_layout(&sys, std::sync::Arc::clone(batch.layout()), plan.clone());
        sim.enable_trace();
        sim.run_until(Cycles::new(18_000));
        assert_matches_reference(&sim, &reference, &format!("sweep plan {plans}"));

        let stats = batch.run(&plan, Cycles::new(18_000));
        for (idx, (got, want)) in stats.iter().zip(reference.latencies()).enumerate() {
            let got: Vec<u64> = got.latencies().map(|c| c.as_u64()).collect();
            assert_eq!(got, *want, "batch sweep plan {plans}: flow {idx}");
        }
        plans += 1;
    }
    assert!(plans > 1, "sweep produced {plans} plans");
}

#[test]
fn randomized_jitter_matches_reference() {
    // Three contended flows with declared jitter bounds and seeded random
    // release delays: the release heap must reproduce the scan-based
    // release order (and its sequence-order gating) exactly.
    let topology = Topology::mesh(4, 1);
    let flows = FlowSet::new(vec![
        Flow::builder(NodeId::new(0), NodeId::new(3))
            .priority(Priority::new(1))
            .period(Cycles::new(150))
            .jitter(Cycles::new(60))
            .length_flits(8)
            .build(),
        Flow::builder(NodeId::new(1), NodeId::new(3))
            .priority(Priority::new(2))
            .period(Cycles::new(400))
            .jitter(Cycles::new(200))
            .length_flits(24)
            .build(),
        Flow::builder(NodeId::new(0), NodeId::new(2))
            .priority(Priority::new(3))
            .period(Cycles::new(900))
            .jitter(Cycles::new(350))
            .length_flits(40)
            .build(),
    ])
    .unwrap();
    let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
    for seed in [1u64, 7, 42] {
        let mut plan = ReleasePlan::synchronous(&sys);
        for flow in sys.flows().ids() {
            plan = plan.with_jitter(flow, JitterPattern::Seeded(seed));
        }
        let reference = run_reference(&sys, &plan, 30_000);
        let mut sim = Simulator::new(&sys, plan);
        sim.enable_trace();
        sim.run_until(Cycles::new(30_000));
        assert_matches_reference(&sim, &reference, &format!("jitter seed {seed}"));
    }
}

/// Two SoA runs must agree bit-for-bit: latency sequences, delivered
/// counts and full traces.
fn assert_sims_identical(a: &Simulator<'_>, b: &Simulator<'_>, label: &str) {
    for (idx, (sa, sb)) in a.stats().iter().zip(b.stats().iter()).enumerate() {
        let la: Vec<u64> = sa.latencies().map(|c| c.as_u64()).collect();
        let lb: Vec<u64> = sb.latencies().map(|c| c.as_u64()).collect();
        assert_eq!(la, lb, "{label}: latency sequence of flow {idx}");
        assert_eq!(sa.delivered(), sb.delivered(), "{label}: flow {idx}");
    }
    assert_eq!(a.trace(), b.trace(), "{label}: traces differ");
}

#[test]
fn uniform_buffer_map_is_bit_identical_to_scalar_depth() {
    // The degenerate BufferMap — uniform, or with overrides equal to the
    // default — must reproduce the scalar-depth simulation exactly: same
    // latencies, same delivered counts, same trace event sequence.
    let scalar = didactic::system(4);
    let uniform = scalar.clone().with_buffer_map(BufferMap::uniform(4));
    let mut redundant_map = BufferMap::uniform(4);
    for r in 0..scalar.topology().router_count() {
        redundant_map.set_router_depth(RouterId::new(r as u32), 4);
    }
    let redundant = scalar.clone().with_buffer_map(redundant_map);
    assert!(!uniform.has_heterogeneous_buffers());
    assert!(!redundant.has_heterogeneous_buffers());

    fn run(sys: &System) -> Simulator<'_> {
        let mut sim = Simulator::new(sys, ReleasePlan::synchronous(sys));
        sim.enable_trace();
        sim.run_until(Cycles::new(18_000));
        sim
    }
    let (a, b, c) = (run(&scalar), run(&uniform), run(&redundant));
    assert_sims_identical(&a, &b, "scalar vs uniform map");
    assert_sims_identical(&a, &c, "scalar vs redundant overrides");
}

#[test]
fn heterogeneous_depths_match_reference() {
    // Per-router depths through the SoA engine against the scan-based
    // reference (whose per-VC capacities come from the same
    // buffer_depth_of_link API but are enforced by a completely different
    // mechanism: VecDeque capacity vs flat credit counters).
    let base = didactic::system(2);
    let sys = base
        .with_router_buffer_depth(RouterId::new(1), 6)
        .with_router_buffer_depth(RouterId::new(3), 3);
    assert!(sys.has_heterogeneous_buffers());
    let plan = ReleasePlan::synchronous(&sys);
    let reference = run_reference(&sys, &plan, 18_000);
    let mut sim = Simulator::new(&sys, plan);
    sim.enable_trace();
    sim.run_until(Cycles::new(18_000));
    assert_matches_reference(&sim, &reference, "heterogeneous depths");
}

#[test]
fn bursty_release_matches_reference() {
    // A burst releases σ+1 packets at the same cycle: the release heap's
    // same-instant multi-release must reproduce the reference's
    // scan-based release order exactly, including source-queue backlog.
    let topology = Topology::mesh(3, 1);
    let flows = FlowSet::new(vec![
        Flow::builder(NodeId::new(0), NodeId::new(2))
            .priority(Priority::new(1))
            .period(Cycles::new(300))
            .burst(2)
            .length_flits(12)
            .build(),
        Flow::builder(NodeId::new(1), NodeId::new(2))
            .priority(Priority::new(2))
            .period(Cycles::new(500))
            .jitter(Cycles::new(90))
            .burst(1)
            .length_flits(20)
            .build(),
    ])
    .unwrap();
    let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
    for (label, pattern) in [
        ("none", JitterPattern::None),
        ("seeded", JitterPattern::Seeded(17)),
    ] {
        let mut plan = ReleasePlan::synchronous(&sys);
        for flow in sys.flows().ids() {
            plan = plan.with_jitter(flow, pattern);
        }
        let reference = run_reference(&sys, &plan, 20_000);
        let mut sim = Simulator::new(&sys, plan);
        sim.enable_trace();
        sim.run_until(Cycles::new(20_000));
        assert_matches_reference(&sim, &reference, &format!("bursty jitter={label}"));
    }
}

#[test]
fn run_until_delivered_matches_reference() {
    let sys = didactic::system(2);
    let f = didactic::DidacticFlows::ids();
    let plan = ReleasePlan::synchronous(&sys)
        .with_packet_limit(f.tau1, 8)
        .with_packet_limit(f.tau2, 2)
        .with_packet_limit(f.tau3, 2);

    // Goal reachable: both engines stop at the same cycle.
    let mut reference = RefSimulator::new(&sys, plan.clone());
    let ref_hit = reference.run_until_delivered(f.tau3, 2, Cycles::new(60_000));
    let mut sim = Simulator::new(&sys, plan.clone());
    sim.enable_trace();
    let hit = sim.run_until_delivered(f.tau3, 2, Cycles::new(60_000));
    assert!(hit && ref_hit);
    assert_eq!(sim.now().as_u64(), reference.now());
    assert_matches_reference(&sim, &reference, "run_until_delivered hit");
    assert!(sim.is_quiescent());

    // Goal unreachable: both run to the cap (the skipping engine must not
    // overshoot it) and agree on the partial statistics.
    let mut reference = RefSimulator::new(&sys, plan.clone());
    let ref_hit = reference.run_until_delivered(f.tau3, 50, Cycles::new(9_000));
    let mut sim = Simulator::new(&sys, plan);
    sim.enable_trace();
    let hit = sim.run_until_delivered(f.tau3, 50, Cycles::new(9_000));
    assert!(!hit && !ref_hit);
    assert_eq!(sim.now().as_u64(), reference.now());
    assert_matches_reference(&sim, &reference, "run_until_delivered capped");
}
