//! Property tests for the simulator: conservation laws, ordering, and —
//! most importantly — that observed latencies never exceed the safe
//! analytical bounds (IBN, XLWX) on randomly generated systems.

use noc_analysis::prelude::*;
use noc_model::prelude::*;
use noc_sim::prelude::*;
use noc_workload::synthetic::SyntheticSpec;
use proptest::prelude::*;

fn workload(seed: u64, n_flows: usize, buffer: u32) -> System {
    let mut spec = SyntheticSpec::paper(3, 3, n_flows, buffer);
    // Small packets and periods: dense contention, fast simulation.
    spec.period_range = (500, 5_000);
    spec.length_range = (4, 64);
    spec.generate(seed).into_system()
}

fn jittery_workload(seed: u64, n_flows: usize) -> System {
    let mut spec = SyntheticSpec::paper(3, 3, n_flows, 2);
    spec.period_range = (500, 5_000);
    spec.length_range = (4, 64);
    spec.jitter = Cycles::new(150);
    spec.generate(seed).into_system()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every released packet is eventually delivered (with packet limits,
    /// the network drains to quiescence) and per-flow delivery counts match
    /// the limits.
    #[test]
    fn conservation_of_packets(seed in 0u64..10_000, n in 2usize..10) {
        let sys = workload(seed, n, 4);
        let mut plan = ReleasePlan::synchronous(&sys);
        for id in sys.flows().ids() {
            plan = plan.with_packet_limit(id, 3);
        }
        let mut sim = Simulator::new(&sys, plan);
        sim.run_until(Cycles::new(200_000));
        prop_assert!(sim.is_quiescent(), "network failed to drain");
        for id in sys.flows().ids() {
            prop_assert_eq!(sim.flow_stats(id).delivered(), 3, "{}", id);
        }
    }

    /// No observed latency is below the zero-load latency C (Eq. 1 is the
    /// floor) and the best case of an eventually-idle network achieves it.
    #[test]
    fn zero_load_latency_is_the_floor(seed in 0u64..10_000, n in 2usize..10) {
        let sys = workload(seed, n, 4);
        let mut plan = ReleasePlan::synchronous(&sys);
        for id in sys.flows().ids() {
            plan = plan.with_packet_limit(id, 2);
        }
        let mut sim = Simulator::new(&sys, plan);
        sim.run_until(Cycles::new(200_000));
        for id in sys.flows().ids() {
            if let Some(best) = sim.flow_stats(id).best_latency() {
                prop_assert!(best >= sys.zero_load_latency(id), "{}", id);
            }
        }
    }

    /// Observed latencies never exceed the IBN bound (and therefore the
    /// XLWX bound) whenever the analysis deems the flow schedulable.
    #[test]
    fn observations_respect_safe_bounds(seed in 0u64..10_000, n in 2usize..10) {
        let sys = workload(seed, n, 2);
        let report = BufferAware.analyze(&sys).unwrap();
        let mut sim = Simulator::new(&sys, ReleasePlan::synchronous(&sys));
        sim.run_until(Cycles::new(100_000));
        for (id, verdict) in report.iter() {
            let (Some(bound), Some(observed)) =
                (verdict.response_time(), sim.flow_stats(id).worst_latency())
            else {
                continue;
            };
            prop_assert!(
                observed <= bound,
                "{id}: observed {observed} exceeds IBN bound {bound}"
            );
        }
    }

    /// Packets of each flow are delivered in release order, and the trace's
    /// per-flow launch sequence on any link preserves flit order.
    #[test]
    fn in_order_delivery(seed in 0u64..10_000, n in 2usize..8) {
        let sys = workload(seed, n, 4);
        let mut plan = ReleasePlan::synchronous(&sys);
        for id in sys.flows().ids() {
            plan = plan.with_packet_limit(id, 4);
        }
        let mut sim = Simulator::new(&sys, plan);
        sim.enable_trace();
        sim.run_until(Cycles::new(200_000));
        let mut next_delivery = vec![0u64; sys.flows().len()];
        for event in sim.trace() {
            if let TraceEvent::PacketDelivered { flow, packet, .. } = *event {
                prop_assert_eq!(packet, next_delivery[flow.index()]);
                next_delivery[flow.index()] += 1;
            }
        }
        // Per-(flow, link) launches are in (packet, flit index) order.
        let mut last_seen: std::collections::HashMap<(FlowId, LinkId), (u64, u32)> =
            std::collections::HashMap::new();
        for event in sim.trace() {
            if let TraceEvent::FlitLaunched { link, flit, .. } = *event {
                let key = (flit.flow(), link);
                let pos = (flit.packet(), flit.index());
                if let Some(&prev) = last_seen.get(&key) {
                    prop_assert!(pos > prev, "flit reordering on {link}");
                }
                last_seen.insert(key, pos);
            }
        }
    }

    /// Buffer occupancy never exceeds the configured depth.
    #[test]
    fn occupancy_bounded(seed in 0u64..10_000, buffer in 1u32..6) {
        let sys = workload(seed, 6, buffer);
        let mut sim = Simulator::new(&sys, ReleasePlan::synchronous(&sys));
        let prios: Vec<Priority> =
            sys.flows().iter().map(|(_, f)| f.priority()).collect();
        for _ in 0..3_000 {
            sim.step();
            for l in sys.topology().link_ids() {
                for &p in &prios {
                    prop_assert!(sim.vc_occupancy(l, p) <= buffer as usize);
                }
            }
        }
    }

    /// With release jitter exercised by every pattern, observed latencies
    /// still respect the IBN bound — the analyses' J term covers all
    /// admissible release alignments.
    #[test]
    fn jittered_observations_respect_bounds(
        seed in 0u64..10_000,
        n in 2usize..8,
        pattern_seed in 0u64..100,
    ) {
        let sys = jittery_workload(seed, n);
        let report = BufferAware.analyze(&sys).unwrap();
        for pattern in [
            JitterPattern::Alternating,
            JitterPattern::Seeded(pattern_seed),
            JitterPattern::Fixed(Cycles::new(150)),
        ] {
            let mut plan = ReleasePlan::synchronous(&sys);
            for id in sys.flows().ids() {
                plan = plan.with_jitter(id, pattern);
            }
            let mut sim = Simulator::new(&sys, plan);
            sim.run_until(Cycles::new(60_000));
            for (id, verdict) in report.iter() {
                let (Some(bound), Some(observed)) =
                    (verdict.response_time(), sim.flow_stats(id).worst_latency())
                else {
                    continue;
                };
                prop_assert!(
                    observed <= bound,
                    "{id} under {pattern:?}: observed {observed} > bound {bound}"
                );
            }
        }
    }

    /// Simulation is deterministic: identical runs produce identical stats.
    #[test]
    fn determinism(seed in 0u64..10_000, n in 2usize..8) {
        let sys = workload(seed, n, 2);
        let run = |sys: &System| {
            let mut sim = Simulator::new(sys, ReleasePlan::synchronous(sys));
            sim.run_until(Cycles::new(20_000));
            sys.flows()
                .ids()
                .map(|id| {
                    (
                        sim.flow_stats(id).delivered(),
                        sim.flow_stats(id).worst_latency(),
                    )
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(&sys), run(&sys));
    }
}
