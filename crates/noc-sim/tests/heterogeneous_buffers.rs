//! Heterogeneous per-router buffers: the generalisation of Equation 6 to
//! `bi(i,j) = linkl · Σ_{λ ∈ cd(i,j)} buf(target(λ))`, cross-validated
//! between the analysis and the simulator on the didactic example.

use noc_analysis::prelude::*;
use noc_model::prelude::*;
use noc_model::topology::Endpoint;
use noc_sim::prelude::*;
use noc_workload::didactic::{self, DidacticFlows};

/// The didactic system with explicit depths at the three routers ending
/// the links of cd(3,2).
fn heterogeneous_didactic(depths: [u32; 3]) -> System {
    let base = didactic::system(2);
    let f = DidacticFlows::ids();
    let cd_links: Vec<LinkId> = base
        .route(f.tau3)
        .links()
        .iter()
        .copied()
        .filter(|l| base.route(f.tau2).contains(*l))
        .collect();
    assert_eq!(cd_links.len(), 3);
    let mut sys = base;
    for (&link, &depth) in cd_links.iter().zip(depths.iter()) {
        let Endpoint::Router(router) = sys.topology().link(link).target() else {
            panic!("contention-domain links end at routers");
        };
        sys = sys.with_router_buffer_depth(router, depth);
    }
    sys
}

#[test]
fn generalized_bi_drives_the_ibn_bound() {
    // Homogeneous b=2 gives bi = 6 → R(τ3) = 348 (Table II).
    // With cd-router depths [4, 6, 10]: bi = 20 → R = 132 + 204 + 2·20 = 376.
    let sys = heterogeneous_didactic([4, 6, 10]);
    assert!(sys.has_heterogeneous_buffers());
    let report = BufferAware.analyze(&sys).unwrap();
    let f = DidacticFlows::ids();
    assert_eq!(report.response_time(f.tau3), Some(Cycles::new(376)));
    // τ1/τ2 are unaffected (their bounds have no buffer term).
    assert_eq!(report.response_time(f.tau1), Some(Cycles::new(62)));
    assert_eq!(report.response_time(f.tau2), Some(Cycles::new(328)));
}

#[test]
fn per_router_monotonicity() {
    // Deepening any single cd router can only increase the bound, until
    // the min() in Eq. 8 saturates at the XLWX charge.
    let f = DidacticFlows::ids();
    let mut previous = 0;
    for depth in [1u32, 2, 5, 10, 20, 40, 100] {
        let sys = heterogeneous_didactic([depth, 2, 2]);
        let r = BufferAware
            .analyze(&sys)
            .unwrap()
            .response_time(f.tau3)
            .unwrap()
            .as_u64();
        assert!(r >= previous, "depth {depth}: {r} < {previous}");
        previous = r;
        // Never beyond the XLWX bound.
        assert!(r <= 460);
    }
    assert_eq!(previous, 460, "saturates at the XLWX charge");
}

#[test]
fn simulation_respects_heterogeneous_bounds() {
    let f = DidacticFlows::ids();
    for depths in [[4u32, 6, 10], [10, 2, 2], [2, 10, 2]] {
        let sys = heterogeneous_didactic(depths);
        let bound = BufferAware
            .analyze(&sys)
            .unwrap()
            .response_time(f.tau3)
            .unwrap();
        let mut worst = Cycles::ZERO;
        for offset in (0..200u64).step_by(4) {
            let plan = ReleasePlan::synchronous(&sys).with_offset(f.tau1, Cycles::new(offset));
            let mut sim = Simulator::new(&sys, plan);
            sim.run_until(Cycles::new(18_000));
            worst = worst.max(sim.flow_stats(f.tau3).worst_latency().unwrap());
        }
        assert!(
            worst <= bound,
            "depths {depths:?}: observed {worst} > bound {bound}"
        );
        // Heterogeneous buffering still produces more MPB than uniform b=2.
        assert!(worst >= Cycles::new(330), "depths {depths:?}: {worst}");
    }
}

#[test]
fn simulator_honours_per_router_capacity() {
    let sys = heterogeneous_didactic([4, 6, 10]);
    let f = DidacticFlows::ids();
    let cd_links: Vec<LinkId> = sys
        .route(f.tau3)
        .links()
        .iter()
        .copied()
        .filter(|l| sys.route(f.tau2).contains(*l))
        .collect();
    let plan = ReleasePlan::synchronous(&sys).with_offset(f.tau1, Cycles::new(40));
    let mut sim = Simulator::new(&sys, plan);
    let tau2_prio = sys.flow(f.tau2).priority();
    let mut peaks = [0usize; 3];
    for _ in 0..2_000 {
        sim.step();
        for (slot, &l) in cd_links.iter().enumerate() {
            peaks[slot] = peaks[slot].max(sim.vc_occupancy(l, tau2_prio));
        }
    }
    // Each buffer fills to exactly its configured depth under blocking.
    assert_eq!(peaks, [4, 6, 10]);
}
