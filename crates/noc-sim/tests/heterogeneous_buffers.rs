//! Heterogeneous per-router buffers: the generalisation of Equation 6 to
//! `bi(i,j) = linkl · Σ_{λ ∈ cd(i,j)} buf(target(λ))`, cross-validated
//! between the analysis and the simulator on the didactic example — plus
//! credit-stall accounting per distinct depth and a global high-water
//! occupancy sweep asserting no VC ever holds more flits than its *local*
//! router's depth.

use noc_analysis::prelude::*;
use noc_model::prelude::*;
use noc_model::topology::Endpoint;
use noc_sim::prelude::*;
use noc_workload::didactic::{self, DidacticFlows};
use noc_workload::synthetic::SyntheticSpec;

/// The didactic system with explicit depths at the three routers ending
/// the links of cd(3,2).
fn heterogeneous_didactic(depths: [u32; 3]) -> System {
    let base = didactic::system(2);
    let f = DidacticFlows::ids();
    let cd_links: Vec<LinkId> = base
        .route(f.tau3)
        .links()
        .iter()
        .copied()
        .filter(|l| base.route(f.tau2).contains(*l))
        .collect();
    assert_eq!(cd_links.len(), 3);
    let mut sys = base;
    for (&link, &depth) in cd_links.iter().zip(depths.iter()) {
        let Endpoint::Router(router) = sys.topology().link(link).target() else {
            panic!("contention-domain links end at routers");
        };
        sys = sys.with_router_buffer_depth(router, depth);
    }
    sys
}

#[test]
fn generalized_bi_drives_the_ibn_bound() {
    // Homogeneous b=2 gives bi = 6 → R(τ3) = 348 (Table II).
    // With cd-router depths [4, 6, 10]: bi = 20 → R = 132 + 204 + 2·20 = 376.
    let sys = heterogeneous_didactic([4, 6, 10]);
    assert!(sys.has_heterogeneous_buffers());
    let report = BufferAware.analyze(&sys).unwrap();
    let f = DidacticFlows::ids();
    assert_eq!(report.response_time(f.tau3), Some(Cycles::new(376)));
    // τ1/τ2 are unaffected (their bounds have no buffer term).
    assert_eq!(report.response_time(f.tau1), Some(Cycles::new(62)));
    assert_eq!(report.response_time(f.tau2), Some(Cycles::new(328)));
}

#[test]
fn per_router_monotonicity() {
    // Deepening any single cd router can only increase the bound, until
    // the min() in Eq. 8 saturates at the XLWX charge.
    let f = DidacticFlows::ids();
    let mut previous = 0;
    for depth in [1u32, 2, 5, 10, 20, 40, 100] {
        let sys = heterogeneous_didactic([depth, 2, 2]);
        let r = BufferAware
            .analyze(&sys)
            .unwrap()
            .response_time(f.tau3)
            .unwrap()
            .as_u64();
        assert!(r >= previous, "depth {depth}: {r} < {previous}");
        previous = r;
        // Never beyond the XLWX bound.
        assert!(r <= 460);
    }
    assert_eq!(previous, 460, "saturates at the XLWX charge");
}

#[test]
fn simulation_respects_heterogeneous_bounds() {
    let f = DidacticFlows::ids();
    for depths in [[4u32, 6, 10], [10, 2, 2], [2, 10, 2]] {
        let sys = heterogeneous_didactic(depths);
        let bound = BufferAware
            .analyze(&sys)
            .unwrap()
            .response_time(f.tau3)
            .unwrap();
        let mut worst = Cycles::ZERO;
        for offset in (0..200u64).step_by(4) {
            let plan = ReleasePlan::synchronous(&sys).with_offset(f.tau1, Cycles::new(offset));
            let mut sim = Simulator::new(&sys, plan);
            sim.run_until(Cycles::new(18_000));
            worst = worst.max(sim.flow_stats(f.tau3).worst_latency().unwrap());
        }
        assert!(
            worst <= bound,
            "depths {depths:?}: observed {worst} > bound {bound}"
        );
        // Heterogeneous buffering still produces more MPB than uniform b=2.
        assert!(worst >= Cycles::new(330), "depths {depths:?}: {worst}");
    }
}

#[test]
fn simulator_honours_per_router_capacity() {
    let sys = heterogeneous_didactic([4, 6, 10]);
    let f = DidacticFlows::ids();
    let cd_links: Vec<LinkId> = sys
        .route(f.tau3)
        .links()
        .iter()
        .copied()
        .filter(|l| sys.route(f.tau2).contains(*l))
        .collect();
    let plan = ReleasePlan::synchronous(&sys).with_offset(f.tau1, Cycles::new(40));
    let mut sim = Simulator::new(&sys, plan);
    let tau2_prio = sys.flow(f.tau2).priority();
    let mut peaks = [0usize; 3];
    for _ in 0..2_000 {
        sim.step();
        for (slot, &l) in cd_links.iter().enumerate() {
            peaks[slot] = peaks[slot].max(sim.vc_occupancy(l, tau2_prio));
        }
    }
    // Each buffer fills to exactly its configured depth under blocking.
    assert_eq!(peaks, [4, 6, 10]);
}

/// Credit-stall accounting per distinct depth: a VC's upstream is
/// credit-starved exactly while the VC sits at its full local capacity, so
/// counting full-buffer cycles at a *fixed* cd router while sweeping only
/// its depth measures the backpressure each depth produces. The buffer must
/// saturate at every depth, and deepening it must not add full-buffer
/// cycles (the extra slack absorbs the same blocked flits with headroom).
#[test]
fn full_buffer_cycles_decrease_with_local_depth() {
    let f = DidacticFlows::ids();
    let mut previous: Option<(u32, u64)> = None;
    for depth in [2u32, 4, 8] {
        let sys = heterogeneous_didactic([depth, 2, 2]);
        let cd_link = *sys
            .route(f.tau3)
            .links()
            .iter()
            .find(|l| sys.route(f.tau2).contains(**l))
            .expect("cd(3,2) is non-empty");
        let tau2_prio = sys.flow(f.tau2).priority();
        let plan = ReleasePlan::synchronous(&sys).with_offset(f.tau1, Cycles::new(40));
        let mut sim = Simulator::new(&sys, plan);
        let mut full_cycles = 0u64;
        for _ in 0..6_000 {
            sim.step();
            if sim.vc_occupancy(cd_link, tau2_prio) == depth as usize {
                full_cycles += 1;
            }
        }
        assert!(full_cycles > 0, "depth {depth}: cd buffer never saturated");
        if let Some((prev_depth, prev_cycles)) = previous {
            assert!(
                full_cycles <= prev_cycles,
                "deepening {prev_depth}→{depth} increased full-buffer cycles \
                 ({prev_cycles} → {full_cycles})"
            );
        }
        previous = Some((depth, full_cycles));
    }
}

/// Global capacity sweep on a randomized heterogeneous + bursty scenario:
/// across every link and priority level, the observed VC occupancy never
/// exceeds the depth of the buffer at that link's *target* router, and the
/// sweep is non-vacuous (some VC reaches its exact local capacity).
#[test]
fn high_water_occupancy_never_exceeds_local_depth() {
    let mut spec = SyntheticSpec::paper(3, 3, 8, 2)
        .with_buffer_depth_range(2, 6)
        .with_burst_range(0, 2);
    spec.period_range = (400, 4_000);
    spec.length_range = (8, 64);
    let sys = spec.generate(97).into_system();
    assert!(sys.has_heterogeneous_buffers());

    let priorities: Vec<Priority> = sys.flows().iter().map(|(_, f)| f.priority()).collect();
    let router_links: Vec<(LinkId, u32)> = sys
        .topology()
        .link_ids()
        .filter_map(|l| Some((l, sys.buffer_depth_of_link(l)?)))
        .collect();
    let mut sim = Simulator::new(&sys, ReleasePlan::synchronous(&sys));
    let mut hwm = vec![0usize; router_links.len()];
    for _ in 0..12_000 {
        sim.step();
        for (slot, &(l, depth)) in router_links.iter().enumerate() {
            for &p in &priorities {
                let occ = sim.vc_occupancy(l, p);
                assert!(
                    occ <= depth as usize,
                    "{l:?} prio {p}: occupancy {occ} exceeds local depth {depth}"
                );
                hwm[slot] = hwm[slot].max(occ);
            }
        }
    }
    assert!(
        router_links
            .iter()
            .zip(&hwm)
            .any(|(&(_, depth), &peak)| peak == depth as usize),
        "no VC ever reached its local capacity — vacuous sweep (hwm {hwm:?})"
    );
}
