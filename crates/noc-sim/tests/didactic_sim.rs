//! Reproduction of Table II's simulation columns (§V of the paper).
//!
//! The paper reports worst observed latencies (cycle-accurate simulation,
//! offset search over τ1's phase):
//!
//! | flow | R^sim (b=10) | R^sim (b=2) |
//! |------|--------------|-------------|
//! | τ1   | 62           | 62          |
//! | τ2   | 324          | 324         |
//! | τ3   | 352          | 336         |
//!
//! Our router model reproduces τ1 and τ2 exactly and τ3 within two cycles
//! (334 / 350 — a micro-architectural difference in pipeline restart
//! timing), with the *buffered-interference delta identical to the paper*:
//! growing buffers from 2 to 10 flits adds exactly 16 cycles of MPB to τ3
//! in both. The qualitative claims all hold:
//!
//! * τ3's observed latency with 10-flit buffers **exceeds the SB bound
//!   (336)** — SB is unsafe under MPB;
//! * every observation respects the XLWX and IBN bounds;
//! * larger buffers make the worst observed latency worse.

use noc_analysis::prelude::*;
use noc_model::prelude::*;
use noc_sim::prelude::*;
use noc_workload::didactic::{self, DidacticFlows};

/// Worst observed latencies [τ1, τ2, τ3] over a sweep of τ1's offset.
fn sweep(buffer: u32) -> [u64; 3] {
    let f = DidacticFlows::ids();
    let sys = didactic::system(buffer);
    let mut worst = [0u64; 3];
    // τ1's period is 200; sweeping its phase over one full period relative
    // to the synchronous release of τ2 and τ3 covers all alignments.
    for offset in 0..200u64 {
        let plan = ReleasePlan::synchronous(&sys).with_offset(f.tau1, Cycles::new(offset));
        let mut sim = Simulator::new(&sys, plan);
        // Three τ3 periods capture several packets of every flow.
        sim.run_until(Cycles::new(18_000));
        for (slot, id) in [f.tau1, f.tau2, f.tau3].iter().enumerate() {
            let observed = sim
                .flow_stats(*id)
                .worst_latency()
                .expect("every flow delivers packets");
            worst[slot] = worst[slot].max(observed.as_u64());
        }
    }
    worst
}

#[test]
fn observed_latencies_regression_b2() {
    // Paper: [62, 324, 336]; ours: τ3 = 334 (2-cycle router timing delta).
    assert_eq!(sweep(2), [62, 324, 334]);
}

#[test]
fn observed_latencies_regression_b10() {
    // Paper: [62, 324, 352]; ours: τ3 = 350 (same 2-cycle delta).
    assert_eq!(sweep(10), [62, 324, 350]);
}

#[test]
fn buffered_interference_delta_matches_paper() {
    // Table II: R^sim(τ3, b=10) − R^sim(τ3, b=2) = 352 − 336 = 16 cycles of
    // extra multi-point progressive blocking. Ours is identical.
    let b2 = sweep(2);
    let b10 = sweep(10);
    assert_eq!(b10[2] - b2[2], 16);
    // τ1 and τ2 are unaffected by the victim-side buffering.
    assert_eq!(b2[0], b10[0]);
    assert_eq!(b2[1], b10[1]);
}

#[test]
fn sb_bound_is_violated_with_large_buffers() {
    // The paper's headline observation: with 10-flit buffers the *observed*
    // latency of τ3 (352 there, 350 here) exceeds SB's "upper bound" of
    // 336 — SB is unsafe under MPB.
    let f = DidacticFlows::ids();
    let sys = didactic::system(10);
    let sb = ShiBurns.analyze(&sys).unwrap();
    let r_sb = sb.response_time(f.tau3).unwrap().as_u64();
    assert_eq!(r_sb, 336);
    let observed = sweep(10)[2];
    assert!(
        observed > r_sb,
        "observed {observed} should exceed the optimistic SB bound {r_sb}"
    );
}

#[test]
fn safe_bounds_hold_for_all_observations() {
    let f = DidacticFlows::ids();
    for buffer in [2u32, 10] {
        let sys = didactic::system(buffer);
        let xlwx = Xlwx.analyze(&sys).unwrap();
        let ibn = BufferAware.analyze(&sys).unwrap();
        let worst = sweep(buffer);
        for (slot, id) in [f.tau1, f.tau2, f.tau3].iter().enumerate() {
            let r_xlwx = xlwx.response_time(*id).unwrap().as_u64();
            let r_ibn = ibn.response_time(*id).unwrap().as_u64();
            assert!(
                worst[slot] <= r_ibn,
                "b={buffer} {id}: observed {} > IBN bound {r_ibn}",
                worst[slot]
            );
            assert!(r_ibn <= r_xlwx);
        }
    }
}

#[test]
fn mpb_buffer_buildup_is_observable() {
    // While τ1 blocks τ2 downstream, τ2's flits pile up in the buffers of
    // the contention domain cd(3,2) — the "stacked dots" of Figure 2.
    let f = DidacticFlows::ids();
    let sys = didactic::system(10);
    // Release τ1 mid-way through τ2's transmission.
    let plan = ReleasePlan::synchronous(&sys).with_offset(f.tau1, Cycles::new(40));
    let mut sim = Simulator::new(&sys, plan);
    let cd_links: Vec<LinkId> = sys
        .route(f.tau2)
        .links()
        .iter()
        .copied()
        .filter(|l| sys.route(f.tau3).contains(*l))
        .collect();
    assert_eq!(cd_links.len(), 3, "cd(3,2) has three links");
    let tau2_prio = sys.flow(f.tau2).priority();
    let mut max_buffered = 0;
    for _ in 0..2_000 {
        sim.step();
        let buffered: usize = cd_links
            .iter()
            .map(|&l| sim.vc_occupancy(l, tau2_prio))
            .sum();
        max_buffered = max_buffered.max(buffered);
    }
    // All three contention-domain buffers fill completely under blocking.
    assert_eq!(max_buffered, 30, "3 links × 10-flit buffers saturate");
}
