//! The Figure 2 scenario (§IV): the mechanism-explaining example, fully
//! cross-validated — analysis bounds by hand-computable fixed points,
//! simulation by exhaustive offset sweep of the downstream hitter τk.
//!
//! Hand computation (routl=0, linkl=1; C_k=10, C_j=64, C_i=43):
//!
//! * `R_k = 10` (highest priority).
//! * `R_j = 64 + ⌈R_j/40⌉·10 = 94` (three τk hits).
//! * SB: `J^I_j = 94 − 64 = 30`, `R_i = 43 + ⌈(R_i+30)/2000⌉·64 = 107`.
//! * XLWX: `Idown(j,i) = ⌈94/40⌉·(10+0) = 30` → `R_i = 43 + 94 = 137`.
//! * IBN(b=2): `bi(i,j) = 2·1·3 = 6` → `Idown = 3·min(6,10) = 18`,
//!   `R_i = 43 + 82 = 125`; saturates to XLWX at `bi ≥ 10` i.e. `b ≥ 4`.

use noc_analysis::prelude::*;
use noc_model::prelude::*;
use noc_sim::prelude::*;
use noc_workload::didactic::{self, Figure2Flows};

fn bounds(analysis: &dyn Analysis, buffer: u32) -> [u64; 3] {
    let f = Figure2Flows::ids();
    let report = analysis.analyze(&didactic::figure2_system(buffer)).unwrap();
    [f.tau_k, f.tau_j, f.tau_i].map(|id| report.response_time(id).expect("schedulable").as_u64())
}

/// Worst observed latencies [τk, τj, τi] sweeping τk's phase over its
/// period.
fn sweep(buffer: u32) -> [u64; 3] {
    let f = Figure2Flows::ids();
    let sys = didactic::figure2_system(buffer);
    let mut worst = [0u64; 3];
    for offset in 0..40u64 {
        let plan = ReleasePlan::synchronous(&sys).with_offset(f.tau_k, Cycles::new(offset));
        let mut sim = Simulator::new(&sys, plan);
        sim.run_until(Cycles::new(30_000));
        for (slot, id) in [f.tau_k, f.tau_j, f.tau_i].iter().enumerate() {
            let w = sim.flow_stats(*id).worst_latency().unwrap();
            worst[slot] = worst[slot].max(w.as_u64());
        }
    }
    worst
}

#[test]
fn analytical_bounds_match_hand_computation() {
    assert_eq!(bounds(&ShiBurns, 2), [10, 94, 107]);
    assert_eq!(bounds(&Xlwx, 2), [10, 94, 137]);
    assert_eq!(bounds(&BufferAware, 2), [10, 94, 125]);
    // IBN saturates to XLWX once bi(i,j) = 3·b ≥ C_k = 10, i.e. b ≥ 4.
    assert_eq!(bounds(&BufferAware, 3), [10, 94, 134]);
    assert_eq!(bounds(&BufferAware, 4), [10, 94, 137]);
    assert_eq!(bounds(&BufferAware, 100), [10, 94, 137]);
}

#[test]
fn simulation_exposes_sb_optimism_here_too() {
    // With b=2 the buffered interference is too small to break SB's bound
    // (observed exactly 107); with b ≥ 4 the observation (111) exceeds it.
    assert_eq!(sweep(2), [10, 80, 107]);
    assert_eq!(sweep(4), [10, 80, 111]);
    let sb_tau_i = bounds(&ShiBurns, 4)[2];
    assert!(
        sweep(4)[2] > sb_tau_i,
        "MPB breaks SB in the Figure 2 scenario"
    );
}

#[test]
fn safe_bounds_hold_in_figure2() {
    for buffer in [2u32, 4, 10] {
        let observed = sweep(buffer);
        let ibn = bounds(&BufferAware, buffer);
        let xlwx = bounds(&Xlwx, buffer);
        for slot in 0..3 {
            assert!(observed[slot] <= ibn[slot], "b={buffer} slot {slot}");
            assert!(ibn[slot] <= xlwx[slot]);
        }
    }
}
