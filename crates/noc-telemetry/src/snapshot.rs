//! The global metric registry and point-in-time snapshots.

use std::fmt::Write as _;
use std::sync::Mutex;

use crate::counter::{Counter, MaxGauge};
use crate::events::push_json_str;
use crate::histogram::Histogram;

/// A registered metric. Metrics self-register on first recorded touch, so
/// the registry holds exactly the metrics that have seen traffic.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Metric {
    Counter(&'static Counter),
    Gauge(&'static MaxGauge),
    Histogram(&'static Histogram),
}

static REGISTRY: Mutex<Vec<Metric>> = Mutex::new(Vec::new());

pub(crate) fn register(metric: Metric) {
    REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(metric);
}

/// One counter in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Value at snapshot time.
    pub value: u64,
}

/// One high-water-mark gauge in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Highest recorded value at snapshot time.
    pub value: u64,
}

/// One histogram in a [`Snapshot`], pre-digested into the quantiles the
/// serving layer reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Observations recorded.
    pub count: u64,
    /// Upper-bound estimate of the median, in nanoseconds.
    pub p50_ns: u64,
    /// Upper-bound estimate of the 95th percentile, in nanoseconds.
    pub p95_ns: u64,
    /// Exact maximum observation, in nanoseconds.
    pub max_ns: u64,
    /// `(inclusive upper bound, count)` of every non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

/// A point-in-time copy of every touched metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All touched counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All touched gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All touched histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// `true` when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The value of the counter (or gauge) named `name`, if touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .or_else(|| self.gauges.iter().find(|g| g.name == name).map(|g| g.value))
    }

    /// The histogram named `name`, if touched.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the snapshot as a compact single-line JSON object: counters
    /// and gauges as `"name": value`, histograms as
    /// `"name": {"count": …, "p50_ns": …, "p95_ns": …, "max_ns": …}`.
    ///
    /// This is the `metrics` block embedded in `query_server`'s one-line
    /// record; use [`Snapshot::to_json_pretty`] for the full dump with
    /// buckets.
    pub fn to_inline_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for c in &self.counters {
            sep(&mut out, &mut first);
            push_json_str(&mut out, c.name);
            let _ = write!(out, ": {}", c.value);
        }
        for g in &self.gauges {
            sep(&mut out, &mut first);
            push_json_str(&mut out, g.name);
            let _ = write!(out, ": {}", g.value);
        }
        for h in &self.histograms {
            sep(&mut out, &mut first);
            push_json_str(&mut out, h.name);
            let _ = write!(
                out,
                ": {{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"max_ns\": {}}}",
                h.count, h.p50_ns, h.p95_ns, h.max_ns
            );
        }
        out.push('}');
        out
    }

    /// Renders the snapshot as an indented JSON object (counters, gauges,
    /// and histograms with their full bucket arrays), `indent` spaces deep.
    pub fn to_json_pretty(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let mut out = String::from("{\n");
        let mut sections = Vec::new();
        let mut counters = String::new();
        let _ = write!(counters, "{inner}\"counters\": {{");
        let mut first = true;
        for c in self
            .counters
            .iter()
            .map(|c| (c.name, c.value))
            .chain(self.gauges.iter().map(|g| (g.name, g.value)))
        {
            sep(&mut counters, &mut first);
            push_json_str(&mut counters, c.0);
            let _ = write!(counters, ": {}", c.1);
        }
        counters.push('}');
        sections.push(counters);
        let mut hists = String::new();
        let _ = write!(hists, "{inner}\"histograms\": {{");
        let mut first = true;
        for h in &self.histograms {
            sep(&mut hists, &mut first);
            push_json_str(&mut hists, h.name);
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(upper, n)| format!("[{upper}, {n}]"))
                .collect();
            let _ = write!(
                hists,
                ": {{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"max_ns\": {}, \
                 \"buckets\": [{}]}}",
                h.count,
                h.p50_ns,
                h.p95_ns,
                h.max_ns,
                buckets.join(", ")
            );
        }
        hists.push('}');
        sections.push(hists);
        out.push_str(&sections.join(",\n"));
        let _ = write!(out, "\n{pad}}}");
        out
    }
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(", ");
    }
}

/// Snapshots every metric touched so far, sorted by name within each
/// section. Untouched metrics (and all metrics, while telemetry is
/// disabled) are absent.
pub fn snapshot() -> Snapshot {
    let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut snap = Snapshot::default();
    for metric in registry.iter() {
        match metric {
            Metric::Counter(c) => snap.counters.push(CounterSnapshot {
                name: c.name(),
                value: c.get(),
            }),
            Metric::Gauge(g) => snap.gauges.push(GaugeSnapshot {
                name: g.name(),
                value: g.get(),
            }),
            Metric::Histogram(h) => snap.histograms.push(HistogramSnapshot {
                name: h.name(),
                count: h.count(),
                p50_ns: h.quantile(0.5).unwrap_or(0),
                p95_ns: h.quantile(0.95).unwrap_or(0),
                max_ns: h.max_ns(),
                buckets: h.nonzero_buckets(),
            }),
        }
    }
    snap.counters.sort_by_key(|c| c.name);
    snap.gauges.sort_by_key(|g| g.name);
    snap.histograms.sort_by_key(|h| h.name);
    snap
}

/// Zeroes every registered metric and clears the event sink. Registration
/// survives (names keep appearing in snapshots with zero values); intended
/// for tests and for binaries isolating per-phase measurements.
pub fn reset_all() {
    let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    for metric in registry.iter() {
        match metric {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
    drop(registry);
    let _ = crate::events::drain();
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    static SNAP_A: Counter = Counter::new("test.snap.a");
    static SNAP_HIST: Histogram = Histogram::new("test.snap.hist_ns");
    static SNAP_GAUGE: MaxGauge = MaxGauge::new("test.snap.hwm");

    #[test]
    fn snapshot_reports_touched_metrics_and_renders_json() {
        let _gate = crate::test_gate();
        crate::set_enabled(true);
        SNAP_A.reset();
        SNAP_HIST.reset();
        SNAP_GAUGE.reset();
        SNAP_A.add(5);
        SNAP_GAUGE.record(17);
        SNAP_HIST.record_ns(1000);
        let snap = snapshot();
        assert_eq!(snap.counter("test.snap.a"), Some(5));
        assert_eq!(snap.counter("test.snap.hwm"), Some(17));
        let h = snap.histogram("test.snap.hist_ns").expect("touched");
        assert_eq!(h.count, 1);
        assert_eq!(h.max_ns, 1000);
        let inline = snap.to_inline_json();
        assert!(inline.contains("\"test.snap.a\": 5"));
        assert!(inline.contains("\"count\": 1"));
        let pretty = snap.to_json_pretty(2);
        assert!(pretty.contains("\"counters\""));
        assert!(pretty.contains("\"buckets\": [[1023, 1]]"));
        crate::set_enabled(false);
        SNAP_A.reset();
        SNAP_HIST.reset();
        SNAP_GAUGE.reset();
    }
}
