//! Fixed-bucket latency histograms and span timers.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use crate::snapshot::{register, Metric};

/// Number of power-of-two buckets: bucket `i` holds values in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also takes 0), so 40 buckets
/// cover up to ~18 minutes — far beyond any single query or solve.
pub(crate) const BUCKETS: usize = 40;

/// A fixed-bucket histogram of nanosecond observations.
///
/// Buckets are powers of two, so recording is a leading-zeros computation
/// and one relaxed `fetch_add` — no allocation, no locks, safe to share
/// across worker threads as a `static`. Quantiles ([`Histogram::quantile`])
/// are upper-bound estimates: the bucket boundary at or above the true
/// value, i.e. never more than 2× the exact quantile.
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    registered: AtomicBool,
}

impl Histogram {
    /// A new histogram named `name` (conventionally suffixed `_ns`).
    pub const fn new(name: &'static str) -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [ZERO; BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    /// Records one observation of `ns` nanoseconds; a no-op unless
    /// [`crate::enabled`].
    #[inline]
    pub fn record_ns(&'static self, ns: u64) {
        if !crate::enabled() {
            return;
        }
        #[cfg(feature = "enabled")]
        {
            if !self.registered.load(Ordering::Relaxed)
                && self
                    .registered
                    .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                register(Metric::Histogram(self));
            }
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(ns, Ordering::Relaxed);
            self.max.fetch_max(ns, Ordering::Relaxed);
            self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = ns;
    }

    /// Starts a span whose elapsed wall-clock time is recorded into this
    /// histogram when the returned guard drops. When telemetry is
    /// disabled the guard holds no clock and the drop is a no-op.
    #[inline]
    pub fn span(&'static self) -> Span {
        Span {
            hist: self,
            start: crate::enabled().then(Instant::now),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Largest recorded observation (0 if empty).
    pub fn max_ns(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean observation, `None` if empty.
    pub fn mean_ns(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum.load(Ordering::Relaxed) as f64 / n as f64)
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`), `None` if
    /// empty: the inclusive upper edge of the bucket holding the
    /// nearest-rank sample, clamped to the observed maximum.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in 0..=1");
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(bucket_upper(i).min(self.max_ns()));
            }
        }
        Some(self.max_ns())
    }

    /// `(inclusive upper bound, count)` of every non-empty bucket, in
    /// ascending order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_upper(i), n))
            })
            .collect()
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("name", &self.name)
            .field("count", &self.count())
            .field("max_ns", &self.max_ns())
            .finish()
    }
}

/// Bucket index of an observation: `floor(log2(ns))`, clamped.
#[cfg(feature = "enabled")]
#[inline]
fn bucket_of(ns: u64) -> usize {
    (63 - (ns | 1).leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A RAII timer from [`Histogram::span`]: records the elapsed nanoseconds
/// into its histogram on drop. Holds no clock when telemetry is disabled.
#[derive(Debug)]
pub struct Span {
    hist: &'static Histogram,
    start: Option<Instant>,
}

impl Span {
    /// `true` when this span is actually timing (telemetry was enabled at
    /// start).
    pub fn is_active(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.record_ns(ns);
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    static HIST: Histogram = Histogram::new("test.hist");
    static SPANNED: Histogram = Histogram::new("test.hist.spanned");

    #[test]
    fn buckets_quantiles_and_spans() {
        let _gate = crate::test_gate();
        crate::set_enabled(true);
        HIST.reset();
        for ns in [100, 200, 400, 800, 100_000] {
            HIST.record_ns(ns);
        }
        assert_eq!(HIST.count(), 5);
        assert_eq!(HIST.max_ns(), 100_000);
        // The nearest-rank p50 sample is 400, in bucket [256, 512).
        assert_eq!(HIST.quantile(0.5), Some(511));
        // The top quantile is clamped to the exact max.
        assert_eq!(HIST.quantile(1.0), Some(100_000));
        assert_eq!(HIST.mean_ns(), Some(20_300.0));
        assert_eq!(HIST.nonzero_buckets().len(), 5);

        {
            let span = SPANNED.span();
            assert!(span.is_active());
        }
        assert_eq!(SPANNED.count(), 1);

        crate::set_enabled(false);
        HIST.record_ns(1);
        assert_eq!(HIST.count(), 5, "disabled recording must not count");
        let span = SPANNED.span();
        assert!(!span.is_active());
        drop(span);
        assert_eq!(SPANNED.count(), 1);
        HIST.reset();
        SPANNED.reset();
    }

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(9), 1023);
    }
}
