//! Atomic counters and high-water-mark gauges.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::snapshot::{register, Metric};

/// A monotonically increasing `u64` metric.
///
/// Declare as a `static` and bump it from anywhere; the counter registers
/// itself in the global registry on its first recorded increment, so
/// [`crate::snapshot`] only reports metrics that were actually touched.
/// All operations are relaxed atomics — counters are statistics, not
/// synchronisation.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    registered: AtomicBool,
}

impl Counter {
    /// A new counter named `name` (conventionally dotted lower-case,
    /// e.g. `"analysis.solver.iterations"`).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Adds `n`; a no-op unless [`crate::enabled`].
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        #[cfg(feature = "enabled")]
        {
            self.ensure_registered();
            self.value.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Adds one; a no-op unless [`crate::enabled`].
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// The current value (0 if never recorded).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }

    #[cfg(feature = "enabled")]
    #[inline]
    fn ensure_registered(&'static self) {
        if !self.registered.load(Ordering::Relaxed)
            && self
                .registered
                .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            register(Metric::Counter(self));
        }
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Counter")
            .field("name", &self.name)
            .field("value", &self.get())
            .finish()
    }
}

/// An atomic high-water mark: [`MaxGauge::record`] keeps the maximum of
/// every observation (e.g. peak buffer occupancy).
pub struct MaxGauge {
    name: &'static str,
    value: AtomicU64,
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    registered: AtomicBool,
}

impl MaxGauge {
    /// A new gauge named `name`, starting at 0.
    pub const fn new(name: &'static str) -> MaxGauge {
        MaxGauge {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Raises the high-water mark to `v` if larger; a no-op unless
    /// [`crate::enabled`].
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !crate::enabled() {
            return;
        }
        #[cfg(feature = "enabled")]
        {
            if !self.registered.load(Ordering::Relaxed)
                && self
                    .registered
                    .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                register(Metric::Gauge(self));
            }
            self.value.fetch_max(v, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// The highest recorded value (0 if never recorded).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl fmt::Debug for MaxGauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MaxGauge")
            .field("name", &self.name)
            .field("value", &self.get())
            .finish()
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    static DISABLED: Counter = Counter::new("test.counter.disabled");
    static GAUGE_OFF: MaxGauge = MaxGauge::new("test.gauge.disabled");

    #[test]
    fn disabled_recording_leaves_zero() {
        let _gate = crate::test_gate();
        crate::set_enabled(false);
        DISABLED.add(7);
        DISABLED.incr();
        GAUGE_OFF.record(9);
        assert_eq!(DISABLED.get(), 0);
        assert_eq!(GAUGE_OFF.get(), 0);
    }
}
