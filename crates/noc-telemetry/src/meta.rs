//! Run metadata shared by every JSON-emitting binary in the workspace.

/// The commit a measurement run describes: `GITHUB_SHA` in CI, `git
/// rev-parse HEAD` in a local checkout, `"unknown"` elsewhere.
///
/// Shared by `bench_json` (for `BENCH_history.jsonl`) and `query_server`
/// (for the throughput record and `SERVE_metrics.json`) so their records
/// join on the same key.
pub fn git_commit() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn git_commit_is_nonempty() {
        assert!(!super::git_commit().is_empty());
    }
}
