//! A bounded, drainable sink of structured JSON trace events.
//!
//! Engines [`emit`] coarse-grained events (one per solve, batch or run —
//! never per cycle) as `(key, value)` field lists; each event is rendered
//! to a single-line JSON object at emission time and buffered globally.
//! Consumers [`drain`] the buffer and attach the lines to their own output
//! (e.g. the `events` array of `SERVE_metrics.json`).
//!
//! The sink is capped at [`MAX_EVENTS`] buffered events; beyond that,
//! emissions are counted in the `telemetry.events.dropped` counter and
//! discarded, so a forgotten drain can never exhaust memory.

use std::fmt::Write as _;
use std::sync::Mutex;

use crate::counter::Counter;

/// Maximum buffered events before new emissions are dropped (and counted).
pub const MAX_EVENTS: usize = 65_536;

/// Emissions discarded because the sink was full.
pub static DROPPED: Counter = Counter::new("telemetry.events.dropped");

static SINK: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// One field value of a structured event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer field.
    U64(u64),
    /// A float field (rendered with up to 3 decimal places).
    F64(f64),
    /// A string field (JSON-escaped on render).
    Str(String),
    /// A boolean field.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// Emits one structured event into the global sink; a no-op unless
/// [`crate::enabled`].
///
/// The rendered line is `{"event": <name>, <fields...>}`. Field order is
/// preserved. Events are for *coarse* milestones (a batch served, a solve
/// finished, a cap tripped) — per-cycle or per-flit emission belongs in
/// counters instead.
pub fn emit(name: &'static str, fields: &[(&'static str, Value)]) {
    if !crate::enabled() {
        return;
    }
    let mut line = String::with_capacity(32 + fields.len() * 16);
    line.push_str("{\"event\": ");
    push_json_str(&mut line, name);
    for (key, value) in fields {
        line.push_str(", ");
        push_json_str(&mut line, key);
        line.push_str(": ");
        match value {
            Value::U64(v) => {
                let _ = write!(line, "{v}");
            }
            Value::F64(v) => {
                let _ = write!(line, "{v:.3}");
            }
            Value::Str(s) => push_json_str(&mut line, s),
            Value::Bool(b) => {
                let _ = write!(line, "{b}");
            }
        }
    }
    line.push('}');
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if sink.len() >= MAX_EVENTS {
        drop(sink);
        DROPPED.incr();
        return;
    }
    sink.push(line);
}

/// Removes and returns every buffered event line, oldest first.
pub fn drain() -> Vec<String> {
    std::mem::take(&mut *SINK.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Number of currently buffered events.
pub fn len() -> usize {
    SINK.lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Number of emissions discarded because the sink was full — the value of
/// the `telemetry.events.dropped` counter, which (like every touched
/// counter) also appears in [`crate::snapshot`]. A nonzero value means the
/// consumer is not draining often enough for the event volume.
pub fn dropped() -> u64 {
    DROPPED.get()
}

/// Minimal JSON string escaping.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn emit_renders_json_and_drains_in_order() {
        let _gate = crate::test_gate();
        crate::set_enabled(true);
        let _ = drain();
        emit(
            "test.event",
            &[
                ("n", Value::from(3u64)),
                ("label", Value::from("a \"quoted\" name")),
                ("ok", Value::from(true)),
            ],
        );
        emit("test.second", &[]);
        assert_eq!(len(), 2);
        let lines = drain();
        assert_eq!(
            lines[0],
            "{\"event\": \"test.event\", \"n\": 3, \
             \"label\": \"a \\\"quoted\\\" name\", \"ok\": true}"
        );
        assert_eq!(lines[1], "{\"event\": \"test.second\"}");
        assert!(drain().is_empty());
        crate::set_enabled(false);
        emit("test.ignored", &[]);
        assert_eq!(len(), 0, "disabled emission must not buffer");
    }

    #[test]
    fn overflow_is_dropped_counted_and_snapshot_visible() {
        let _gate = crate::test_gate();
        crate::set_enabled(true);
        let _ = drain();
        let dropped_before = dropped();
        for _ in 0..MAX_EVENTS {
            emit("test.fill", &[]);
        }
        assert_eq!(len(), MAX_EVENTS, "sink fills to its cap");
        emit("test.overflow", &[("n", Value::from(1u64))]);
        emit("test.overflow", &[("n", Value::from(2u64))]);
        assert_eq!(len(), MAX_EVENTS, "overflow does not buffer");
        assert_eq!(dropped() - dropped_before, 2, "each overflow is counted");
        // The drop counter is an ordinary self-registering metric, so a
        // snapshot taken after an overflow surfaces it by name.
        let snap = crate::snapshot();
        assert!(
            snap.to_inline_json()
                .contains("\"telemetry.events.dropped\""),
            "snapshot must surface the dropped-events counter"
        );
        let _ = drain();
        assert_eq!(len(), 0);
        crate::set_enabled(false);
    }
}
