//! Lightweight, dependency-free instrumentation for the `noc-mpb`
//! workspace.
//!
//! The solver (`noc-analysis`), the simulator (`noc-sim`) and the serving
//! layer (`noc-serve`) are performance-critical engines; this crate gives
//! them a shared measurement substrate so perf work can cite internal
//! counters (solver iterations, dirty-bit hit rates, skipped idle cycles,
//! credit-stall bubbles, per-query latency percentiles) instead of
//! wall-clock numbers alone.
//!
//! # Primitives
//!
//! * [`Counter`] — a monotonically increasing atomic `u64`;
//! * [`MaxGauge`] — an atomic high-water mark (`fetch_max`);
//! * [`Histogram`] — a fixed power-of-two-bucket latency histogram with
//!   [`Histogram::span`] timers that record elapsed nanoseconds on drop;
//! * [`events`] — a bounded, drainable sink of structured JSON trace
//!   events.
//!
//! All metrics are declared as `static` items and register themselves in a
//! global registry on first touch; [`snapshot`] returns every metric
//! recorded so far, sorted by name, with JSON renderers for machine
//! consumption (the `query_server` metrics block and `SERVE_metrics.json`).
//!
//! # Two gates, zero default cost
//!
//! Recording is off unless **both** gates are open:
//!
//! 1. the `enabled` cargo feature (on by default; building this crate with
//!    `--no-default-features` turns every entry point into a compile-time
//!    no-op), and
//! 2. the `NOC_TELEMETRY` environment variable (`1` or `true`), read once
//!    per process and cached — or a programmatic [`set_enabled`] override.
//!
//! With the feature on but the env var unset (the default), every
//! recording call is a single relaxed atomic load and a predicted branch;
//! nothing is allocated, registered or counted, and analyses/simulations
//! are bit-identical to a telemetry-less build (pinned by the workspace's
//! `telemetry_neutrality` integration test).
//!
//! ```
//! use noc_telemetry::{Counter, Histogram};
//!
//! static QUERIES: Counter = Counter::new("doc.queries");
//! static LATENCY: Histogram = Histogram::new("doc.latency_ns");
//!
//! # #[cfg(feature = "enabled")] {
//! noc_telemetry::set_enabled(true);
//! QUERIES.incr();
//! {
//!     let _span = LATENCY.span(); // records elapsed ns on drop
//! }
//! let snap = noc_telemetry::snapshot();
//! assert_eq!(snap.counter("doc.queries"), Some(1));
//! noc_telemetry::set_enabled(false);
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod counter;
pub mod events;
mod histogram;
mod meta;
mod snapshot;

pub use counter::{Counter, MaxGauge};
pub use histogram::{Histogram, Span};
pub use meta::git_commit;
pub use snapshot::{
    reset_all, snapshot, CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Snapshot,
};

#[cfg(feature = "enabled")]
mod gate {
    use std::sync::atomic::{AtomicU8, Ordering};

    const UNINIT: u8 = 0;
    const OFF: u8 = 1;
    const ON: u8 = 2;

    static STATE: AtomicU8 = AtomicU8::new(UNINIT);

    /// `true` when recording is active. First call consults
    /// `NOC_TELEMETRY`; later calls are one relaxed load.
    #[inline]
    pub fn enabled() -> bool {
        match STATE.load(Ordering::Relaxed) {
            OFF => false,
            ON => true,
            _ => init(),
        }
    }

    #[cold]
    fn init() -> bool {
        let on = std::env::var("NOC_TELEMETRY")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
        on
    }

    pub fn set_enabled(on: bool) {
        STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
    }
}

#[cfg(not(feature = "enabled"))]
mod gate {
    /// Compile-time `false`: every recording body folds away entirely.
    #[inline(always)]
    pub const fn enabled() -> bool {
        false
    }

    pub fn set_enabled(_on: bool) {}
}

/// `true` when telemetry recording is active for this process.
///
/// Reads `NOC_TELEMETRY` once (accepting `1` or `true`) and caches the
/// answer; [`set_enabled`] overrides it. Always `false` when the `enabled`
/// cargo feature is off.
#[inline]
pub fn enabled() -> bool {
    gate::enabled()
}

/// Programmatically overrides the `NOC_TELEMETRY` gate — the test hook for
/// exercising both modes in one process without touching the environment.
///
/// A no-op when the `enabled` cargo feature is off.
pub fn set_enabled(on: bool) {
    gate::set_enabled(on)
}

/// Serialises tests that flip the process-global gate. Poisoning is
/// irrelevant — the lock guards no data.
#[cfg(test)]
pub(crate) fn test_gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg(feature = "enabled")]
    fn set_enabled_overrides_env_gate() {
        let _gate = super::test_gate();
        // Do not assume the initial state (the env var may be set); just
        // check both overrides stick, and leave telemetry off.
        super::set_enabled(true);
        assert!(super::enabled());
        super::set_enabled(false);
        assert!(!super::enabled());
    }

    #[test]
    #[cfg(not(feature = "enabled"))]
    fn disabled_feature_is_constant_false() {
        super::set_enabled(true);
        assert!(!super::enabled());
    }
}
