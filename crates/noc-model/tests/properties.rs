//! Property-based tests for the system model: routing, contention domains
//! and interference sets on randomly generated mesh workloads.

use noc_model::contention::InterferenceGraph;
use noc_model::prelude::*;
use proptest::prelude::*;

/// Raw flow draw: (source, dest, period, length).
type RawFlow = (u32, u32, u64, u32);

/// Strategy: a mesh size and a set of random flows on it.
fn mesh_and_flows() -> impl Strategy<Value = (u16, u16, Vec<RawFlow>)> {
    (2u16..6, 2u16..6).prop_flat_map(|(w, h)| {
        let nodes = u32::from(w) * u32::from(h);
        let flow = (0..nodes, 0..nodes, 100u64..100_000, 1u32..256);
        (Just(w), Just(h), proptest::collection::vec(flow, 1..12))
    })
}

fn build_system(w: u16, h: u16, raw: &[RawFlow]) -> Option<System> {
    let topology = Topology::mesh(w, h);
    let mut flows = Vec::new();
    for (idx, &(src, dst, period, len)) in raw.iter().enumerate() {
        if src == dst {
            return None; // invalid pick; skip this case
        }
        flows.push(
            Flow::builder(NodeId::new(src), NodeId::new(dst))
                .priority(Priority::new(idx as u32 + 1))
                .period(Cycles::new(period))
                .length_flits(len)
                .build(),
        );
    }
    let flows = FlowSet::new(flows).ok()?;
    System::new(topology, NocConfig::default(), flows, &XyRouting).ok()
}

proptest! {
    /// XY route length is always the Manhattan distance plus the two node
    /// links.
    #[test]
    fn xy_route_length_is_manhattan_plus_two(
        (w, h) in (2u16..8, 2u16..8),
        src in 0u32..64,
        dst in 0u32..64,
    ) {
        let nodes = u32::from(w) * u32::from(h);
        let (src, dst) = (src % nodes, dst % nodes);
        prop_assume!(src != dst);
        let topology = Topology::mesh(w, h);
        let route = XyRouting
            .route(&topology, NodeId::new(src), NodeId::new(dst))
            .unwrap();
        let (sx, sy) = (src % u32::from(w), src / u32::from(w));
        let (dx, dy) = (dst % u32::from(w), dst / u32::from(w));
        let manhattan = sx.abs_diff(dx) + sy.abs_diff(dy);
        prop_assert_eq!(route.len(), manhattan as usize + 2);
        // First and last links are the injection/ejection links.
        prop_assert_eq!(route.first(), topology.injection_link(NodeId::new(src)));
        prop_assert_eq!(route.last(), topology.ejection_link(NodeId::new(dst)));
    }

    /// Contention domains of XY routes always satisfy the paper's
    /// contiguity assumption: `InterferenceGraph::new` never fails on a
    /// mesh with XY routing.
    #[test]
    fn xy_contention_domains_always_contiguous(
        (w, h, raw) in mesh_and_flows(),
    ) {
        if let Some(system) = build_system(w, h, &raw) {
            let graph = InterferenceGraph::new(&system);
            prop_assert!(graph.is_ok());
        }
    }

    /// The contention relation is symmetric and domains agree in length and
    /// link content regardless of orientation.
    #[test]
    fn contention_domain_symmetry((w, h, raw) in mesh_and_flows()) {
        let Some(system) = build_system(w, h, &raw) else { return Ok(()); };
        let Ok(graph) = InterferenceGraph::new(&system) else { return Ok(()); };
        let ids: Vec<FlowId> = system.flows().ids().collect();
        for &i in &ids {
            for &j in &ids {
                if i == j { continue; }
                prop_assert_eq!(graph.contend(i, j), graph.contend(j, i));
                if let (Some(a), Some(b)) = (
                    graph.contention_domain(i, j),
                    graph.contention_domain(j, i),
                ) {
                    prop_assert_eq!(a.len(), b.len());
                    prop_assert_eq!(a.links(), b.links());
                    prop_assert_eq!(a.first_in_i(), b.first_in_j());
                }
            }
        }
    }

    /// Direct interference sets contain exactly the higher-priority
    /// contenders; indirect sets never overlap direct sets and every member
    /// interferes with some direct interferer.
    #[test]
    fn interference_set_definitions((w, h, raw) in mesh_and_flows()) {
        let Some(system) = build_system(w, h, &raw) else { return Ok(()); };
        let Ok(graph) = InterferenceGraph::new(&system) else { return Ok(()); };
        for (i, flow_i) in system.flows().iter() {
            let direct = graph.direct_set(i);
            for (j, flow_j) in system.flows().iter() {
                if i == j { continue; }
                let expected = flow_j.priority().is_higher_than(flow_i.priority())
                    && graph.contend(i, j);
                prop_assert_eq!(direct.contains(&j), expected);
            }
            for &k in graph.indirect_set(i) {
                prop_assert!(!direct.contains(&k));
                prop_assert!(!graph.contend(i, k));
                prop_assert!(
                    direct.iter().any(|&j| graph.direct_set(j).contains(&k)),
                    "indirect member must interfere with a direct interferer"
                );
                // All indirect interferers have higher priority than τi.
                prop_assert!(system
                    .flow(k)
                    .priority()
                    .is_higher_than(flow_i.priority()));
            }
        }
    }

    /// The upstream/downstream partition is total over S^I_i ∩ S^D_j and
    /// its members are disjoint.
    #[test]
    fn up_down_partition_total((w, h, raw) in mesh_and_flows()) {
        let Some(system) = build_system(w, h, &raw) else { return Ok(()); };
        let Ok(graph) = InterferenceGraph::new(&system) else { return Ok(()); };
        for (i, _) in system.flows().iter() {
            for &j in graph.direct_set(i) {
                let part = graph.partition_indirect(i, j);
                let expected: Vec<FlowId> = graph
                    .indirect_set(i)
                    .iter()
                    .copied()
                    .filter(|&k| graph.direct_set(j).contains(&k))
                    .collect();
                let mut together = part.upstream.clone();
                together.extend(part.downstream.iter().copied());
                together.sort();
                let mut expected_sorted = expected.clone();
                expected_sorted.sort();
                prop_assert_eq!(together, expected_sorted);
                for k in &part.upstream {
                    prop_assert!(!part.downstream.contains(k));
                }
            }
        }
    }

    /// Equation 1 is monotone in packet length and strictly increasing in
    /// route length for fixed parameters.
    #[test]
    fn zero_load_latency_monotone(
        len_a in 1u32..4096,
        len_b in 1u32..4096,
    ) {
        let topology = Topology::mesh(6, 1);
        let mk = |l: u32, p: u32| {
            Flow::builder(NodeId::new(0), NodeId::new(5))
                .priority(Priority::new(p))
                .period(Cycles::new(1_000_000))
                .length_flits(l)
                .build()
        };
        let flows = FlowSet::new(vec![mk(len_a, 1), mk(len_b, 2)]).unwrap();
        let system = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let ca = system.zero_load_latency(FlowId::new(0));
        let cb = system.zero_load_latency(FlowId::new(1));
        if len_a <= len_b {
            prop_assert!(ca <= cb);
        } else {
            prop_assert!(ca > cb);
        }
    }
}
