//! Arrival curves: how many packets a flow may release into a time window.
//!
//! The paper models every flow as strictly periodic with release jitter —
//! at most `⌈(w + Jᵢ)/Tᵢ⌉` releases in any half-open window of length `w`.
//! Real SoC traffic is often *bursty*: a source may emit a backlog of up to
//! `σ` extra packets at once (a DMA drain, a frame buffer flush) while still
//! respecting the long-run rate `ρ = 1/Tᵢ`. The [`ArrivalCurve`] trait
//! abstracts exactly the quantity the response-time analyses consume — the
//! maximum number of releases in a window — so the fixed-point solver in
//! `noc-analysis` is agnostic to which release model produced it.
//!
//! Two implementations are provided:
//!
//! * [`PeriodicWithJitter`] — the paper's model, `η(w) = ⌈(w + J)/T⌉`;
//! * [`LeakyBucket`] — the (σ, ρ)-style generalisation,
//!   `η(w) = ⌈(w + J)/T⌉ + σ`, with `σ = 0` **bit-identical** to
//!   [`PeriodicWithJitter`] (pinned by the workspace's degenerate-equivalence
//!   tests).
//!
//! The simulator realises a `LeakyBucket` flow by releasing packets at the
//! nominal times [`ArrivalCurve::nominal_release`] = `T · max(0, k − σ)`:
//! the first `σ + 1` packets are released simultaneously (the worst-case
//! burst) and the tail is strictly periodic, which attains the curve with
//! equality on every window anchored at the burst.

use std::fmt;

use crate::time::Cycles;

/// The analysis-facing view of a flow's release model: an upper bound on
/// the number of packets released into any time window.
///
/// Implementations must be *monotone* in the window length and *additive
/// against jitter inflation*: the response-time analyses widen windows by
/// model-specific jitter terms and rely on `η` never decreasing.
pub trait ArrivalCurve {
    /// Maximum number of releases in any half-open window of `window`
    /// cycles, in the solver's saturating 128-bit arithmetic.
    ///
    /// This is the exact quantity the fixed-point recurrences multiply by
    /// the per-hit charge; using `u128` keeps the solver's saturating
    /// window arithmetic lossless.
    fn max_arrivals_raw(&self, window: u128) -> u128;

    /// [`ArrivalCurve::max_arrivals_raw`] over a [`Cycles`] window, clamped
    /// to `u64` — the convenient form for tests and callers outside the
    /// solver.
    fn max_arrivals(&self, window: Cycles) -> u64 {
        u64::try_from(self.max_arrivals_raw(u128::from(window.as_u64()))).unwrap_or(u64::MAX)
    }

    /// The burst allowance σ: how many packets beyond the periodic pattern
    /// may be released at once. Zero for strictly periodic flows.
    fn burst(&self) -> u32;

    /// Nominal (jitter-free, offset-free) release time of packet `k`
    /// (0-based) under the worst-case realisation of this curve:
    /// `T · max(0, k − σ)`, i.e. packets `0..=σ` release together and the
    /// tail is periodic. This is what `noc-sim`'s `ReleasePlan` schedules.
    fn nominal_release(&self, k: u64) -> Cycles;
}

/// The paper's release model: strictly periodic with release jitter,
/// `η(w) = ⌈(w + J)/T⌉`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeriodicWithJitter {
    period: Cycles,
    jitter: Cycles,
}

impl PeriodicWithJitter {
    /// A periodic curve with period `T` and release jitter `J`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (the rate ρ = 1/T must be finite).
    pub fn new(period: Cycles, jitter: Cycles) -> PeriodicWithJitter {
        assert!(!period.is_zero(), "arrival-curve period must be positive");
        PeriodicWithJitter { period, jitter }
    }

    /// The period T.
    pub fn period(&self) -> Cycles {
        self.period
    }

    /// The release jitter J.
    pub fn jitter(&self) -> Cycles {
        self.jitter
    }
}

impl ArrivalCurve for PeriodicWithJitter {
    fn max_arrivals_raw(&self, window: u128) -> u128 {
        window
            .saturating_add(u128::from(self.jitter.as_u64()))
            .div_ceil(u128::from(self.period.as_u64()))
    }

    fn burst(&self) -> u32 {
        0
    }

    fn nominal_release(&self, k: u64) -> Cycles {
        self.period * k
    }
}

impl fmt::Display for PeriodicWithJitter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "periodic(T={}, J={})", self.period, self.jitter)
    }
}

/// A (σ, ρ)-style leaky-bucket curve: up to `σ` packets beyond the periodic
/// pattern may be released at once, `η(w) = ⌈(w + J)/T⌉ + σ`.
///
/// With `σ = 0` every method is bit-identical to [`PeriodicWithJitter`]
/// over the same `(T, J)` — the degenerate case the equivalence tests pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeakyBucket {
    period: Cycles,
    jitter: Cycles,
    burst: u32,
}

impl LeakyBucket {
    /// A bursty curve with period `T`, jitter `J` and burst allowance `σ`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: Cycles, jitter: Cycles, burst: u32) -> LeakyBucket {
        assert!(!period.is_zero(), "arrival-curve period must be positive");
        LeakyBucket {
            period,
            jitter,
            burst,
        }
    }

    /// The period T (long-run rate ρ = 1/T).
    pub fn period(&self) -> Cycles {
        self.period
    }

    /// The release jitter J.
    pub fn jitter(&self) -> Cycles {
        self.jitter
    }
}

impl ArrivalCurve for LeakyBucket {
    fn max_arrivals_raw(&self, window: u128) -> u128 {
        window
            .saturating_add(u128::from(self.jitter.as_u64()))
            .div_ceil(u128::from(self.period.as_u64()))
            .saturating_add(u128::from(self.burst))
    }

    fn burst(&self) -> u32 {
        self.burst
    }

    fn nominal_release(&self, k: u64) -> Cycles {
        self.period * k.saturating_sub(u64::from(self.burst))
    }
}

impl fmt::Display for LeakyBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "leaky-bucket(T={}, J={}, σ={})",
            self.period, self.jitter, self.burst
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_counts_match_div_ceil() {
        let c = PeriodicWithJitter::new(Cycles::new(100), Cycles::new(30));
        assert_eq!(c.max_arrivals(Cycles::ZERO), 1); // ⌈30/100⌉: jitter alone
        assert_eq!(c.max_arrivals(Cycles::new(1)), 1);
        assert_eq!(c.max_arrivals(Cycles::new(70)), 1);
        assert_eq!(c.max_arrivals(Cycles::new(71)), 2);
        assert_eq!(c.max_arrivals(Cycles::new(270)), 3);
        assert_eq!(c.burst(), 0);
    }

    #[test]
    fn zero_burst_bucket_is_bit_identical_to_periodic() {
        let p = PeriodicWithJitter::new(Cycles::new(250), Cycles::new(40));
        let b = LeakyBucket::new(Cycles::new(250), Cycles::new(40), 0);
        for w in [0u64, 1, 209, 210, 211, 250, 499, 500, 10_000, u64::MAX] {
            assert_eq!(
                p.max_arrivals_raw(u128::from(w)),
                b.max_arrivals_raw(u128::from(w)),
                "window {w}"
            );
        }
        for k in [0u64, 1, 2, 7, 1000] {
            assert_eq!(p.nominal_release(k), b.nominal_release(k), "packet {k}");
        }
    }

    #[test]
    fn burst_adds_sigma_everywhere() {
        let b = LeakyBucket::new(Cycles::new(100), Cycles::ZERO, 3);
        assert_eq!(b.max_arrivals(Cycles::ZERO), 3);
        assert_eq!(b.max_arrivals(Cycles::new(1)), 4);
        assert_eq!(b.max_arrivals(Cycles::new(100)), 4);
        assert_eq!(b.max_arrivals(Cycles::new(101)), 5);
        assert_eq!(b.burst(), 3);
    }

    #[test]
    fn bursty_nominal_releases_front_load_sigma_plus_one_packets() {
        let b = LeakyBucket::new(Cycles::new(100), Cycles::ZERO, 2);
        assert_eq!(b.nominal_release(0), Cycles::ZERO);
        assert_eq!(b.nominal_release(1), Cycles::ZERO);
        assert_eq!(b.nominal_release(2), Cycles::ZERO);
        assert_eq!(b.nominal_release(3), Cycles::new(100));
        assert_eq!(b.nominal_release(4), Cycles::new(200));
    }

    #[test]
    fn simulated_burst_realisation_attains_the_curve() {
        // Releases at nominal times never exceed η(w) on any window
        // anchored at the burst, and meet it with equality at the release
        // instants themselves.
        let b = LeakyBucket::new(Cycles::new(50), Cycles::ZERO, 4);
        for w in 1u64..400 {
            let released = (0u64..100)
                .filter(|&k| b.nominal_release(k).as_u64() < w)
                .count() as u64;
            assert!(
                released <= b.max_arrivals(Cycles::new(w)),
                "window {w}: {released} releases exceed the curve"
            );
        }
    }

    #[test]
    fn monotone_in_window_length() {
        let b = LeakyBucket::new(Cycles::new(97), Cycles::new(13), 2);
        let mut prev = 0;
        for w in 0..500u64 {
            let eta = b.max_arrivals(Cycles::new(w));
            assert!(eta >= prev);
            prev = eta;
        }
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = LeakyBucket::new(Cycles::ZERO, Cycles::ZERO, 1);
    }

    #[test]
    fn display_forms() {
        let p = PeriodicWithJitter::new(Cycles::new(10), Cycles::new(1));
        let b = LeakyBucket::new(Cycles::new(10), Cycles::new(1), 2);
        assert!(p.to_string().contains("periodic"));
        assert!(b.to_string().contains("σ=2"));
    }
}
