//! Network topologies: routers, nodes and unidirectional links.
//!
//! The paper models a network as a set of nodes Π, a set of routers Ξ and a
//! set of unidirectional links Λ; every node is attached to exactly one
//! router by an injection link (node → router) and an ejection link
//! (router → node). [`Topology::mesh`] builds the 2D meshes used throughout
//! the paper's evaluation, while [`TopologyBuilder`] supports the custom
//! arrangements of the didactic examples (Figures 2 and 3).

use std::collections::HashMap;
use std::fmt;

use crate::error::ModelError;
use crate::ids::{LinkId, NodeId, RouterId};

/// One end of a unidirectional link: either a processing node or a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A processing node (traffic source/sink).
    Node(NodeId),
    /// A router.
    Router(RouterId),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Node(n) => write!(f, "{n}"),
            Endpoint::Router(r) => write!(f, "{r}"),
        }
    }
}

/// A unidirectional link λ between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    source: Endpoint,
    target: Endpoint,
}

impl Link {
    /// The endpoint transmitting over this link.
    pub fn source(&self) -> Endpoint {
        self.source
    }

    /// The endpoint receiving from this link.
    pub fn target(&self) -> Endpoint {
        self.target
    }

    /// `true` if this is an injection link (node → router).
    pub fn is_injection(&self) -> bool {
        matches!(self.source, Endpoint::Node(_))
    }

    /// `true` if this is an ejection link (router → node).
    pub fn is_ejection(&self) -> bool {
        matches!(self.target, Endpoint::Node(_))
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.source, self.target)
    }
}

/// Grid coordinates of a router in a mesh, `(x, y)` with `(0, 0)` at the
/// south-west corner and `x` growing eastwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column (0-based, grows east).
    pub x: u16,
    /// Row (0-based, grows north).
    pub y: u16,
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Width × height of a rectangular mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshDims {
    /// Number of columns.
    pub width: u16,
    /// Number of rows.
    pub height: u16,
}

impl MeshDims {
    /// Total number of routers (= nodes) in the mesh.
    pub fn len(&self) -> usize {
        usize::from(self.width) * usize::from(self.height)
    }

    /// `true` for a degenerate, empty mesh.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for MeshDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

#[derive(Debug, Clone)]
struct RouterEntry {
    coord: Option<Coord>,
    name: Option<String>,
}

#[derive(Debug, Clone)]
struct NodeEntry {
    router: RouterId,
    name: Option<String>,
}

/// An immutable network topology: routers Ξ, nodes Π and unidirectional
/// links Λ, with constant-time lookup from endpoint pairs to [`LinkId`]s.
///
/// # Examples
///
/// ```
/// # use noc_model::topology::Topology;
/// let mesh = Topology::mesh(4, 4);
/// assert_eq!(mesh.router_count(), 16);
/// assert_eq!(mesh.node_count(), 16);
/// // 2·(3·4 + 4·3) router-router links + 2·16 node links:
/// assert_eq!(mesh.link_count(), 48 + 32);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    routers: Vec<RouterEntry>,
    nodes: Vec<NodeEntry>,
    links: Vec<Link>,
    link_lookup: HashMap<(Endpoint, Endpoint), LinkId>,
    injection: Vec<LinkId>,
    ejection: Vec<LinkId>,
    mesh: Option<MeshDims>,
}

impl Topology {
    /// Builds a `width × height` 2D mesh with one node per router and
    /// bidirectional neighbour connections (as two unidirectional links).
    ///
    /// Routers are indexed in row-major order: router `(x, y)` has index
    /// `x + y·width`, and node `i` is attached to router `i`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn mesh(width: u16, height: u16) -> Topology {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        let mut b = TopologyBuilder::new();
        for y in 0..height {
            for x in 0..width {
                let r = b.add_router_at(Coord { x, y });
                b.add_node(r);
            }
        }
        let idx = |x: u16, y: u16| RouterId::new(u32::from(x) + u32::from(y) * u32::from(width));
        for y in 0..height {
            for x in 0..width {
                if x + 1 < width {
                    b.add_duplex_router_link(idx(x, y), idx(x + 1, y));
                }
                if y + 1 < height {
                    b.add_duplex_router_link(idx(x, y), idx(x, y + 1));
                }
            }
        }
        let mut topo = b.build().expect("mesh construction cannot fail");
        topo.mesh = Some(MeshDims { width, height });
        topo
    }

    /// Number of routers |Ξ|.
    pub fn router_count(&self) -> usize {
        self.routers.len()
    }

    /// Number of nodes |Π|.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of unidirectional links |Λ|.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Mesh dimensions, if this topology was built by [`Topology::mesh`].
    pub fn mesh_dims(&self) -> Option<MeshDims> {
        self.mesh
    }

    /// The link table entry for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds for this topology.
    pub fn link(&self, id: LinkId) -> Link {
        self.links[id.index()]
    }

    /// Looks up the link from `source` to `target`, if one exists.
    pub fn find_link(&self, source: Endpoint, target: Endpoint) -> Option<LinkId> {
        self.link_lookup.get(&(source, target)).copied()
    }

    /// The router a node is attached to.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn router_of(&self, node: NodeId) -> RouterId {
        self.nodes[node.index()].router
    }

    /// The injection link (node → router) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn injection_link(&self, node: NodeId) -> LinkId {
        self.injection[node.index()]
    }

    /// The ejection link (router → node) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn ejection_link(&self, node: NodeId) -> LinkId {
        self.ejection[node.index()]
    }

    /// Grid coordinates of `router`, if known (always known for meshes).
    pub fn coord(&self, router: RouterId) -> Option<Coord> {
        self.routers[router.index()].coord
    }

    /// The router at mesh coordinate `(x, y)`.
    ///
    /// Returns `None` when the topology is not a mesh or the coordinate is
    /// out of range.
    pub fn router_at(&self, x: u16, y: u16) -> Option<RouterId> {
        let dims = self.mesh?;
        if x >= dims.width || y >= dims.height {
            return None;
        }
        Some(RouterId::new(
            u32::from(x) + u32::from(y) * u32::from(dims.width),
        ))
    }

    /// Iterates over all link identifiers.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId::new)
    }

    /// Iterates over all node identifiers.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId::new)
    }

    /// Iterates over all router identifiers.
    pub fn router_ids(&self) -> impl Iterator<Item = RouterId> + '_ {
        (0..self.routers.len() as u32).map(RouterId::new)
    }

    /// Human-readable name assigned to `node` by the builder, if any.
    pub fn node_name(&self, node: NodeId) -> Option<&str> {
        self.nodes[node.index()].name.as_deref()
    }

    /// Human-readable name assigned to `router` by the builder, if any.
    pub fn router_name(&self, router: RouterId) -> Option<&str> {
        self.routers[router.index()].name.as_deref()
    }

    /// Formats `link` using builder-assigned names when available, e.g.
    /// `"a→r1"` for an injection link of the didactic example.
    pub fn link_label(&self, link: LinkId) -> String {
        let l = self.link(link);
        let fmt_ep = |ep: Endpoint| match ep {
            Endpoint::Node(n) => self
                .node_name(n)
                .map(str::to_owned)
                .unwrap_or_else(|| n.to_string()),
            Endpoint::Router(r) => self
                .router_name(r)
                .map(str::to_owned)
                .unwrap_or_else(|| r.to_string()),
        };
        format!("{}→{}", fmt_ep(l.source), fmt_ep(l.target))
    }
}

/// Incremental construction of custom topologies ([C-BUILDER]).
///
/// # Examples
///
/// Build a two-router chain with one node on each side:
///
/// ```
/// # use noc_model::topology::{TopologyBuilder, Endpoint};
/// let mut b = TopologyBuilder::new();
/// let r0 = b.add_router();
/// let r1 = b.add_router();
/// let a = b.add_node(r0);
/// let z = b.add_node(r1);
/// b.add_duplex_router_link(r0, r1);
/// let topo = b.build().unwrap();
/// assert!(topo
///     .find_link(Endpoint::Router(r0), Endpoint::Router(r1))
///     .is_some());
/// assert_eq!(topo.router_of(z), r1);
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    routers: Vec<RouterEntry>,
    nodes: Vec<NodeEntry>,
    links: Vec<Link>,
    link_lookup: HashMap<(Endpoint, Endpoint), LinkId>,
    injection: Vec<LinkId>,
    ejection: Vec<LinkId>,
    duplicate: Option<(Endpoint, Endpoint)>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a router with no grid coordinate.
    pub fn add_router(&mut self) -> RouterId {
        let id = RouterId::new(self.routers.len() as u32);
        self.routers.push(RouterEntry {
            coord: None,
            name: None,
        });
        id
    }

    /// Adds a router at a grid coordinate (used by mesh construction).
    pub fn add_router_at(&mut self, coord: Coord) -> RouterId {
        let id = self.add_router();
        self.routers[id.index()].coord = Some(coord);
        id
    }

    /// Adds a named router (names show up in diagnostics and traces).
    pub fn add_named_router(&mut self, name: impl Into<String>) -> RouterId {
        let id = self.add_router();
        self.routers[id.index()].name = Some(name.into());
        id
    }

    /// Adds a node attached to `router`, creating its injection and ejection
    /// links.
    ///
    /// # Panics
    ///
    /// Panics if `router` was not created by this builder.
    pub fn add_node(&mut self, router: RouterId) -> NodeId {
        assert!(
            router.index() < self.routers.len(),
            "unknown router {router}"
        );
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(NodeEntry { router, name: None });
        let inj = self.push_link(Endpoint::Node(id), Endpoint::Router(router));
        let eje = self.push_link(Endpoint::Router(router), Endpoint::Node(id));
        self.injection.push(inj);
        self.ejection.push(eje);
        id
    }

    /// Adds a named node attached to `router`.
    pub fn add_named_node(&mut self, router: RouterId, name: impl Into<String>) -> NodeId {
        let id = self.add_node(router);
        self.nodes[id.index()].name = Some(name.into());
        id
    }

    /// Adds one unidirectional link from router `a` to router `b`.
    ///
    /// # Panics
    ///
    /// Panics if either router is unknown or `a == b`.
    pub fn add_router_link(&mut self, a: RouterId, b: RouterId) -> LinkId {
        assert!(a.index() < self.routers.len(), "unknown router {a}");
        assert!(b.index() < self.routers.len(), "unknown router {b}");
        assert_ne!(a, b, "self-links are not allowed");
        self.push_link(Endpoint::Router(a), Endpoint::Router(b))
    }

    /// Adds both directions between routers `a` and `b`.
    pub fn add_duplex_router_link(&mut self, a: RouterId, b: RouterId) -> (LinkId, LinkId) {
        (self.add_router_link(a, b), self.add_router_link(b, a))
    }

    fn push_link(&mut self, source: Endpoint, target: Endpoint) -> LinkId {
        let id = LinkId::new(self.links.len() as u32);
        if self.link_lookup.insert((source, target), id).is_some() {
            self.duplicate = Some((source, target));
        }
        self.links.push(Link { source, target });
        id
    }

    /// Finalises the topology.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateLink`] if the same directed endpoint
    /// pair was added twice.
    pub fn build(self) -> Result<Topology, ModelError> {
        if let Some((s, t)) = self.duplicate {
            return Err(ModelError::DuplicateLink {
                source: s.to_string(),
                target: t.to_string(),
            });
        }
        Ok(Topology {
            routers: self.routers,
            nodes: self.nodes,
            links: self.links,
            link_lookup: self.link_lookup,
            injection: self.injection,
            ejection: self.ejection,
            mesh: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_counts() {
        let t = Topology::mesh(3, 2);
        assert_eq!(t.router_count(), 6);
        assert_eq!(t.node_count(), 6);
        // router-router: horizontal 2 per row × 2 rows, vertical 3, each duplex
        // → 2·(2·2 + 3·1) = 14; node links: 2·6 = 12.
        assert_eq!(t.link_count(), 14 + 12);
        assert_eq!(
            t.mesh_dims(),
            Some(MeshDims {
                width: 3,
                height: 2
            })
        );
    }

    #[test]
    fn mesh_router_at_and_coord_roundtrip() {
        let t = Topology::mesh(4, 3);
        for y in 0..3 {
            for x in 0..4 {
                let r = t.router_at(x, y).unwrap();
                assert_eq!(t.coord(r), Some(Coord { x, y }));
            }
        }
        assert_eq!(t.router_at(4, 0), None);
        assert_eq!(t.router_at(0, 3), None);
    }

    #[test]
    fn mesh_neighbour_links_exist_both_ways() {
        let t = Topology::mesh(2, 2);
        let r00 = t.router_at(0, 0).unwrap();
        let r10 = t.router_at(1, 0).unwrap();
        let r01 = t.router_at(0, 1).unwrap();
        assert!(t
            .find_link(Endpoint::Router(r00), Endpoint::Router(r10))
            .is_some());
        assert!(t
            .find_link(Endpoint::Router(r10), Endpoint::Router(r00))
            .is_some());
        assert!(t
            .find_link(Endpoint::Router(r00), Endpoint::Router(r01))
            .is_some());
        // No diagonal links.
        let r11 = t.router_at(1, 1).unwrap();
        assert!(t
            .find_link(Endpoint::Router(r00), Endpoint::Router(r11))
            .is_none());
    }

    #[test]
    fn node_links_wired() {
        let t = Topology::mesh(2, 1);
        for n in t.node_ids() {
            let inj = t.link(t.injection_link(n));
            assert_eq!(inj.source(), Endpoint::Node(n));
            assert_eq!(inj.target(), Endpoint::Router(t.router_of(n)));
            assert!(inj.is_injection());
            let eje = t.link(t.ejection_link(n));
            assert_eq!(eje.target(), Endpoint::Node(n));
            assert!(eje.is_ejection());
        }
    }

    #[test]
    fn builder_rejects_duplicate_links() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router();
        let r1 = b.add_router();
        b.add_router_link(r0, r1);
        b.add_router_link(r0, r1);
        assert!(matches!(b.build(), Err(ModelError::DuplicateLink { .. })));
    }

    #[test]
    fn builder_names_surface_in_labels() {
        let mut b = TopologyBuilder::new();
        let r1 = b.add_named_router("r1");
        let a = b.add_named_node(r1, "a");
        let t = b.build().unwrap();
        assert_eq!(t.node_name(a), Some("a"));
        assert_eq!(t.router_name(r1), Some("r1"));
        assert_eq!(t.link_label(t.injection_link(a)), "a→r1");
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn builder_rejects_self_link() {
        let mut b = TopologyBuilder::new();
        let r = b.add_router();
        b.add_router_link(r, r);
    }

    #[test]
    fn link_display() {
        let t = Topology::mesh(2, 1);
        let inj = t.link(t.injection_link(NodeId::new(0)));
        assert_eq!(inj.to_string(), "n0→r0");
    }
}
