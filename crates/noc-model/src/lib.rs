//! System model for real-time priority-preemptive wormhole networks-on-chip.
//!
//! This crate implements §II of *"Buffer-aware bounds to multi-point
//! progressive blocking in priority-preemptive NoCs"* (Indrusiak, Burns &
//! Nikolić, DATE 2018): network topologies with unidirectional links,
//! deterministic routing, the real-time traffic-flow model
//! τᵢ = (Pᵢ, Cᵢ, Tᵢ, Dᵢ, Jᵢ, πˢᵢ, πᵈᵢ), the zero-load latency equation
//! (Eq. 1), and the contention-domain/interference-set machinery (§III) on
//! which the response-time analyses of the companion `noc-analysis` crate
//! are built.
//!
//! # Quick start
//!
//! ```
//! use noc_model::prelude::*;
//!
//! // A 4x4 mesh with one node per router.
//! let topology = Topology::mesh(4, 4);
//!
//! // Two flows; priority 1 is the highest.
//! let flows = FlowSet::new(vec![
//!     Flow::builder(NodeId::new(0), NodeId::new(15))
//!         .priority(Priority::new(1))
//!         .period(Cycles::new(2_000))
//!         .length_flits(64)
//!         .build(),
//!     Flow::builder(NodeId::new(4), NodeId::new(7))
//!         .priority(Priority::new(2))
//!         .period(Cycles::new(5_000))
//!         .length_flits(128)
//!         .build(),
//! ])?;
//!
//! // Routers with 2-flit FIFO buffers per virtual channel, XY routing.
//! let system = System::new(topology, NocConfig::default(), flows, &XyRouting)?;
//! assert_eq!(system.zero_load_latency(FlowId::new(0)).as_u64(), 71);
//! # Ok::<(), noc_model::error::ModelError>(())
//! ```
//!
//! # Module map (code ↔ paper)
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`ids`] | strongly-typed identifiers ([`NodeId`], [`RouterId`], [`LinkId`], [`FlowId`], [`Priority`] πᵢ) |
//! | [`time`] | the [`Cycles`] time unit every latency is measured in |
//! | [`topology`] | §II platform model: routers ξ, nodes, unidirectional links λ, 2D meshes |
//! | [`route`], [`routing`] | `routeᵢ` and the deterministic routing functions (XY/YX/table) |
//! | [`flow`] | §II traffic-flow model τᵢ = (Pᵢ, Cᵢ, Tᵢ, Dᵢ, Jᵢ, πˢᵢ, πᵈᵢ), plus the burst allowance σᵢ |
//! | [`arrival`] | release models as arrival curves η(w): periodic-with-jitter (the paper) and the bursty leaky bucket |
//! | [`config`], [`system`] | `buf(Ξ)`, `vc(Ξ)`, `linkl(Ξ)`, `routl(Ξ)`; per-router [`BufferMap`](config::BufferMap); the routed [`System`] and Equation 1 ([`System::zero_load_latency`]) |
//! | [`contention`] | §III: contention domains `cd(i,j)`, interference sets `S^D_i`/`S^I_i`, up/down partitions |
//!
//! Downstream crates build on this model: `noc-analysis` implements the
//! response-time bounds (Equations 2–8), `noc-sim` the cycle-accurate
//! router of Figure 1, `noc-experiments` the tables and figures.
//!
//! # The `buf(Ξ) ≥ 2` fidelity precondition
//!
//! Equation 1 assumes flits stream through routers at link rate. A 1-flit
//! input buffer cannot stream — the credit round-trip inserts a bubble
//! behind every flit — so the cycle-accurate simulator in `noc-sim` only
//! attains Equation 1's zero-load latency (and the end-to-end soundness
//! chain `R^sim ≤ R^IBN` only holds) for buffer depths of **at least two
//! flits**. The analyses themselves remain well-defined at `buf(Ξ) = 1`;
//! see [`config::NocConfigBuilder::buffer_depth`] for the full statement.
//!
//! [`NodeId`]: ids::NodeId
//! [`RouterId`]: ids::RouterId
//! [`LinkId`]: ids::LinkId
//! [`FlowId`]: ids::FlowId
//! [`Priority`]: ids::Priority
//! [`Cycles`]: time::Cycles
//! [`System`]: system::System
//! [`System::zero_load_latency`]: system::System::zero_load_latency

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrival;
pub mod config;
pub mod contention;
pub mod error;
pub mod flow;
pub mod ids;
pub mod route;
pub mod routing;
pub mod system;
pub mod time;
pub mod topology;

/// Convenient re-exports of the types needed by almost every user.
pub mod prelude {
    pub use crate::arrival::{ArrivalCurve, LeakyBucket, PeriodicWithJitter};
    pub use crate::config::{BufferMap, NocConfig};
    pub use crate::contention::InterferenceGraph;
    pub use crate::error::ModelError;
    pub use crate::flow::{Flow, FlowSet};
    pub use crate::ids::{FlowId, LinkId, NodeId, Priority, RouterId};
    pub use crate::route::Route;
    pub use crate::routing::{RoutingAlgorithm, TableRouting, XyRouting, YxRouting};
    pub use crate::system::System;
    pub use crate::time::Cycles;
    pub use crate::topology::{Endpoint, Topology, TopologyBuilder};
}
