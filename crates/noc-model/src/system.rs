//! The complete analysable system: topology + configuration + routed flows.

use crate::config::{BufferMap, NocConfig};
use crate::error::ModelError;
use crate::flow::{Flow, FlowSet};
use crate::ids::{FlowId, LinkId, RouterId};
use crate::route::Route;
use crate::routing::RoutingAlgorithm;
use crate::time::Cycles;
use crate::topology::{Endpoint, Topology};

/// A fully-routed system instance: the inputs every response-time analysis
/// and the simulator consume.
///
/// Constructing a `System` runs all cross-entity validation: every flow is
/// routed, routes are checked for connectivity, and the configured virtual
/// channel count (if any) is checked against the number of priority levels.
///
/// # Examples
///
/// ```
/// # use noc_model::prelude::*;
/// let topology = Topology::mesh(4, 4);
/// let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(15))
///     .priority(Priority::new(1))
///     .period(Cycles::new(1_000))
///     .length_flits(20)
///     .build()])?;
/// let system = System::new(topology, NocConfig::default(), flows, &XyRouting)?;
/// // Eq. 1: C = routl·(|route|−1) + linkl·|route| + linkl·(L−1)
/// //          = 0·7 + 1·8 + 1·19 = 27 with the default config.
/// assert_eq!(system.zero_load_latency(FlowId::new(0)), Cycles::new(27));
/// # Ok::<(), noc_model::error::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct System {
    topology: Topology,
    config: NocConfig,
    flows: FlowSet,
    routes: Vec<Route>,
    /// Per-router buffer depths. Invariant: `buffers.default_depth()`
    /// always equals `config.buffer_depth()`, so the scalar accessor and
    /// the map never disagree about un-overridden routers.
    buffers: BufferMap,
}

impl System {
    /// Routes every flow over `topology` and validates the assembled system.
    ///
    /// # Errors
    ///
    /// Propagates routing failures ([`ModelError::NoRoute`],
    /// [`ModelError::BrokenRoute`], [`ModelError::UnknownNode`]) and returns
    /// [`ModelError::InsufficientVirtualChannels`] when a fixed `vc(Ξ)` is
    /// smaller than the number of priority levels.
    pub fn new(
        topology: Topology,
        config: NocConfig,
        flows: FlowSet,
        routing: &dyn RoutingAlgorithm,
    ) -> Result<System, ModelError> {
        if let Some(vcs) = config.virtual_channels() {
            let required = flows.priority_levels();
            if vcs < required {
                return Err(ModelError::InsufficientVirtualChannels {
                    available: vcs,
                    required,
                });
            }
        }
        let mut routes = Vec::with_capacity(flows.len());
        for (_, flow) in flows.iter() {
            routes.push(routing.route(&topology, flow.source(), flow.dest())?);
        }
        let buffers = BufferMap::uniform(config.buffer_depth());
        Ok(System {
            topology,
            config,
            flows,
            routes,
            buffers,
        })
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The homogeneous router configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// The flow set Γ.
    pub fn flows(&self) -> &FlowSet {
        &self.flows
    }

    /// The flow τᵢ.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn flow(&self, id: FlowId) -> &Flow {
        self.flows.flow(id)
    }

    /// The route of flow `id` (the paper's `routeᵢ`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn route(&self, id: FlowId) -> &Route {
        &self.routes[id.index()]
    }

    /// Number of virtual channels each router must provide: the explicit
    /// `vc(Ξ)` if configured, otherwise the number of priority levels.
    pub fn virtual_channels(&self) -> u32 {
        self.config
            .virtual_channels()
            .unwrap_or_else(|| self.flows.priority_levels())
    }

    /// Maximum zero-load network latency Cᵢ — Equation 1 of the paper:
    ///
    /// ```text
    /// Cᵢ = routl(Ξ)·(|routeᵢ|−1) + linkl(Ξ)·|routeᵢ| + linkl(Ξ)·(Lᵢ−1)
    /// ```
    ///
    /// the header's per-hop routing and link traversal time plus one link
    /// time per payload flit pipelined behind it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn zero_load_latency(&self, id: FlowId) -> Cycles {
        let flow = self.flows.flow(id);
        let route_len = self.routes[id.index()].len() as u64;
        let routl = self.config.routing_latency();
        let linkl = self.config.link_latency();
        routl * (route_len - 1) + linkl * route_len + linkl * u64::from(flow.length_flits() - 1)
    }

    /// Zero-load latencies for all flows, indexed by [`FlowId`].
    pub fn zero_load_latencies(&self) -> Vec<Cycles> {
        self.flows
            .ids()
            .map(|id| self.zero_load_latency(id))
            .collect()
    }

    /// Returns a copy of the system extended with one additional flow,
    /// routed by `routing`, together with the [`FlowId`] it was assigned.
    ///
    /// The new flow is appended, so every existing flow keeps its id — the
    /// delta the incremental analysis context in `noc-analysis` exploits:
    /// only interference pairs involving the new flow can change.
    ///
    /// # Errors
    ///
    /// Propagates routing failures, [`ModelError::InvalidFlow`] /
    /// [`ModelError::DuplicatePriority`] from flow-set revalidation, and
    /// [`ModelError::InsufficientVirtualChannels`] when a fixed `vc(Ξ)`
    /// cannot accommodate the extra priority level.
    pub fn with_added_flow(
        &self,
        flow: Flow,
        routing: &dyn RoutingAlgorithm,
    ) -> Result<(System, FlowId), ModelError> {
        let route = routing.route(&self.topology, flow.source(), flow.dest())?;
        let mut flows: Vec<Flow> = self.flows.iter().map(|(_, f)| f.clone()).collect();
        flows.push(flow);
        let flows = FlowSet::new(flows)?;
        if let Some(vcs) = self.config.virtual_channels() {
            let required = flows.priority_levels();
            if vcs < required {
                return Err(ModelError::InsufficientVirtualChannels {
                    available: vcs,
                    required,
                });
            }
        }
        let id = FlowId::new(self.routes.len() as u32);
        let mut routes = self.routes.clone();
        routes.push(route);
        Ok((
            System {
                topology: self.topology.clone(),
                config: self.config,
                flows,
                routes,
                buffers: self.buffers.clone(),
            },
            id,
        ))
    }

    /// Returns a copy of the system without flow `id`.
    ///
    /// Flow ids are dense indices, so every flow with a larger id is
    /// renumbered one down; routes and all other structure are preserved
    /// verbatim (no re-routing happens).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFlow`] if `id` is out of bounds.
    pub fn without_flow(&self, id: FlowId) -> Result<System, ModelError> {
        if id.index() >= self.flows.len() {
            return Err(ModelError::InvalidFlow {
                flow: id,
                reason: format!("no such flow to remove (set has {})", self.flows.len()),
            });
        }
        let flows: Vec<Flow> = self
            .flows
            .iter()
            .filter(|&(fid, _)| fid != id)
            .map(|(_, f)| f.clone())
            .collect();
        let flows = FlowSet::new(flows).expect("a validated flow set stays valid after removal");
        let mut routes = self.routes.clone();
        routes.remove(id.index());
        Ok(System {
            topology: self.topology.clone(),
            config: self.config,
            flows,
            routes,
            buffers: self.buffers.clone(),
        })
    }

    /// Returns a copy with the explicit virtual-channel count replaced
    /// (`None` restores automatic sizing to the number of priority levels).
    /// Useful before admission what-ifs against systems built with a tight
    /// fixed `vc(Ξ)`, which would otherwise reject any added flow.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InsufficientVirtualChannels`] if a fixed count
    /// is below the current number of priority levels.
    pub fn with_virtual_channels(&self, vcs: Option<u32>) -> Result<System, ModelError> {
        if let Some(v) = vcs {
            let required = self.flows.priority_levels();
            if v < required {
                return Err(ModelError::InsufficientVirtualChannels {
                    available: v,
                    required,
                });
            }
        }
        let mut copy = self.clone();
        copy.config = self.config.with_virtual_channels(vcs);
        Ok(copy)
    }

    /// Returns a copy of the system with a different *homogeneous* per-VC
    /// buffer depth — everything else (routes included) is preserved, and
    /// any per-router overrides are cleared. This is the lever the
    /// buffer-aware analysis studies.
    #[must_use]
    pub fn with_buffer_depth(&self, depth: u32) -> System {
        System {
            topology: self.topology.clone(),
            config: self.config.with_buffer_depth(depth),
            flows: self.flows.clone(),
            routes: self.routes.clone(),
            buffers: BufferMap::uniform(depth),
        }
    }

    /// The per-router buffer-depth map `buf(ξ)`.
    pub fn buffer_map(&self) -> &BufferMap {
        &self.buffers
    }

    /// Returns a copy of the system with its whole buffer configuration
    /// replaced by `map` — the heterogeneous counterpart of
    /// [`System::with_buffer_depth`]. The scalar `config.buffer_depth()` is
    /// kept in sync with the map's default depth, so uniform maps are
    /// bit-identical to the scalar path everywhere.
    ///
    /// # Panics
    ///
    /// Panics if the map carries an override for a router this topology
    /// does not have.
    #[must_use]
    pub fn with_buffer_map(&self, map: BufferMap) -> System {
        assert!(
            map.override_span() <= self.topology.router_count(),
            "buffer map overrides {} routers but the topology has {}",
            map.override_span(),
            self.topology.router_count()
        );
        System {
            topology: self.topology.clone(),
            config: self.config.with_buffer_depth(map.default_depth()),
            flows: self.flows.clone(),
            routes: self.routes.clone(),
            buffers: map,
        }
    }

    /// Returns a copy with the per-VC buffer depth of one router overridden
    /// — the heterogeneous generalisation the paper's per-router `buf(ξᵢ)`
    /// notation (§II) allows. The buffer-aware analysis and the simulator
    /// honour per-router depths; Equation 6 generalises to
    /// `bi(i,j) = linkl(Ξ) · Σ_{λ ∈ cd(i,j)} buf(target(λ))`.
    ///
    /// # Panics
    ///
    /// Panics if `router` is out of bounds or `depth` is zero.
    #[must_use]
    pub fn with_router_buffer_depth(&self, router: RouterId, depth: u32) -> System {
        assert!(
            router.index() < self.topology.router_count(),
            "unknown router {router}"
        );
        assert!(depth >= 1, "buffer depth must be at least one flit");
        let mut copy = self.clone();
        copy.buffers.set_router_depth(router, depth);
        copy
    }

    /// The per-VC buffer depth at `router`: the override if one was set,
    /// otherwise the homogeneous `buf(Ξ)`.
    ///
    /// # Panics
    ///
    /// Panics if `router` is out of bounds.
    pub fn buffer_depth_at(&self, router: RouterId) -> u32 {
        assert!(
            router.index() < self.topology.router_count(),
            "unknown router {router}"
        );
        self.buffers.depth_at(router)
    }

    /// The buffer depth of the input VC fed by `link` — the depth at the
    /// link's target router, or `None` for ejection links (nodes sink flits
    /// without buffering limits).
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of bounds.
    pub fn buffer_depth_of_link(&self, link: LinkId) -> Option<u32> {
        match self.topology.link(link).target() {
            Endpoint::Router(r) => Some(self.buffer_depth_at(r)),
            Endpoint::Node(_) => None,
        }
    }

    /// `true` if any router's buffer depth differs from the homogeneous
    /// configuration.
    pub fn has_heterogeneous_buffers(&self) -> bool {
        !self.buffers.is_uniform()
    }

    /// Returns a copy of the system with every period and deadline scaled
    /// by the rational factor `numerator / denominator` (clamped below at
    /// one cycle). Routes and packet lengths are preserved.
    ///
    /// Scaling periods *down* (factor < 1) increases load; the breakdown
    /// utilities in `noc-experiments` binary-search this factor to measure
    /// how much headroom an analysis certifies.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFlow`] if scaling degenerates a flow
    /// (cannot happen for factors ≥ 1/T of every flow, since values clamp
    /// at one cycle and D ≤ T is preserved by uniform scaling).
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero.
    pub fn with_scaled_periods(
        &self,
        numerator: u64,
        denominator: u64,
    ) -> Result<System, ModelError> {
        assert!(denominator > 0, "scaling denominator must be positive");
        let scale = |c: Cycles| {
            let v = (u128::from(c.as_u64()) * u128::from(numerator)) / u128::from(denominator);
            Cycles::new(u64::try_from(v).unwrap_or(u64::MAX).max(1))
        };
        let scaled: Vec<Flow> = self
            .flows
            .iter()
            .map(|(_, f)| {
                let mut b = Flow::builder(f.source(), f.dest())
                    .priority(f.priority())
                    .period(scale(f.period()))
                    .deadline(scale(f.deadline()))
                    .jitter(f.jitter())
                    .burst(f.burst())
                    .length_flits(f.length_flits());
                if let Some(name) = f.name() {
                    b = b.name(name);
                }
                b.build()
            })
            .collect();
        Ok(System {
            topology: self.topology.clone(),
            config: self.config,
            flows: FlowSet::new(scaled)?,
            routes: self.routes.clone(),
            buffers: self.buffers.clone(),
        })
    }

    /// Total utilisation Σ Cᵢ/Tᵢ of the flow set (a scalar health metric
    /// for generated workloads; not used by the analyses themselves).
    pub fn total_utilisation(&self) -> f64 {
        self.flows
            .iter()
            .map(|(id, f)| self.zero_load_latency(id).as_u64() as f64 / f.period().as_u64() as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, Priority};
    use crate::routing::XyRouting;

    fn simple_system(length_flits: u32, buffer: u32) -> System {
        let topology = Topology::mesh(4, 1);
        let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(3))
            .priority(Priority::new(1))
            .period(Cycles::new(100_000))
            .length_flits(length_flits)
            .build()])
        .unwrap();
        let config = NocConfig::builder()
            .buffer_depth(buffer)
            .link_latency(Cycles::ONE)
            .routing_latency(Cycles::ZERO)
            .build();
        System::new(topology, config, flows, &XyRouting).unwrap()
    }

    #[test]
    fn zero_load_latency_matches_equation_one() {
        // |route| = 5, L = 60 → C = 0·4 + 1·5 + 1·59 = 64.
        let sys = simple_system(60, 2);
        assert_eq!(sys.zero_load_latency(FlowId::new(0)), Cycles::new(64));
    }

    #[test]
    fn zero_load_latency_with_routing_latency() {
        let topology = Topology::mesh(4, 1);
        let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(3))
            .priority(Priority::new(1))
            .period(Cycles::new(100_000))
            .length_flits(60)
            .build()])
        .unwrap();
        let config = NocConfig::builder().routing_latency(Cycles::ONE).build();
        let sys = System::new(topology, config, flows, &XyRouting).unwrap();
        // C = 1·4 + 1·5 + 1·59 = 68.
        assert_eq!(sys.zero_load_latency(FlowId::new(0)), Cycles::new(68));
    }

    #[test]
    fn zero_load_latency_single_flit() {
        let sys = simple_system(1, 2);
        // header only: C = |route| = 5.
        assert_eq!(sys.zero_load_latency(FlowId::new(0)), Cycles::new(5));
    }

    #[test]
    fn didactic_zero_load_values() {
        // Table I of the paper: C = L + |route| − 1 with routl=0, linkl=1.
        for (l, route_len, expect) in [(60u32, 3usize, 62u64), (198, 7, 204), (128, 5, 132)] {
            // emulate with a straight mesh of the right length
            let topology = Topology::mesh(route_len as u16 - 1, 1);
            let flows = FlowSet::new(vec![Flow::builder(
                NodeId::new(0),
                NodeId::new(route_len as u32 - 2),
            )
            .priority(Priority::new(1))
            .period(Cycles::new(1_000_000))
            .length_flits(l)
            .build()])
            .unwrap();
            let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
            assert_eq!(sys.route(FlowId::new(0)).len(), route_len);
            assert_eq!(sys.zero_load_latency(FlowId::new(0)), Cycles::new(expect));
        }
    }

    #[test]
    fn insufficient_vcs_rejected() {
        let topology = Topology::mesh(2, 1);
        let flows = FlowSet::new(vec![
            Flow::builder(NodeId::new(0), NodeId::new(1))
                .priority(Priority::new(1))
                .period(Cycles::new(100))
                .build(),
            Flow::builder(NodeId::new(1), NodeId::new(0))
                .priority(Priority::new(2))
                .period(Cycles::new(100))
                .build(),
        ])
        .unwrap();
        let config = NocConfig::builder().virtual_channels(1).build();
        assert!(matches!(
            System::new(topology, config, flows, &XyRouting),
            Err(ModelError::InsufficientVirtualChannels {
                available: 1,
                required: 2
            })
        ));
    }

    #[test]
    fn auto_vcs_equals_priority_levels() {
        let sys = simple_system(10, 2);
        assert_eq!(sys.virtual_channels(), 1);
    }

    #[test]
    fn with_buffer_depth_keeps_routes() {
        let sys = simple_system(10, 2);
        let big = sys.with_buffer_depth(100);
        assert_eq!(big.config().buffer_depth(), 100);
        assert_eq!(big.route(FlowId::new(0)), sys.route(FlowId::new(0)));
        assert_eq!(
            big.zero_load_latency(FlowId::new(0)),
            sys.zero_load_latency(FlowId::new(0))
        );
    }

    #[test]
    fn buffer_map_round_trips_through_system() {
        use crate::config::BufferMap;
        use crate::ids::RouterId;
        let sys = simple_system(10, 2);
        assert!(sys.buffer_map().is_uniform());
        assert_eq!(sys.buffer_map().default_depth(), 2);

        let map = BufferMap::uniform(4).with_router_depth(RouterId::new(1), 9);
        let hetero = sys.with_buffer_map(map.clone());
        assert_eq!(hetero.buffer_map(), &map);
        // The scalar accessor stays in sync with the map's default.
        assert_eq!(hetero.config().buffer_depth(), 4);
        assert_eq!(hetero.buffer_depth_at(RouterId::new(0)), 4);
        assert_eq!(hetero.buffer_depth_at(RouterId::new(1)), 9);
        assert!(hetero.has_heterogeneous_buffers());
        // Routes and latencies are untouched by buffer reconfiguration.
        assert_eq!(hetero.route(FlowId::new(0)), sys.route(FlowId::new(0)));
        assert_eq!(
            hetero.zero_load_latency(FlowId::new(0)),
            sys.zero_load_latency(FlowId::new(0))
        );
    }

    #[test]
    fn uniform_buffer_map_equals_scalar_path() {
        use crate::config::BufferMap;
        use crate::ids::RouterId;
        let sys = simple_system(10, 2);
        let via_map = sys.with_buffer_map(BufferMap::uniform(7));
        let via_scalar = sys.with_buffer_depth(7);
        assert_eq!(via_map.config(), via_scalar.config());
        assert!(!via_map.has_heterogeneous_buffers());
        for r in 0..4 {
            assert_eq!(
                via_map.buffer_depth_at(RouterId::new(r)),
                via_scalar.buffer_depth_at(RouterId::new(r))
            );
        }
    }

    #[test]
    #[should_panic(expected = "buffer map overrides")]
    fn oversized_buffer_map_rejected() {
        use crate::config::BufferMap;
        use crate::ids::RouterId;
        let sys = simple_system(10, 2);
        let _ = sys.with_buffer_map(BufferMap::uniform(2).with_router_depth(RouterId::new(99), 3));
    }

    #[test]
    fn scaled_periods_preserve_burst() {
        let topology = Topology::mesh(2, 1);
        let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(1))
            .priority(Priority::new(1))
            .period(Cycles::new(1_000))
            .burst(3)
            .length_flits(8)
            .build()])
        .unwrap();
        let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let scaled = sys.with_scaled_periods(2, 1).unwrap();
        assert_eq!(scaled.flow(FlowId::new(0)).burst(), 3);
    }

    #[test]
    fn utilisation_is_positive_and_small_here() {
        let sys = simple_system(10, 2);
        let u = sys.total_utilisation();
        assert!(u > 0.0 && u < 0.01, "u = {u}");
    }

    #[test]
    fn scaled_periods_change_load_not_structure() {
        let sys = simple_system(10, 2);
        let id = FlowId::new(0);
        let halved = sys.with_scaled_periods(1, 2).unwrap();
        assert_eq!(halved.flow(id).period(), Cycles::new(50_000));
        assert_eq!(halved.flow(id).deadline(), Cycles::new(50_000));
        assert_eq!(halved.route(id), sys.route(id));
        assert_eq!(halved.zero_load_latency(id), sys.zero_load_latency(id));
        let doubled = sys.with_scaled_periods(2, 1).unwrap();
        assert_eq!(doubled.flow(id).period(), Cycles::new(200_000));
        // Utilisation scales inversely with the factor.
        assert!(halved.total_utilisation() > sys.total_utilisation());
        assert!(doubled.total_utilisation() < sys.total_utilisation());
    }

    #[test]
    fn scaling_clamps_at_one_cycle() {
        let sys = simple_system(10, 2);
        let tiny = sys.with_scaled_periods(1, u64::MAX).unwrap();
        assert_eq!(tiny.flow(FlowId::new(0)).period(), Cycles::ONE);
        assert_eq!(tiny.flow(FlowId::new(0)).deadline(), Cycles::ONE);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = simple_system(10, 2).with_scaled_periods(1, 0);
    }
}
