//! Routes: totally ordered sequences of links from a source node to a
//! destination node.
//!
//! The paper's `route(πa, πb)` is the ordered subset of Λ used to transfer
//! packets from node πa to node πb, *including* the injection link from the
//! source node and the ejection link to the destination node. The paper's
//! 1-based `order(λ, route)` function corresponds to [`Route::order`].

use std::fmt;

use crate::error::ModelError;
use crate::ids::LinkId;
use crate::topology::{Endpoint, Topology};

/// A validated route: a connected chain of links starting at a node,
/// traversing routers, and ending at a node.
///
/// # Examples
///
/// ```
/// # use noc_model::topology::Topology;
/// # use noc_model::routing::{RoutingAlgorithm, XyRouting};
/// # use noc_model::ids::NodeId;
/// let mesh = Topology::mesh(4, 4);
/// let route = XyRouting
///     .route(&mesh, NodeId::new(0), NodeId::new(3))
///     .unwrap();
/// // 3 hops east + injection + ejection = 5 links (paper: |route|).
/// assert_eq!(route.len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Route {
    links: Vec<LinkId>,
}

impl Route {
    /// Validates and wraps an ordered list of links as a route.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BrokenRoute`] unless `links` is non-empty,
    /// starts at a node, ends at a node, and each link's target equals the
    /// next link's source.
    pub fn new(topology: &Topology, links: Vec<LinkId>) -> Result<Route, ModelError> {
        if links.is_empty() {
            return Err(ModelError::BrokenRoute {
                detail: "route has no links".into(),
            });
        }
        let first = topology.link(links[0]);
        if !matches!(first.source(), Endpoint::Node(_)) {
            return Err(ModelError::BrokenRoute {
                detail: format!("route must start at a node, starts at {}", first.source()),
            });
        }
        let last = topology.link(links[links.len() - 1]);
        if !matches!(last.target(), Endpoint::Node(_)) {
            return Err(ModelError::BrokenRoute {
                detail: format!("route must end at a node, ends at {}", last.target()),
            });
        }
        for pair in links.windows(2) {
            let a = topology.link(pair[0]);
            let b = topology.link(pair[1]);
            if a.target() != b.source() {
                return Err(ModelError::BrokenRoute {
                    detail: format!(
                        "link {} ends at {} but next link {} starts at {}",
                        a,
                        a.target(),
                        b,
                        b.source()
                    ),
                });
            }
        }
        // Deterministic minimal routes never revisit a link; a repeat would
        // also break the per-link ordering the analyses rely on.
        let mut seen = links.clone();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err(ModelError::BrokenRoute {
                detail: "route visits a link twice".into(),
            });
        }
        Ok(Route { links })
    }

    /// Number of links, the paper's `|route|`.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `false` — a valid route always has at least one link. Provided for
    /// API completeness alongside [`Route::len`].
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Number of routers traversed, the paper's `|route| − 1`.
    pub fn hop_count(&self) -> usize {
        self.links.len() - 1
    }

    /// The links in traversal order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// The first link (the paper's `first(route)`), always the injection
    /// link of the source node.
    pub fn first(&self) -> LinkId {
        self.links[0]
    }

    /// The last link (the paper's `last(route)`), always the ejection link
    /// of the destination node.
    pub fn last(&self) -> LinkId {
        self.links[self.links.len() - 1]
    }

    /// 1-based position of `link` on this route — the paper's
    /// `order(λ, route)`. Returns `None` if the link is not on the route.
    pub fn order(&self, link: LinkId) -> Option<usize> {
        self.position(link).map(|p| p + 1)
    }

    /// 0-based position of `link` on this route.
    pub fn position(&self, link: LinkId) -> Option<usize> {
        self.links.iter().position(|&l| l == link)
    }

    /// `true` if `link` is used by this route.
    pub fn contains(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// Iterates over the links in traversal order.
    pub fn iter(&self) -> std::slice::Iter<'_, LinkId> {
        self.links.iter()
    }
}

impl<'a> IntoIterator for &'a Route {
    type Item = &'a LinkId;
    type IntoIter = std::slice::Iter<'a, LinkId>;

    fn into_iter(self) -> Self::IntoIter {
        self.links.iter()
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::routing::{RoutingAlgorithm, XyRouting};
    use crate::topology::Topology;

    fn straight_route() -> (Topology, Route) {
        let t = Topology::mesh(4, 1);
        let r = XyRouting.route(&t, NodeId::new(0), NodeId::new(3)).unwrap();
        (t, r)
    }

    #[test]
    fn route_endpoints_and_len() {
        let (t, r) = straight_route();
        assert_eq!(r.len(), 5);
        assert_eq!(r.hop_count(), 4);
        assert!(!r.is_empty());
        assert_eq!(r.first(), t.injection_link(NodeId::new(0)));
        assert_eq!(r.last(), t.ejection_link(NodeId::new(3)));
    }

    #[test]
    fn order_is_one_based() {
        let (_, r) = straight_route();
        assert_eq!(r.order(r.first()), Some(1));
        assert_eq!(r.order(r.last()), Some(r.len()));
        assert_eq!(r.position(r.first()), Some(0));
        assert_eq!(r.order(LinkId::new(9999)), None);
    }

    #[test]
    fn new_rejects_empty() {
        let t = Topology::mesh(2, 1);
        assert!(matches!(
            Route::new(&t, vec![]),
            Err(ModelError::BrokenRoute { .. })
        ));
    }

    #[test]
    fn new_rejects_disconnected_chain() {
        let t = Topology::mesh(3, 1);
        // injection of n0 followed by ejection of n2 skips routers 1..2.
        let links = vec![
            t.injection_link(NodeId::new(0)),
            t.ejection_link(NodeId::new(2)),
        ];
        assert!(matches!(
            Route::new(&t, links),
            Err(ModelError::BrokenRoute { .. })
        ));
    }

    #[test]
    fn new_rejects_route_not_starting_at_node() {
        let t = Topology::mesh(2, 1);
        let n1 = NodeId::new(1);
        // starts with an ejection link (router→node): invalid.
        let links = vec![t.ejection_link(n1)];
        assert!(matches!(
            Route::new(&t, links),
            Err(ModelError::BrokenRoute { .. })
        ));
    }

    #[test]
    fn iteration_and_display() {
        let (_, r) = straight_route();
        assert_eq!(r.iter().count(), 5);
        assert_eq!((&r).into_iter().count(), 5);
        assert!(r.to_string().starts_with('['));
    }
}
