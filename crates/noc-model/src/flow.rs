//! Real-time traffic flows and flow sets.
//!
//! A flow τᵢ = (Pᵢ, Cᵢ, Tᵢ, Dᵢ, Jᵢ, πˢᵢ, πᵈᵢ) releases a potentially
//! unbounded sequence of packets of at most `Lᵢ` flits, no closer together
//! than the period `Tᵢ`, each of which must reach the destination within the
//! deadline `Dᵢ ≤ Tᵢ`. The basic network latency Cᵢ is *derived* (Equation 1)
//! from the packet length and the route, so it lives on
//! [`System`](crate::system::System) rather than here.

use std::fmt;

use crate::arrival::LeakyBucket;
use crate::error::ModelError;
use crate::ids::{FlowId, NodeId, Priority};
use crate::time::Cycles;

/// A periodic or sporadic real-time traffic flow.
///
/// Construct flows with [`Flow::builder`]; identifiers are assigned by the
/// [`FlowSet`] in insertion order.
///
/// # Examples
///
/// ```
/// # use noc_model::flow::Flow;
/// # use noc_model::ids::{NodeId, Priority};
/// # use noc_model::time::Cycles;
/// let flow = Flow::builder(NodeId::new(0), NodeId::new(5))
///     .priority(Priority::new(2))
///     .length_flits(128)
///     .period(Cycles::new(6_000))
///     .build();
/// assert_eq!(flow.deadline(), Cycles::new(6_000)); // D defaults to T
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flow {
    priority: Priority,
    period: Cycles,
    deadline: Cycles,
    jitter: Cycles,
    burst: u32,
    length_flits: u32,
    source: NodeId,
    dest: NodeId,
    name: Option<String>,
}

impl Flow {
    /// Starts building a flow from `source` to `dest`.
    pub fn builder(source: NodeId, dest: NodeId) -> FlowBuilder {
        FlowBuilder {
            flow: Flow {
                priority: Priority::HIGHEST,
                period: Cycles::new(1),
                deadline: Cycles::ZERO, // sentinel: defaults to period
                jitter: Cycles::ZERO,
                burst: 0,
                length_flits: 1,
                source,
                dest,
                name: None,
            },
            deadline_set: false,
        }
    }

    /// Fixed priority Pᵢ (1 = highest).
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Minimum packet inter-release time Tᵢ.
    pub fn period(&self) -> Cycles {
        self.period
    }

    /// Relative deadline Dᵢ (≤ Tᵢ).
    pub fn deadline(&self) -> Cycles {
        self.deadline
    }

    /// Release jitter Jᵢ.
    pub fn jitter(&self) -> Cycles {
        self.jitter
    }

    /// Burst allowance σᵢ: how many packets beyond the periodic pattern the
    /// flow may release at once (0 = the paper's strictly periodic model).
    pub fn burst(&self) -> u32 {
        self.burst
    }

    /// The flow's release model as an arrival curve: a [`LeakyBucket`] over
    /// (Tᵢ, Jᵢ, σᵢ). With σᵢ = 0 this is bit-identical to the paper's
    /// periodic-with-jitter curve ([`crate::arrival::PeriodicWithJitter`]) —
    /// the analyses consume this and nothing else about the release model.
    pub fn arrival_curve(&self) -> LeakyBucket {
        LeakyBucket::new(self.period, self.jitter, self.burst)
    }

    /// Maximum packet length Lᵢ in flits (header included).
    pub fn length_flits(&self) -> u32 {
        self.length_flits
    }

    /// Source node πˢᵢ.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Destination node πᵈᵢ.
    pub fn dest(&self) -> NodeId {
        self.dest
    }

    /// Optional human-readable name (e.g. `"τ1"` or `"front-camera"`).
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    fn validate(&self, id: FlowId) -> Result<(), ModelError> {
        let fail = |reason: &str| {
            Err(ModelError::InvalidFlow {
                flow: id,
                reason: reason.into(),
            })
        };
        if self.period.is_zero() {
            return fail("period must be positive");
        }
        if self.deadline.is_zero() {
            return fail("deadline must be positive");
        }
        if self.deadline > self.period {
            return fail("constrained deadlines required (D ≤ T)");
        }
        if self.length_flits == 0 {
            return fail("packet length must be at least one flit");
        }
        if self.source == self.dest {
            return fail("source and destination must differ");
        }
        Ok(())
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = &self.name {
            write!(f, "{name}")?;
        } else {
            write!(f, "flow")?;
        }
        write!(
            f,
            "({}, L={}, T={}, D={}, J={}",
            self.priority, self.length_flits, self.period, self.deadline, self.jitter,
        )?;
        if self.burst > 0 {
            write!(f, ", σ={}", self.burst)?;
        }
        write!(f, ", {}→{})", self.source, self.dest)
    }
}

/// Builder for [`Flow`] ([C-BUILDER], non-consuming terminal).
#[derive(Debug, Clone)]
pub struct FlowBuilder {
    flow: Flow,
    deadline_set: bool,
}

impl FlowBuilder {
    /// Sets the fixed priority (1 = highest). Defaults to 1.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.flow.priority = priority;
        self
    }

    /// Sets the period Tᵢ. Defaults to 1 cycle.
    pub fn period(mut self, period: Cycles) -> Self {
        self.flow.period = period;
        self
    }

    /// Sets the relative deadline Dᵢ. Defaults to the period.
    pub fn deadline(mut self, deadline: Cycles) -> Self {
        self.flow.deadline = deadline;
        self.deadline_set = true;
        self
    }

    /// Sets the release jitter Jᵢ. Defaults to zero.
    pub fn jitter(mut self, jitter: Cycles) -> Self {
        self.flow.jitter = jitter;
        self
    }

    /// Sets the burst allowance σᵢ (extra packets releasable at once on top
    /// of the periodic pattern). Defaults to zero — the paper's model.
    pub fn burst(mut self, burst: u32) -> Self {
        self.flow.burst = burst;
        self
    }

    /// Sets the maximum packet length Lᵢ in flits. Defaults to 1.
    pub fn length_flits(mut self, flits: u32) -> Self {
        self.flow.length_flits = flits;
        self
    }

    /// Assigns a human-readable name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.flow.name = Some(name.into());
        self
    }

    /// Finalises the flow. Validation happens when the flow is added to a
    /// [`FlowSet`].
    pub fn build(mut self) -> Flow {
        if !self.deadline_set {
            self.flow.deadline = self.flow.period;
        }
        self.flow
    }
}

/// An ordered set Γ of flows with distinct priorities.
///
/// `FlowSet` is the validated collection handed to
/// [`System`](crate::system::System): flows are indexed by [`FlowId`] in
/// insertion order, and [`FlowSet::new`] enforces per-flow sanity (positive
/// period, D ≤ T, non-empty packets, source ≠ destination) plus global
/// priority uniqueness, which the priority-preemptive VC model requires.
///
/// # Examples
///
/// ```
/// # use noc_model::flow::{Flow, FlowSet};
/// # use noc_model::ids::{NodeId, Priority};
/// # use noc_model::time::Cycles;
/// let flows = FlowSet::new(vec![
///     Flow::builder(NodeId::new(0), NodeId::new(1))
///         .priority(Priority::new(1))
///         .period(Cycles::new(100))
///         .build(),
///     Flow::builder(NodeId::new(1), NodeId::new(0))
///         .priority(Priority::new(2))
///         .period(Cycles::new(200))
///         .build(),
/// ])?;
/// assert_eq!(flows.len(), 2);
/// # Ok::<(), noc_model::error::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSet {
    flows: Vec<Flow>,
}

impl FlowSet {
    /// Validates and wraps a list of flows.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFlow`] for malformed flows and
    /// [`ModelError::DuplicatePriority`] when two flows share a priority.
    pub fn new(flows: Vec<Flow>) -> Result<FlowSet, ModelError> {
        for (i, f) in flows.iter().enumerate() {
            f.validate(FlowId::new(i as u32))?;
        }
        let mut by_prio: Vec<(u32, usize)> = flows
            .iter()
            .enumerate()
            .map(|(i, f)| (f.priority.level(), i))
            .collect();
        by_prio.sort_unstable();
        for w in by_prio.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(ModelError::DuplicatePriority {
                    first: FlowId::new(w[0].1 as u32),
                    second: FlowId::new(w[1].1 as u32),
                    level: w[0].0,
                });
            }
        }
        Ok(FlowSet { flows })
    }

    /// Number of flows n = |Γ|.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// `true` if the set contains no flows.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// The flow with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn flow(&self, id: FlowId) -> &Flow {
        &self.flows[id.index()]
    }

    /// Returns the flow for `id`, or `None` if out of bounds.
    pub fn get(&self, id: FlowId) -> Option<&Flow> {
        self.flows.get(id.index())
    }

    /// Iterates over `(FlowId, &Flow)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &Flow)> {
        self.flows
            .iter()
            .enumerate()
            .map(|(i, f)| (FlowId::new(i as u32), f))
    }

    /// All flow identifiers in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        (0..self.flows.len() as u32).map(FlowId::new)
    }

    /// Flow identifiers sorted from highest priority (P=1) to lowest.
    pub fn ids_by_priority(&self) -> Vec<FlowId> {
        let mut ids: Vec<FlowId> = self.ids().collect();
        ids.sort_by_key(|&id| self.flow(id).priority());
        ids
    }

    /// Number of distinct priority levels (equals [`FlowSet::len`] thanks to
    /// uniqueness validation).
    pub fn priority_levels(&self) -> u32 {
        self.flows.len() as u32
    }
}

impl<'a> IntoIterator for &'a FlowSet {
    type Item = (FlowId, &'a Flow);
    type IntoIter = Box<dyn Iterator<Item = (FlowId, &'a Flow)> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(prio: u32, period: u64) -> Flow {
        Flow::builder(NodeId::new(0), NodeId::new(1))
            .priority(Priority::new(prio))
            .period(Cycles::new(period))
            .length_flits(8)
            .build()
    }

    #[test]
    fn builder_defaults() {
        let f = Flow::builder(NodeId::new(2), NodeId::new(3)).build();
        assert_eq!(f.priority(), Priority::HIGHEST);
        assert_eq!(f.period(), Cycles::new(1));
        assert_eq!(f.deadline(), Cycles::new(1));
        assert_eq!(f.jitter(), Cycles::ZERO);
        assert_eq!(f.length_flits(), 1);
        assert_eq!(f.name(), None);
    }

    #[test]
    fn deadline_defaults_to_period_but_can_differ() {
        let f = flow(1, 500);
        assert_eq!(f.deadline(), Cycles::new(500));
        let g = Flow::builder(NodeId::new(0), NodeId::new(1))
            .period(Cycles::new(500))
            .deadline(Cycles::new(300))
            .build();
        assert_eq!(g.deadline(), Cycles::new(300));
    }

    #[test]
    fn flowset_assigns_ids_in_order() {
        let set = FlowSet::new(vec![flow(3, 100), flow(1, 50), flow(2, 75)]).unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.flow(FlowId::new(0)).priority(), Priority::new(3));
        assert_eq!(
            set.ids_by_priority(),
            vec![FlowId::new(1), FlowId::new(2), FlowId::new(0)]
        );
        assert_eq!(set.priority_levels(), 3);
        assert!(set.get(FlowId::new(9)).is_none());
    }

    #[test]
    fn flowset_rejects_duplicate_priority() {
        let err = FlowSet::new(vec![flow(1, 100), flow(1, 200)]).unwrap_err();
        assert!(matches!(
            err,
            ModelError::DuplicatePriority { level: 1, .. }
        ));
    }

    #[test]
    fn flowset_rejects_deadline_greater_than_period() {
        let bad = Flow::builder(NodeId::new(0), NodeId::new(1))
            .period(Cycles::new(100))
            .deadline(Cycles::new(150))
            .build();
        let err = FlowSet::new(vec![bad]).unwrap_err();
        assert!(matches!(err, ModelError::InvalidFlow { .. }));
    }

    #[test]
    fn flowset_rejects_zero_length_packet() {
        let bad = Flow::builder(NodeId::new(0), NodeId::new(1))
            .period(Cycles::new(10))
            .length_flits(0)
            .build();
        assert!(FlowSet::new(vec![bad]).is_err());
    }

    #[test]
    fn flowset_rejects_local_flow() {
        let bad = Flow::builder(NodeId::new(4), NodeId::new(4))
            .period(Cycles::new(10))
            .build();
        assert!(FlowSet::new(vec![bad]).is_err());
    }

    #[test]
    fn flowset_rejects_zero_period() {
        let bad = Flow::builder(NodeId::new(0), NodeId::new(1))
            .period(Cycles::ZERO)
            .build();
        assert!(FlowSet::new(vec![bad]).is_err());
    }

    #[test]
    fn display_includes_parameters() {
        let f = Flow::builder(NodeId::new(0), NodeId::new(1))
            .priority(Priority::new(2))
            .period(Cycles::new(4000))
            .length_flits(198)
            .name("τ2")
            .build();
        let s = f.to_string();
        assert!(s.contains("τ2"));
        assert!(s.contains("L=198"));
        assert!(s.contains("P2"));
    }

    #[test]
    fn burst_defaults_to_zero_and_round_trips() {
        let f = flow(1, 100);
        assert_eq!(f.burst(), 0);
        let g = Flow::builder(NodeId::new(0), NodeId::new(1))
            .period(Cycles::new(100))
            .burst(3)
            .build();
        assert_eq!(g.burst(), 3);
        assert!(g.to_string().contains("σ=3"));
        assert!(FlowSet::new(vec![g]).is_ok());
    }

    #[test]
    fn arrival_curve_reflects_flow_parameters() {
        use crate::arrival::ArrivalCurve;
        let f = Flow::builder(NodeId::new(0), NodeId::new(1))
            .period(Cycles::new(200))
            .jitter(Cycles::new(20))
            .burst(2)
            .build();
        let curve = f.arrival_curve();
        assert_eq!(curve.period(), Cycles::new(200));
        assert_eq!(curve.jitter(), Cycles::new(20));
        assert_eq!(curve.burst(), 2);
        // ⌈(181 + 20)/200⌉ + 2 = 2 + 2.
        assert_eq!(curve.max_arrivals(Cycles::new(181)), 4);
    }

    #[test]
    fn flowset_iteration() {
        let set = FlowSet::new(vec![flow(1, 100), flow(2, 200)]).unwrap();
        let collected: Vec<u32> = (&set)
            .into_iter()
            .map(|(_, f)| f.priority().level())
            .collect();
        assert_eq!(collected, vec![1, 2]);
    }
}
