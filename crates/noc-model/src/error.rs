//! Error types for model construction and validation.

use std::error::Error;
use std::fmt;

use crate::ids::{FlowId, NodeId};

/// Errors raised while constructing or validating model entities.
///
/// All validation in this crate is eager ([C-VALIDATE]): a successfully
/// constructed [`System`](crate::system::System) satisfies every assumption
/// the analyses in `noc-analysis` rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// The same directed link was added to a topology twice.
    DuplicateLink {
        /// Source endpoint (formatted).
        source: String,
        /// Target endpoint (formatted).
        target: String,
    },
    /// A route could not be constructed between two nodes.
    NoRoute {
        /// Source node.
        source: NodeId,
        /// Destination node.
        dest: NodeId,
        /// Why the routing function failed.
        reason: String,
    },
    /// A route is not a connected chain of links from source to destination.
    BrokenRoute {
        /// Description of the discontinuity.
        detail: String,
    },
    /// A flow is malformed (zero period, deadline > period, zero length, …).
    InvalidFlow {
        /// The offending flow.
        flow: FlowId,
        /// Why it was rejected.
        reason: String,
    },
    /// Two flows share a priority level; the priority-preemptive VC model
    /// requires distinct priorities.
    DuplicatePriority {
        /// First flow with the shared priority.
        first: FlowId,
        /// Second flow with the shared priority.
        second: FlowId,
        /// The shared priority level.
        level: u32,
    },
    /// The configured number of virtual channels cannot distinguish all
    /// priority levels in the flow set.
    InsufficientVirtualChannels {
        /// Virtual channels provided by each router.
        available: u32,
        /// Distinct priority levels required by the flow set.
        required: u32,
    },
    /// The shared links of two routes do not form one contiguous segment
    /// traversed in the same order by both flows — the paper's contention
    /// domain assumption (§II) is violated.
    NonContiguousContentionDomain {
        /// First flow of the pair.
        first: FlowId,
        /// Second flow of the pair.
        second: FlowId,
    },
    /// A flow references a node that does not exist in the topology.
    UnknownNode {
        /// The offending node.
        node: NodeId,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateLink { source, target } => {
                write!(f, "duplicate link {source}→{target}")
            }
            ModelError::NoRoute {
                source,
                dest,
                reason,
            } => {
                write!(f, "no route from {source} to {dest}: {reason}")
            }
            ModelError::BrokenRoute { detail } => write!(f, "broken route: {detail}"),
            ModelError::InvalidFlow { flow, reason } => {
                write!(f, "invalid flow {flow}: {reason}")
            }
            ModelError::DuplicatePriority {
                first,
                second,
                level,
            } => write!(f, "flows {first} and {second} share priority level {level}"),
            ModelError::InsufficientVirtualChannels {
                available,
                required,
            } => write!(
                f,
                "routers provide {available} virtual channels but the flow set \
                 has {required} distinct priority levels"
            ),
            ModelError::NonContiguousContentionDomain { first, second } => write!(
                f,
                "contention domain of flows {first} and {second} is not a \
                 contiguous, identically-ordered segment of links"
            ),
            ModelError::UnknownNode { node } => {
                write!(f, "node {node} does not exist in the topology")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = ModelError::InsufficientVirtualChannels {
            available: 2,
            required: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("2 virtual channels"));
        assert!(msg.contains("5 distinct priority levels"));

        let e = ModelError::DuplicatePriority {
            first: FlowId::new(0),
            second: FlowId::new(3),
            level: 4,
        };
        assert_eq!(e.to_string(), "flows f0 and f3 share priority level 4");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
