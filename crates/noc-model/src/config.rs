//! Network configuration parameters: the homogeneous [`NocConfig`] and the
//! per-router [`BufferMap`] generalisation.

use std::fmt;

use crate::ids::RouterId;
use crate::time::Cycles;

/// Architectural parameters shared by every router of a homogeneous network:
/// the paper's `buf(Ξ)`, `vc(Ξ)`, `linkl(Ξ)` and `routl(Ξ)`.
///
/// # Examples
///
/// ```
/// # use noc_model::config::NocConfig;
/// # use noc_model::time::Cycles;
/// // The didactic example of the paper: routl = 0, linkl = 1, 2-flit buffers.
/// let cfg = NocConfig::builder()
///     .buffer_depth(2)
///     .link_latency(Cycles::new(1))
///     .routing_latency(Cycles::ZERO)
///     .build();
/// assert_eq!(cfg.buffer_depth(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NocConfig {
    buffer_depth: u32,
    link_latency: Cycles,
    routing_latency: Cycles,
    virtual_channels: Option<u32>,
}

impl NocConfig {
    /// Starts building a configuration. Defaults: 2-flit buffers,
    /// `linkl = 1`, `routl = 0`, virtual channels sized automatically to the
    /// number of priority levels in the flow set.
    pub fn builder() -> NocConfigBuilder {
        NocConfigBuilder {
            config: NocConfig::default(),
        }
    }

    /// FIFO buffer depth per virtual channel, in flits — the paper's
    /// `buf(Ξ)`.
    ///
    /// Depths of **at least 2** keep the cycle-accurate simulator inside
    /// Equation 1's streaming assumption; see
    /// [`NocConfigBuilder::buffer_depth`] for the fidelity precondition.
    pub fn buffer_depth(&self) -> u32 {
        self.buffer_depth
    }

    /// Time for a router to transmit one flit over a link — `linkl(Ξ)`.
    pub fn link_latency(&self) -> Cycles {
        self.link_latency
    }

    /// Time to route a header flit at a router — `routl(Ξ)`.
    pub fn routing_latency(&self) -> Cycles {
        self.routing_latency
    }

    /// Explicitly configured number of virtual channels per router
    /// (`vc(Ξ)`), or `None` when sized automatically.
    pub fn virtual_channels(&self) -> Option<u32> {
        self.virtual_channels
    }

    /// Returns a copy of this configuration with a different buffer depth —
    /// the knob the IBN analysis is sensitive to.
    #[must_use]
    pub fn with_buffer_depth(mut self, depth: u32) -> NocConfig {
        self.buffer_depth = depth;
        self
    }

    /// Returns a copy with the virtual-channel count replaced; `None`
    /// restores automatic sizing to the number of priority levels.
    #[must_use]
    pub fn with_virtual_channels(mut self, vcs: Option<u32>) -> NocConfig {
        self.virtual_channels = vcs;
        self
    }
}

impl Default for NocConfig {
    /// A minimal full-throughput configuration: 2-flit buffers, single-cycle
    /// links, zero routing latency, auto-sized virtual channels.
    fn default() -> Self {
        NocConfig {
            buffer_depth: 2,
            link_latency: Cycles::ONE,
            routing_latency: Cycles::ZERO,
            virtual_channels: None,
        }
    }
}

impl fmt::Display for NocConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buf={} linkl={} routl={} vc={}",
            self.buffer_depth,
            self.link_latency,
            self.routing_latency,
            match self.virtual_channels {
                Some(v) => v.to_string(),
                None => "auto".into(),
            }
        )
    }
}

/// Per-router virtual-channel buffer depths: the heterogeneous
/// generalisation of the scalar `buf(Ξ)` that the paper's per-router
/// `buf(ξᵢ)` notation (§II) allows, following the per-router/per-link
/// buffer model of Giroudot & Mifdaoui (arXiv:1911.02430).
///
/// A map is a *default depth* plus sparse per-router overrides.
/// [`BufferMap::uniform`] builds the degenerate map every pre-existing
/// call site uses — one line, and **bit-identical** to the scalar
/// `NocConfig::buffer_depth` path everywhere (pinned by the workspace's
/// degenerate-equivalence tests).
///
/// # Examples
///
/// ```
/// # use noc_model::config::BufferMap;
/// # use noc_model::ids::RouterId;
/// let map = BufferMap::uniform(4).with_router_depth(RouterId::new(2), 16);
/// assert_eq!(map.depth_at(RouterId::new(0)), 4);
/// assert_eq!(map.depth_at(RouterId::new(2)), 16);
/// assert!(!map.is_uniform());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BufferMap {
    default_depth: u32,
    /// Sparse per-router overrides, indexed by router; indices beyond the
    /// vector's length mean "no override".
    overrides: Vec<Option<u32>>,
}

impl BufferMap {
    /// A map where every router has the same `depth` — the scalar
    /// `buf(Ξ)` configuration as a map.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero: wormhole switching needs at least one
    /// flit of buffering per VC.
    pub fn uniform(depth: u32) -> BufferMap {
        assert!(depth >= 1, "buffer depth must be at least one flit");
        BufferMap {
            default_depth: depth,
            overrides: Vec::new(),
        }
    }

    /// Returns a copy with `router`'s depth overridden (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn with_router_depth(mut self, router: RouterId, depth: u32) -> BufferMap {
        self.set_router_depth(router, depth);
        self
    }

    /// Overrides the depth of one router in place.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn set_router_depth(&mut self, router: RouterId, depth: u32) {
        assert!(depth >= 1, "buffer depth must be at least one flit");
        if self.overrides.len() <= router.index() {
            self.overrides.resize(router.index() + 1, None);
        }
        self.overrides[router.index()] = Some(depth);
    }

    /// Removes the override of one router, restoring the default depth.
    pub fn clear_router_depth(&mut self, router: RouterId) {
        if let Some(slot) = self.overrides.get_mut(router.index()) {
            *slot = None;
        }
    }

    /// The depth routers without an override use.
    pub fn default_depth(&self) -> u32 {
        self.default_depth
    }

    /// The per-VC buffer depth at `router` — the override if set, the
    /// default otherwise. Total over all router indices.
    pub fn depth_at(&self, router: RouterId) -> u32 {
        self.overrides
            .get(router.index())
            .copied()
            .flatten()
            .unwrap_or(self.default_depth)
    }

    /// The explicit override at `router`, if any.
    pub fn override_at(&self, router: RouterId) -> Option<u32> {
        self.overrides.get(router.index()).copied().flatten()
    }

    /// `true` when every router resolves to the default depth (no override,
    /// or an override equal to it) — the degenerate scalar configuration.
    pub fn is_uniform(&self) -> bool {
        self.overrides
            .iter()
            .all(|o| o.is_none() || *o == Some(self.default_depth))
    }

    /// The largest router index with an explicit override, plus one — the
    /// router count a consumer must validate against its topology.
    pub fn override_span(&self) -> usize {
        self.overrides
            .iter()
            .rposition(Option::is_some)
            .map_or(0, |i| i + 1)
    }
}

impl fmt::Display for BufferMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf[default={}", self.default_depth)?;
        for (i, o) in self.overrides.iter().enumerate() {
            if let Some(d) = o {
                write!(f, ", ξ{i}={d}")?;
            }
        }
        write!(f, "]")
    }
}

/// Builder for [`NocConfig`] ([C-BUILDER]).
#[derive(Debug, Clone)]
pub struct NocConfigBuilder {
    config: NocConfig,
}

impl NocConfigBuilder {
    /// Sets the per-VC FIFO depth in flits (`buf(Ξ)`).
    ///
    /// # Simulator-fidelity precondition: `buf(Ξ) ≥ 2`
    ///
    /// The zero-load latency of Equation 1 assumes a packet's flits stream
    /// through each router back to back. With a **1-flit** buffer the
    /// credit-based flow control of the reference router (Figure 1) cannot
    /// stream: the upstream router must wait a full credit round-trip
    /// before sending the next flit, so even an uncontended packet incurs
    /// stall bubbles beyond Equation 1. Consequences:
    ///
    /// * the **analyses** stay well-defined and safe *with respect to the
    ///   modelled router* at `buf(Ξ) = 1` (Equation 6 simply charges one
    ///   flit per contention-domain link), but
    /// * the **cycle-accurate simulator** (`noc-sim`) can observe latencies
    ///   above `R^IBN` at depth 1, because its credit stalls are real
    ///   hardware behaviour Equation 1 does not model. The end-to-end
    ///   soundness chain `R^sim ≤ R^IBN ≤ R^XLWX` is therefore only
    ///   asserted for `buf(Ξ) ≥ 2` (`tests/soundness_invariant.rs` pins
    ///   this boundary; depth 1 is exercised analytically only).
    ///
    /// Use depth 1 for analytical what-if studies; use ≥ 2 whenever
    /// simulation results are compared against bounds.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero: wormhole switching needs at least one flit
    /// of buffering per VC.
    pub fn buffer_depth(mut self, depth: u32) -> Self {
        assert!(depth >= 1, "buffer depth must be at least one flit");
        self.config.buffer_depth = depth;
        self
    }

    /// Sets the link traversal latency (`linkl(Ξ)`).
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero: flits cannot cross links instantly.
    pub fn link_latency(mut self, latency: Cycles) -> Self {
        assert!(!latency.is_zero(), "link latency must be positive");
        self.config.link_latency = latency;
        self
    }

    /// Sets the header routing latency (`routl(Ξ)`); zero is allowed and is
    /// what the paper's didactic example uses.
    pub fn routing_latency(mut self, latency: Cycles) -> Self {
        self.config.routing_latency = latency;
        self
    }

    /// Fixes the number of virtual channels (`vc(Ξ)`) instead of sizing it
    /// automatically from the flow set.
    pub fn virtual_channels(mut self, vcs: u32) -> Self {
        self.config.virtual_channels = Some(vcs);
        self
    }

    /// Finalises the configuration.
    pub fn build(self) -> NocConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_documentation() {
        let cfg = NocConfig::default();
        assert_eq!(cfg.buffer_depth(), 2);
        assert_eq!(cfg.link_latency(), Cycles::ONE);
        assert_eq!(cfg.routing_latency(), Cycles::ZERO);
        assert_eq!(cfg.virtual_channels(), None);
    }

    #[test]
    fn builder_sets_all_fields() {
        let cfg = NocConfig::builder()
            .buffer_depth(10)
            .link_latency(Cycles::new(2))
            .routing_latency(Cycles::new(1))
            .virtual_channels(8)
            .build();
        assert_eq!(cfg.buffer_depth(), 10);
        assert_eq!(cfg.link_latency(), Cycles::new(2));
        assert_eq!(cfg.routing_latency(), Cycles::new(1));
        assert_eq!(cfg.virtual_channels(), Some(8));
    }

    #[test]
    fn with_buffer_depth_changes_only_depth() {
        let base = NocConfig::builder().buffer_depth(2).build();
        let big = base.with_buffer_depth(100);
        assert_eq!(big.buffer_depth(), 100);
        assert_eq!(big.link_latency(), base.link_latency());
    }

    #[test]
    #[should_panic(expected = "buffer depth")]
    fn zero_buffer_rejected() {
        let _ = NocConfig::builder().buffer_depth(0);
    }

    #[test]
    #[should_panic(expected = "link latency")]
    fn zero_link_latency_rejected() {
        let _ = NocConfig::builder().link_latency(Cycles::ZERO);
    }

    #[test]
    fn display_mentions_every_field() {
        let s = NocConfig::default().to_string();
        assert!(s.contains("buf=2"));
        assert!(s.contains("vc=auto"));
    }

    #[test]
    fn uniform_map_resolves_default_everywhere() {
        let map = BufferMap::uniform(4);
        assert!(map.is_uniform());
        assert_eq!(map.default_depth(), 4);
        assert_eq!(map.override_span(), 0);
        for r in 0..64 {
            assert_eq!(map.depth_at(RouterId::new(r)), 4);
            assert_eq!(map.override_at(RouterId::new(r)), None);
        }
    }

    #[test]
    fn overrides_set_clear_and_span() {
        let mut map = BufferMap::uniform(2).with_router_depth(RouterId::new(5), 8);
        assert!(!map.is_uniform());
        assert_eq!(map.depth_at(RouterId::new(5)), 8);
        assert_eq!(map.override_at(RouterId::new(5)), Some(8));
        assert_eq!(map.override_span(), 6);
        map.set_router_depth(RouterId::new(1), 16);
        assert_eq!(map.depth_at(RouterId::new(1)), 16);
        map.clear_router_depth(RouterId::new(5));
        assert_eq!(map.depth_at(RouterId::new(5)), 2);
        assert_eq!(map.override_span(), 2);
    }

    #[test]
    fn override_equal_to_default_stays_uniform() {
        let map = BufferMap::uniform(4).with_router_depth(RouterId::new(3), 4);
        assert!(map.is_uniform());
        assert_eq!(map.depth_at(RouterId::new(3)), 4);
    }

    #[test]
    #[should_panic(expected = "buffer depth")]
    fn zero_depth_map_rejected() {
        let _ = BufferMap::uniform(0);
    }

    #[test]
    #[should_panic(expected = "buffer depth")]
    fn zero_depth_override_rejected() {
        let _ = BufferMap::uniform(2).with_router_depth(RouterId::new(0), 0);
    }

    #[test]
    fn buffer_map_display_lists_overrides() {
        let map = BufferMap::uniform(2).with_router_depth(RouterId::new(3), 9);
        let s = map.to_string();
        assert!(s.contains("default=2"));
        assert!(s.contains("ξ3=9"));
    }
}
