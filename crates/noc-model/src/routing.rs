//! Deterministic routing functions.
//!
//! The analyses assume deterministic routing with contiguous contention
//! domains; [`XyRouting`] (dimension-order X-then-Y) is the algorithm used by
//! the paper's evaluation, and [`TableRouting`] supports hand-crafted routes
//! such as the didactic example of Figure 3.

use std::collections::HashMap;

use crate::error::ModelError;
use crate::ids::NodeId;
use crate::route::Route;
use crate::topology::{Endpoint, Topology};

/// A deterministic routing function: maps a source/destination node pair to
/// the unique route between them.
///
/// The trait is object-safe ([C-OBJECT]) so heterogeneous routing setups can
/// be passed as `&dyn RoutingAlgorithm`.
pub trait RoutingAlgorithm {
    /// Computes the route from `source` to `dest`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoRoute`] when the algorithm cannot route the
    /// pair on `topology` (e.g. XY routing on a non-mesh), and
    /// [`ModelError::UnknownNode`] for out-of-range nodes.
    fn route(&self, topology: &Topology, source: NodeId, dest: NodeId)
        -> Result<Route, ModelError>;
}

/// Dimension order of a deterministic mesh routing function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DimensionOrder {
    XFirst,
    YFirst,
}

fn dimension_order_route(
    topology: &Topology,
    source: NodeId,
    dest: NodeId,
    order: DimensionOrder,
) -> Result<Route, ModelError> {
    check_node(topology, source)?;
    check_node(topology, dest)?;
    let no_route = |reason: &str| ModelError::NoRoute {
        source,
        dest,
        reason: reason.into(),
    };
    if source == dest {
        return Err(no_route("source and destination are the same node"));
    }
    let src_router = topology.router_of(source);
    let dst_router = topology.router_of(dest);
    let src = topology
        .coord(src_router)
        .ok_or_else(|| no_route("source router has no mesh coordinate"))?;
    let dst = topology
        .coord(dst_router)
        .ok_or_else(|| no_route("destination router has no mesh coordinate"))?;

    let mut cur = src;
    let mut waypoints: Vec<(u16, u16)> = Vec::new();
    let walk_x = |cur: &mut crate::topology::Coord, waypoints: &mut Vec<(u16, u16)>| {
        while cur.x != dst.x {
            cur.x = if dst.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            waypoints.push((cur.x, cur.y));
        }
    };
    let walk_y = |cur: &mut crate::topology::Coord, waypoints: &mut Vec<(u16, u16)>| {
        while cur.y != dst.y {
            cur.y = if dst.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            waypoints.push((cur.x, cur.y));
        }
    };
    match order {
        DimensionOrder::XFirst => {
            walk_x(&mut cur, &mut waypoints);
            walk_y(&mut cur, &mut waypoints);
        }
        DimensionOrder::YFirst => {
            walk_y(&mut cur, &mut waypoints);
            walk_x(&mut cur, &mut waypoints);
        }
    }
    let mut links = vec![topology.injection_link(source)];
    let mut at = src;
    for (x, y) in waypoints {
        let from = topology
            .router_at(at.x, at.y)
            .ok_or_else(|| no_route("current coordinate outside mesh"))?;
        let to = topology
            .router_at(x, y)
            .ok_or_else(|| no_route("next coordinate outside mesh"))?;
        let link = topology
            .find_link(Endpoint::Router(from), Endpoint::Router(to))
            .ok_or_else(|| no_route("missing mesh link"))?;
        links.push(link);
        at.x = x;
        at.y = y;
    }
    links.push(topology.ejection_link(dest));
    Route::new(topology, links)
}

/// Dimension-order XY routing on a 2D mesh: packets travel fully along the X
/// dimension, then along Y. Deadlock-free and deterministic; produces
/// contiguous contention domains (the paper's standing assumption).
///
/// # Examples
///
/// ```
/// # use noc_model::topology::Topology;
/// # use noc_model::routing::{RoutingAlgorithm, XyRouting};
/// # use noc_model::ids::NodeId;
/// let mesh = Topology::mesh(3, 3);
/// // node 0 is at (0,0), node 8 at (2,2): 2 hops east, 2 hops north,
/// // plus the injection and ejection links → |route| = 6.
/// let route = XyRouting.route(&mesh, NodeId::new(0), NodeId::new(8)).unwrap();
/// assert_eq!(route.len(), 6);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XyRouting;

impl RoutingAlgorithm for XyRouting {
    fn route(
        &self,
        topology: &Topology,
        source: NodeId,
        dest: NodeId,
    ) -> Result<Route, ModelError> {
        dimension_order_route(topology, source, dest, DimensionOrder::XFirst)
    }
}

/// Dimension-order YX routing: the dual of [`XyRouting`] (Y dimension
/// first). Also deadlock-free with contiguous contention domains; useful
/// for studying how routing order shifts contention.
///
/// # Examples
///
/// ```
/// # use noc_model::topology::Topology;
/// # use noc_model::routing::{RoutingAlgorithm, XyRouting, YxRouting};
/// # use noc_model::ids::NodeId;
/// let mesh = Topology::mesh(3, 3);
/// let xy = XyRouting.route(&mesh, NodeId::new(0), NodeId::new(8)).unwrap();
/// let yx = YxRouting.route(&mesh, NodeId::new(0), NodeId::new(8)).unwrap();
/// assert_eq!(xy.len(), yx.len());     // same hop count …
/// assert_ne!(xy.links(), yx.links()); // … different corner
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct YxRouting;

impl RoutingAlgorithm for YxRouting {
    fn route(
        &self,
        topology: &Topology,
        source: NodeId,
        dest: NodeId,
    ) -> Result<Route, ModelError> {
        dimension_order_route(topology, source, dest, DimensionOrder::YFirst)
    }
}

/// Explicit route tables for custom topologies.
///
/// Routes are registered per `(source, dest)` pair; lookups for unregistered
/// pairs fail with [`ModelError::NoRoute`].
///
/// # Examples
///
/// ```
/// # use noc_model::topology::TopologyBuilder;
/// # use noc_model::routing::{RoutingAlgorithm, TableRouting};
/// # use noc_model::route::Route;
/// let mut b = TopologyBuilder::new();
/// let r0 = b.add_router();
/// let r1 = b.add_router();
/// let a = b.add_node(r0);
/// let z = b.add_node(r1);
/// let (l01, _) = b.add_duplex_router_link(r0, r1);
/// let topo = b.build()?;
///
/// let mut table = TableRouting::new();
/// let route = Route::new(&topo, vec![topo.injection_link(a), l01, topo.ejection_link(z)])?;
/// table.insert(a, z, route);
/// assert_eq!(table.route(&topo, a, z)?.len(), 3);
/// # Ok::<(), noc_model::error::ModelError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TableRouting {
    routes: HashMap<(NodeId, NodeId), Route>,
}

impl TableRouting {
    /// Creates an empty route table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the route for a node pair, returning the
    /// previously registered route if any.
    pub fn insert(&mut self, source: NodeId, dest: NodeId, route: Route) -> Option<Route> {
        self.routes.insert((source, dest), route)
    }

    /// Number of registered routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// `true` if no routes are registered.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

impl RoutingAlgorithm for TableRouting {
    fn route(
        &self,
        topology: &Topology,
        source: NodeId,
        dest: NodeId,
    ) -> Result<Route, ModelError> {
        check_node(topology, source)?;
        check_node(topology, dest)?;
        self.routes
            .get(&(source, dest))
            .cloned()
            .ok_or_else(|| ModelError::NoRoute {
                source,
                dest,
                reason: "no entry in route table".into(),
            })
    }
}

fn check_node(topology: &Topology, node: NodeId) -> Result<(), ModelError> {
    if node.index() >= topology.node_count() {
        return Err(ModelError::UnknownNode { node });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn mesh_route(w: u16, h: u16, from: (u16, u16), to: (u16, u16)) -> Route {
        let t = Topology::mesh(w, h);
        let src = NodeId::new(u32::from(from.0) + u32::from(from.1) * u32::from(w));
        let dst = NodeId::new(u32::from(to.0) + u32::from(to.1) * u32::from(w));
        XyRouting.route(&t, src, dst).unwrap()
    }

    #[test]
    fn xy_route_length_is_manhattan_plus_one() {
        // |route| = manhattan distance + injection + ejection − … :
        // hops = |dx| + |dy|, links = hops + 2 node links → manhattan + 2,
        // but hop links = manhattan, so |route| = manhattan + 2.
        for (from, to, manhattan) in [
            ((0, 0), (3, 0), 3u16),
            ((0, 0), (0, 3), 3),
            ((0, 0), (3, 3), 6),
            ((3, 3), (0, 0), 6),
            ((1, 2), (2, 0), 3),
        ] {
            let r = mesh_route(4, 4, from, to);
            assert_eq!(r.len(), usize::from(manhattan) + 2, "{from:?}→{to:?}");
        }
    }

    #[test]
    fn xy_goes_x_first() {
        let t = Topology::mesh(3, 3);
        let r = XyRouting.route(&t, NodeId::new(0), NodeId::new(8)).unwrap();
        // route: n0→r0, r0→r1, r1→r2, r2→r5, r5→r8, r8→n8
        let kinds: Vec<String> = r.iter().map(|&l| t.link(l).to_string()).collect();
        assert_eq!(
            kinds,
            vec!["n0→r0", "r0→r1", "r1→r2", "r2→r5", "r5→r8", "r8→n8"]
        );
    }

    #[test]
    fn xy_westward_and_southward() {
        let t = Topology::mesh(3, 3);
        let r = XyRouting.route(&t, NodeId::new(8), NodeId::new(0)).unwrap();
        let kinds: Vec<String> = r.iter().map(|&l| t.link(l).to_string()).collect();
        assert_eq!(
            kinds,
            vec!["n8→r8", "r8→r7", "r7→r6", "r6→r3", "r3→r0", "r0→n0"]
        );
    }

    #[test]
    fn xy_rejects_self_route() {
        let t = Topology::mesh(2, 2);
        assert!(matches!(
            XyRouting.route(&t, NodeId::new(1), NodeId::new(1)),
            Err(ModelError::NoRoute { .. })
        ));
    }

    #[test]
    fn xy_rejects_unknown_node() {
        let t = Topology::mesh(2, 2);
        assert!(matches!(
            XyRouting.route(&t, NodeId::new(0), NodeId::new(99)),
            Err(ModelError::UnknownNode { .. })
        ));
    }

    #[test]
    fn xy_requires_mesh_coordinates() {
        let mut b = crate::topology::TopologyBuilder::new();
        let r0 = b.add_router();
        let r1 = b.add_router();
        let a = b.add_node(r0);
        let z = b.add_node(r1);
        b.add_duplex_router_link(r0, r1);
        let t = b.build().unwrap();
        assert!(matches!(
            XyRouting.route(&t, a, z),
            Err(ModelError::NoRoute { .. })
        ));
    }

    #[test]
    fn yx_goes_y_first() {
        let t = Topology::mesh(3, 3);
        let r = YxRouting.route(&t, NodeId::new(0), NodeId::new(8)).unwrap();
        let kinds: Vec<String> = r.iter().map(|&l| t.link(l).to_string()).collect();
        assert_eq!(
            kinds,
            vec!["n0→r0", "r0→r3", "r3→r6", "r6→r7", "r7→r8", "r8→n8"]
        );
    }

    #[test]
    fn xy_and_yx_agree_on_straight_lines() {
        let t = Topology::mesh(4, 4);
        // Same row: only X movement → identical routes.
        let xy = XyRouting.route(&t, NodeId::new(0), NodeId::new(3)).unwrap();
        let yx = YxRouting.route(&t, NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(xy, yx);
        // Same column: only Y movement → identical routes.
        let xy = XyRouting
            .route(&t, NodeId::new(1), NodeId::new(13))
            .unwrap();
        let yx = YxRouting
            .route(&t, NodeId::new(1), NodeId::new(13))
            .unwrap();
        assert_eq!(xy, yx);
    }

    #[test]
    fn yx_rejects_self_route() {
        let t = Topology::mesh(2, 2);
        assert!(matches!(
            YxRouting.route(&t, NodeId::new(1), NodeId::new(1)),
            Err(ModelError::NoRoute { .. })
        ));
    }

    #[test]
    fn table_routing_roundtrip_and_missing() {
        let t = Topology::mesh(2, 1);
        let a = NodeId::new(0);
        let z = NodeId::new(1);
        let xy = XyRouting.route(&t, a, z).unwrap();
        let mut table = TableRouting::new();
        assert!(table.is_empty());
        table.insert(a, z, xy.clone());
        assert_eq!(table.len(), 1);
        assert_eq!(table.route(&t, a, z).unwrap(), xy);
        assert!(matches!(
            table.route(&t, z, a),
            Err(ModelError::NoRoute { .. })
        ));
    }
}
