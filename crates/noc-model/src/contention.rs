//! Contention domains and interference sets (§II–III of the paper).
//!
//! The *contention domain* `cd(i,j)` of two flows is the ordered set of
//! links their routes share. From it the paper derives, for a flow τᵢ:
//!
//! * the **direct interference set** `S^D_i` — higher-priority flows sharing
//!   at least one link with τᵢ;
//! * the **indirect interference set** `S^I_i` — flows not in `S^D_i` that
//!   interfere with a member of `S^D_i`;
//! * per direct interferer τⱼ, the partition of `S^I_i ∩ S^D_j` into the
//!   **upstream** set `S^upj_Ii` (τₖ hits τⱼ before τⱼ's contention with τᵢ)
//!   and the **downstream** set `S^downj_Ii` (τₖ hits τⱼ after it), by
//!   comparing link order along `routeⱼ`.
//!
//! [`InterferenceGraph`] precomputes all of this for a
//! [`System`] and is the single entry point used by
//! every analysis in `noc-analysis`. Construction only examines flow pairs
//! that actually share a link (via a link-overlap table), so it scales with
//! real contention rather than with n²; `noc-analysis` wraps the graph in
//! its shared `AnalysisContext` so one construction serves every analysis
//! and every compatible system variant.
//!
//! [`System`]: crate::system::System

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::error::ModelError;
use crate::ids::{FlowId, LinkId};
use crate::route::Route;
use crate::system::System;

/// The contention domain of an ordered pair of flows (i, j): the links
/// shared by both routes, with their positions on each route.
///
/// Validated to be contiguous on both routes and traversed in the same
/// order by both flows — the standing assumption of the paper (§II), always
/// satisfied by dimension-order routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentionDomain {
    links: Vec<LinkId>,
    span_i: (usize, usize),
    span_j: (usize, usize),
}

impl ContentionDomain {
    /// Computes `cd(i,j)` from two routes.
    ///
    /// Returns `Ok(None)` when the routes are link-disjoint.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonContiguousContentionDomain`] (tagged with
    /// the given flow ids) if the shared links do not form one contiguous,
    /// identically-ordered segment on both routes.
    pub fn compute(
        i: FlowId,
        route_i: &Route,
        j: FlowId,
        route_j: &Route,
    ) -> Result<Option<ContentionDomain>, ModelError> {
        let positions_j: HashMap<LinkId, usize> = route_j
            .iter()
            .enumerate()
            .map(|(pos, &l)| (l, pos))
            .collect();
        let mut shared: Vec<(usize, usize, LinkId)> = Vec::new(); // (pos_i, pos_j, link)
        for (pos_i, &link) in route_i.iter().enumerate() {
            if let Some(&pos_j) = positions_j.get(&link) {
                shared.push((pos_i, pos_j, link));
            }
        }
        if shared.is_empty() {
            return Ok(None);
        }
        let err = || ModelError::NonContiguousContentionDomain {
            first: i,
            second: j,
        };
        // `shared` is ordered by position in route_i. Contiguity on route_i:
        for w in shared.windows(2) {
            if w[1].0 != w[0].0 + 1 {
                return Err(err());
            }
            // Same traversal order on route_j, and contiguity there too:
            if w[1].1 != w[0].1 + 1 {
                return Err(err());
            }
        }
        let span_i = (shared[0].0, shared[shared.len() - 1].0);
        let span_j = (shared[0].1, shared[shared.len() - 1].1);
        let links = shared.into_iter().map(|(_, _, l)| l).collect();
        Ok(Some(ContentionDomain {
            links,
            span_i,
            span_j,
        }))
    }

    /// The shared links in traversal order — `|cd(i,j)|` is
    /// [`ContentionDomain::len`].
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Number of shared links, the `|cd_ij|` of Equation 6.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Always `false`: link-disjoint pairs yield `None` instead.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// 0-based position of the first shared link on flow i's route.
    pub fn first_in_i(&self) -> usize {
        self.span_i.0
    }

    /// 0-based position of the last shared link on flow i's route.
    pub fn last_in_i(&self) -> usize {
        self.span_i.1
    }

    /// 0-based position of the first shared link on flow j's route — the
    /// paper's `order(first(cd_ij), route_j)` minus one.
    pub fn first_in_j(&self) -> usize {
        self.span_j.0
    }

    /// 0-based position of the last shared link on flow j's route.
    pub fn last_in_j(&self) -> usize {
        self.span_j.1
    }

    /// The same domain viewed from the opposite flow order (swaps the two
    /// position spans).
    #[must_use]
    pub fn swapped(&self) -> ContentionDomain {
        ContentionDomain {
            links: self.links.clone(),
            span_i: self.span_j,
            span_j: self.span_i,
        }
    }
}

/// The partition of `S^I_i ∩ S^D_j` into upstream and downstream indirect
/// interferers, relative to the contention domain `cd(i,j)` on `routeⱼ`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpDownPartition {
    /// `S^upj_Ii`: flows whose contention with τⱼ ends before `cd(i,j)`
    /// begins (on `routeⱼ`).
    pub upstream: Vec<FlowId>,
    /// `S^downj_Ii`: flows whose contention with τⱼ begins after `cd(i,j)`
    /// ends (on `routeⱼ`).
    pub downstream: Vec<FlowId>,
}

/// Precomputed interference structure of a [`System`]: contention domains
/// for every interfering pair plus the direct/indirect sets of every flow.
///
/// # Examples
///
/// ```
/// # use noc_model::prelude::*;
/// # use noc_model::contention::InterferenceGraph;
/// let topology = Topology::mesh(4, 1);
/// let flows = FlowSet::new(vec![
///     Flow::builder(NodeId::new(0), NodeId::new(3))
///         .priority(Priority::new(1))
///         .period(Cycles::new(1_000))
///         .build(),
///     Flow::builder(NodeId::new(0), NodeId::new(3))
///         .priority(Priority::new(2))
///         .period(Cycles::new(2_000))
///         .build(),
/// ])?;
/// let system = System::new(topology, NocConfig::default(), flows, &XyRouting)?;
/// let graph = InterferenceGraph::new(&system)?;
/// // the lower-priority flow is directly interfered with by the other:
/// assert_eq!(graph.direct_set(FlowId::new(1)), &[FlowId::new(0)]);
/// assert!(graph.direct_set(FlowId::new(0)).is_empty());
/// # Ok::<(), noc_model::error::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceGraph {
    direct: Vec<Vec<FlowId>>,
    indirect: Vec<Vec<FlowId>>,
    domains: HashMap<(FlowId, FlowId), ContentionDomain>,
}

impl InterferenceGraph {
    /// Builds the interference graph of `system`.
    ///
    /// Contention domains are only computed for flow pairs that share at
    /// least one link, found through a link-overlap table (link → flows
    /// routed over it) instead of the full O(n²) route cross-product. On
    /// sparse large systems (e.g. a 16×16 mesh with thousands of flows) the
    /// candidate-pair set is a small fraction of all pairs, and graph
    /// construction — the dominant cost this structure exists to amortise —
    /// scales with actual contention rather than with n².
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonContiguousContentionDomain`] if any pair of
    /// routes violates the contiguous contention-domain assumption.
    pub fn new(system: &System) -> Result<InterferenceGraph, ModelError> {
        let n = system.flows().len();
        let ids: Vec<FlowId> = system.flows().ids().collect();
        // Link-overlap table: which flows cross each link, in id order.
        let mut flows_by_link: HashMap<LinkId, Vec<FlowId>> = HashMap::new();
        for &id in &ids {
            for &link in system.route(id).iter() {
                flows_by_link.entry(link).or_default().push(id);
            }
        }
        // Candidate pairs = pairs co-occurring on some link. Every such pair
        // has a non-empty contention domain; disjoint pairs never appear.
        // Ordered so domain computation — and the pair named by any
        // NonContiguousContentionDomain error — is independent of HashMap
        // iteration order.
        let mut candidates: BTreeSet<(FlowId, FlowId)> = BTreeSet::new();
        for flows in flows_by_link.values() {
            for (x, &ia) in flows.iter().enumerate() {
                for &ib in &flows[x + 1..] {
                    let (lo, hi) = if ia < ib { (ia, ib) } else { (ib, ia) };
                    candidates.insert((lo, hi));
                }
            }
        }
        let mut domains = HashMap::new();
        for (lo, hi) in candidates {
            if let Some(cd) = ContentionDomain::compute(lo, system.route(lo), hi, system.route(hi))?
            {
                domains.insert((lo, hi), cd);
            }
        }
        // S^D_a: higher-priority flows sharing links with τa — read straight
        // off the domain keys (priorities are unique per flow set, so the
        // priority sort below is total and deterministic).
        let mut direct: Vec<Vec<FlowId>> = vec![Vec::new(); n];
        for &(lo, hi) in domains.keys() {
            let (plo, phi) = (system.flow(lo).priority(), system.flow(hi).priority());
            if phi.is_higher_than(plo) {
                direct[lo.index()].push(hi);
            } else if plo.is_higher_than(phi) {
                direct[hi.index()].push(lo);
            }
        }
        // Sort direct sets from highest priority to lowest (deterministic,
        // convenient for analyses).
        for set in direct.iter_mut() {
            set.sort_by_key(|&j| system.flow(j).priority());
        }
        let mut indirect: Vec<Vec<FlowId>> = vec![Vec::new(); n];
        // Scratch membership mask, reused across flows to avoid the
        // quadratic Vec::contains scans of the naive formulation.
        let mut excluded = vec![false; n];
        for (a, set) in indirect.iter_mut().enumerate() {
            *set = Self::indirect_of(&direct, system, a, &mut excluded);
        }
        Ok(InterferenceGraph {
            direct,
            indirect,
            domains,
        })
    }

    /// Computes `S^I_a` from the direct sets: members of `S^D_j` for any
    /// `j ∈ S^D_a` that are neither τa itself nor already direct.
    ///
    /// `excluded` is a caller-provided scratch mask (all `false` on entry,
    /// restored to all `false` on exit) sized to the number of flows.
    fn indirect_of(
        direct: &[Vec<FlowId>],
        system: &System,
        a: usize,
        excluded: &mut [bool],
    ) -> Vec<FlowId> {
        excluded[a] = true;
        for &j in &direct[a] {
            excluded[j.index()] = true;
        }
        let mut seen: Vec<FlowId> = Vec::new();
        for &j in &direct[a] {
            for &k in &direct[j.index()] {
                if !excluded[k.index()] {
                    excluded[k.index()] = true;
                    seen.push(k);
                }
            }
        }
        // Reset the scratch mask for the next flow.
        excluded[a] = false;
        for &j in &direct[a] {
            excluded[j.index()] = false;
        }
        for &k in &seen {
            excluded[k.index()] = false;
        }
        seen.sort_by_key(|&k| system.flow(k).priority());
        seen
    }

    /// Extends the graph with the (already routed) flow `id` of `system`,
    /// recomputing only the neighbourhood the new flow touches.
    ///
    /// `system` must be the *post-addition* system, e.g. the one returned by
    /// [`System::with_added_flow`], and `id` the dense id it assigned. Only
    /// pairs involving the new flow can gain a contention domain, so the
    /// work is proportional to the flows sharing links with the new route —
    /// not to the whole system, which is what makes incremental admission
    /// queries cheap.
    ///
    /// Returns every flow whose direct or indirect interference set may
    /// have changed, `id` included — the set an incremental solver must
    /// mark dirty.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonContiguousContentionDomain`] if the new
    /// route violates the contiguity assumption against an existing one.
    /// The graph is left untouched in that case.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the next dense id or `system` does not have
    /// exactly one more flow than the graph covers.
    pub fn add_flow(&mut self, system: &System, id: FlowId) -> Result<Vec<FlowId>, ModelError> {
        let n_old = self.direct.len();
        assert_eq!(id.index(), n_old, "added flow must take the next dense id");
        assert_eq!(
            system.flows().len(),
            n_old + 1,
            "system must already contain the added flow"
        );
        // Existing flows sharing at least one link with the new route.
        let new_links: HashSet<LinkId> = system.route(id).iter().copied().collect();
        let mut overlapping: Vec<FlowId> = Vec::new();
        for g in system.flows().ids() {
            if g != id && system.route(g).iter().any(|l| new_links.contains(l)) {
                overlapping.push(g);
            }
        }
        // All fallible work happens before any mutation, so a contiguity
        // violation leaves the graph exactly as it was.
        let mut new_domains: Vec<(FlowId, ContentionDomain)> =
            Vec::with_capacity(overlapping.len());
        for &g in &overlapping {
            // `g < id` always holds (the new flow has the largest id), so
            // `(g, id)` is already in canonical key order.
            if let Some(cd) = ContentionDomain::compute(g, system.route(g), id, system.route(id))? {
                new_domains.push((g, cd));
            }
        }
        self.direct.push(Vec::new());
        self.indirect.push(Vec::new());
        let p_new = system.flow(id).priority();
        // Existing flows whose direct set gains the new flow.
        let mut changed = vec![false; n_old + 1];
        for (g, cd) in new_domains {
            let p_g = system.flow(g).priority();
            self.domains.insert((g, id), cd);
            if p_new.is_higher_than(p_g) {
                self.direct[g.index()].push(id);
                changed[g.index()] = true;
            } else {
                self.direct[id.index()].push(g);
            }
        }
        // Restore the highest-to-lowest priority order of every touched set.
        self.direct[id.index()].sort_by_key(|&j| system.flow(j).priority());
        for (a, _) in changed.iter().enumerate().filter(|&(_, &c)| c) {
            self.direct[a].sort_by_key(|&j| system.flow(j).priority());
        }
        // A flow's indirect set depends on its own direct set and on the
        // direct sets of its direct interferers, so recompute exactly where
        // one of those inputs changed.
        let mut affected: Vec<FlowId> = Vec::new();
        for a in 0..=n_old {
            let touched =
                a == id.index() || changed[a] || self.direct[a].iter().any(|&j| changed[j.index()]);
            if touched {
                affected.push(FlowId::new(a as u32));
            }
        }
        let mut excluded = vec![false; n_old + 1];
        for &a in &affected {
            self.indirect[a.index()] =
                Self::indirect_of(&self.direct, system, a.index(), &mut excluded);
        }
        Ok(affected)
    }

    /// Removes flow `id` from the graph, renumbering every larger id one
    /// down (flow ids are dense indices) and recomputing indirect sets only
    /// where the removed flow participated.
    ///
    /// `system` must be the *post-removal* system, e.g. the one returned by
    /// [`System::without_flow`].
    ///
    /// Returns every remaining flow — under its **new** id — whose direct
    /// or indirect interference set changed.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds or `system` does not have exactly
    /// one flow fewer than the graph covers.
    pub fn remove_flow(&mut self, system: &System, id: FlowId) -> Vec<FlowId> {
        let n_old = self.direct.len();
        assert!(id.index() < n_old, "no such flow to remove");
        assert_eq!(
            system.flows().len(),
            n_old - 1,
            "system must no longer contain the removed flow"
        );
        // Flows that lose the removed flow from their interference sets —
        // indexed under the *old* numbering. Losing a direct interferer can
        // reshape the whole indirect set (the removed flow's own direct set
        // stops being unioned in); losing an indirect one only drops it.
        let affected_old: Vec<usize> = (0..n_old)
            .filter(|&a| {
                a != id.index() && (self.direct[a].contains(&id) || self.indirect[a].contains(&id))
            })
            .collect();
        // Drop domains involving the flow and shift the keys above it.
        let shift = |f: FlowId| {
            if f > id {
                FlowId::new(f.raw() - 1)
            } else {
                f
            }
        };
        let old_domains = std::mem::take(&mut self.domains);
        for ((lo, hi), cd) in old_domains {
            if lo != id && hi != id {
                self.domains.insert((shift(lo), shift(hi)), cd);
            }
        }
        // Renumber the direct/indirect adjacency. Priorities are untouched
        // and relative order is preserved, so the lists stay sorted.
        self.direct.remove(id.index());
        self.indirect.remove(id.index());
        for set in self.direct.iter_mut().chain(self.indirect.iter_mut()) {
            set.retain(|&f| f != id);
            for f in set.iter_mut() {
                *f = shift(*f);
            }
        }
        let affected: Vec<FlowId> = affected_old
            .into_iter()
            .map(|a| shift(FlowId::new(a as u32)))
            .collect();
        let mut excluded = vec![false; n_old - 1];
        for &a in &affected {
            self.indirect[a.index()] =
                Self::indirect_of(&self.direct, system, a.index(), &mut excluded);
        }
        affected
    }

    fn lookup(
        domains: &HashMap<(FlowId, FlowId), ContentionDomain>,
        i: FlowId,
        j: FlowId,
    ) -> Option<(&ContentionDomain, bool)> {
        if i < j {
            domains.get(&(i, j)).map(|cd| (cd, false))
        } else {
            domains.get(&(j, i)).map(|cd| (cd, true))
        }
    }

    /// The contention domain `cd(i,j)`, oriented so that
    /// [`ContentionDomain::first_in_i`] refers to flow `i`'s route.
    ///
    /// Returns `None` for link-disjoint pairs (and for `i == j`).
    pub fn contention_domain(&self, i: FlowId, j: FlowId) -> Option<ContentionDomain> {
        Self::lookup(&self.domains, i, j).map(
            |(cd, swapped)| {
                if swapped {
                    cd.swapped()
                } else {
                    cd.clone()
                }
            },
        )
    }

    /// `|cd(i,j)|`, or 0 for disjoint pairs.
    pub fn contention_len(&self, i: FlowId, j: FlowId) -> usize {
        Self::lookup(&self.domains, i, j).map_or(0, |(cd, _)| cd.len())
    }

    /// `true` if flows `i` and `j` share at least one link.
    pub fn contend(&self, i: FlowId, j: FlowId) -> bool {
        Self::lookup(&self.domains, i, j).is_some()
    }

    /// The direct interference set `S^D_i`, sorted from highest priority to
    /// lowest.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn direct_set(&self, i: FlowId) -> &[FlowId] {
        &self.direct[i.index()]
    }

    /// The indirect interference set `S^I_i`, sorted from highest priority
    /// to lowest.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn indirect_set(&self, i: FlowId) -> &[FlowId] {
        &self.indirect[i.index()]
    }

    /// `true` if τⱼ suffers interference from a member of `S^I_i` — the
    /// condition under which the analyses charge τⱼ's interference jitter
    /// `J^I_j = R_j − C_j` when bounding τᵢ.
    pub fn has_indirect_via(&self, i: FlowId, j: FlowId) -> bool {
        self.indirect[i.index()]
            .iter()
            .any(|&k| self.direct[j.index()].contains(&k))
    }

    /// Partitions `S^I_i ∩ S^D_j` into the upstream set `S^upj_Ii` and the
    /// downstream set `S^downj_Ii` by comparing link positions on `routeⱼ`
    /// (the paper's §III definitions).
    ///
    /// # Panics
    ///
    /// Panics if `j` does not contend with `i` (callers must only pass
    /// `j ∈ S^D_i`), or in debug builds if a member cannot be classified —
    /// impossible while the contiguity invariant holds.
    pub fn partition_indirect(&self, i: FlowId, j: FlowId) -> UpDownPartition {
        let cd_ij = self
            .contention_domain(i, j)
            .expect("partition_indirect requires j ∈ S^D_i");
        // positions of cd(i,j) on route_j:
        let ij_first = cd_ij.first_in_j();
        let ij_last = cd_ij.last_in_j();
        let mut partition = UpDownPartition::default();
        for &k in &self.indirect[i.index()] {
            // Only members of S^D_j (higher priority than τj *and* sharing
            // links with it) can interfere with τj.
            if !self.direct[j.index()].contains(&k) {
                continue;
            }
            let Some(cd_jk) = self.contention_domain(j, k) else {
                continue; // unreachable given the membership check above
            };
            // positions of cd(j,k) on route_j:
            let jk_first = cd_jk.first_in_i();
            let jk_last = cd_jk.last_in_i();
            if jk_last < ij_first {
                partition.upstream.push(k);
            } else if jk_first > ij_last {
                partition.downstream.push(k);
            } else {
                // Overlap is impossible: k ∈ S^I_i shares no link with
                // route_i ⊇ cd(i,j), and both domains are contiguous on
                // route_j, so their position intervals are disjoint.
                debug_assert!(
                    false,
                    "unclassifiable indirect interferer {k} for pair ({i},{j})"
                );
                // Release-mode fallback: treat as upstream, the
                // conservative choice (disables the buffer-aware bound).
                partition.upstream.push(k);
            }
        }
        partition
    }

    /// Number of flows covered by this graph.
    pub fn len(&self) -> usize {
        self.direct.len()
    }

    /// `true` if the graph covers no flows.
    pub fn is_empty(&self) -> bool {
        self.direct.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::flow::{Flow, FlowSet};
    use crate::ids::{NodeId, Priority};
    use crate::routing::{TableRouting, XyRouting};
    use crate::time::Cycles;
    use crate::topology::{Topology, TopologyBuilder};

    /// Three flows on a 4x1 chain: τ0 (P3) 0→3, τ1 (P1) 1→3, τ2 (P2) 2→3.
    fn chain_system() -> System {
        let topology = Topology::mesh(4, 1);
        let mk = |src: u32, dst: u32, p: u32, t: u64| {
            Flow::builder(NodeId::new(src), NodeId::new(dst))
                .priority(Priority::new(p))
                .period(Cycles::new(t))
                .length_flits(4)
                .build()
        };
        let flows =
            FlowSet::new(vec![mk(0, 3, 3, 900), mk(1, 3, 1, 300), mk(2, 3, 2, 600)]).unwrap();
        System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap()
    }

    #[test]
    fn contention_domain_of_nested_routes() {
        let sys = chain_system();
        let g = InterferenceGraph::new(&sys).unwrap();
        // τ0 (0→3) and τ1 (1→3) share r1→r2, r2→r3 and the ejection link.
        let cd = g.contention_domain(FlowId::new(0), FlowId::new(1)).unwrap();
        assert_eq!(cd.len(), 3);
        // On τ0's route those are positions 2..4 (after n0→r0, r0→r1).
        assert_eq!(cd.first_in_i(), 2);
        assert_eq!(cd.last_in_i(), 4);
        // On τ1's route they are positions 1..3 (after n1→r1).
        assert_eq!(cd.first_in_j(), 1);
        assert_eq!(cd.last_in_j(), 3);
    }

    #[test]
    fn contention_domain_orientation_swaps() {
        let sys = chain_system();
        let g = InterferenceGraph::new(&sys).unwrap();
        let a = g.contention_domain(FlowId::new(0), FlowId::new(1)).unwrap();
        let b = g.contention_domain(FlowId::new(1), FlowId::new(0)).unwrap();
        assert_eq!(a.links(), b.links());
        assert_eq!(a.first_in_i(), b.first_in_j());
        assert_eq!(a.last_in_j(), b.last_in_i());
    }

    #[test]
    fn direct_sets_respect_priority() {
        let sys = chain_system();
        let g = InterferenceGraph::new(&sys).unwrap();
        // τ0 has lowest priority and shares links with both others.
        assert_eq!(
            g.direct_set(FlowId::new(0)),
            &[FlowId::new(1), FlowId::new(2)]
        );
        // τ1 is highest: nothing interferes with it.
        assert!(g.direct_set(FlowId::new(1)).is_empty());
        // τ2 is interfered by τ1 only.
        assert_eq!(g.direct_set(FlowId::new(2)), &[FlowId::new(1)]);
    }

    #[test]
    fn indirect_set_empty_when_everything_is_direct() {
        let sys = chain_system();
        let g = InterferenceGraph::new(&sys).unwrap();
        for i in 0..3 {
            assert!(g.indirect_set(FlowId::new(i)).is_empty(), "flow {i}");
        }
    }

    #[test]
    fn disjoint_flows_do_not_contend() {
        let topology = Topology::mesh(4, 4);
        let mk = |src: u32, dst: u32, p: u32| {
            Flow::builder(NodeId::new(src), NodeId::new(dst))
                .priority(Priority::new(p))
                .period(Cycles::new(1000))
                .build()
        };
        // τ0 along the bottom row, τ1 along the top row.
        let flows = FlowSet::new(vec![mk(0, 3, 2), mk(12, 15, 1)]).unwrap();
        let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let g = InterferenceGraph::new(&sys).unwrap();
        assert!(!g.contend(FlowId::new(0), FlowId::new(1)));
        assert_eq!(g.contention_len(FlowId::new(0), FlowId::new(1)), 0);
        assert!(g.direct_set(FlowId::new(0)).is_empty());
    }

    /// The didactic topology of Figure 3 (reconstructed; see DESIGN.md):
    /// routers 1..4 in a row, router 5 below 3, router 6 below 4.
    /// τ1: f→e via (6,5); τ2: a→e via (1,2,3,4,6,5); τ3: b→f via (2,3,4,6).
    fn didactic_system() -> System {
        let mut b = TopologyBuilder::new();
        let r: Vec<_> = (1..=6)
            .map(|i| b.add_named_router(format!("r{i}")))
            .collect();
        let names = ["a", "b", "c", "d", "e", "f"];
        let nodes: Vec<_> = names
            .iter()
            .enumerate()
            .map(|(i, n)| b.add_named_node(r[i], *n))
            .collect();
        // row links 1-2-3-4, verticals 3-5 and 4-6, bottom 5-6.
        for (x, y) in [(0, 1), (1, 2), (2, 3), (2, 4), (3, 5), (4, 5)] {
            b.add_duplex_router_link(r[x], r[y]);
        }
        let topo = b.build().unwrap();
        let link = |from: Endpoint, to: Endpoint| topo.find_link(from, to).unwrap();
        use crate::topology::Endpoint;
        let rt = |idx: usize| Endpoint::Router(r[idx]);
        let mut table = TableRouting::new();
        // τ1: f→e
        table.insert(
            nodes[5],
            nodes[4],
            Route::new(
                &topo,
                vec![
                    topo.injection_link(nodes[5]),
                    link(rt(5), rt(4)),
                    topo.ejection_link(nodes[4]),
                ],
            )
            .unwrap(),
        );
        // τ2: a→e via 1,2,3,4,6,5
        table.insert(
            nodes[0],
            nodes[4],
            Route::new(
                &topo,
                vec![
                    topo.injection_link(nodes[0]),
                    link(rt(0), rt(1)),
                    link(rt(1), rt(2)),
                    link(rt(2), rt(3)),
                    link(rt(3), rt(5)),
                    link(rt(5), rt(4)),
                    topo.ejection_link(nodes[4]),
                ],
            )
            .unwrap(),
        );
        // τ3: b→f via 2,3,4,6
        table.insert(
            nodes[1],
            nodes[5],
            Route::new(
                &topo,
                vec![
                    topo.injection_link(nodes[1]),
                    link(rt(1), rt(2)),
                    link(rt(2), rt(3)),
                    link(rt(3), rt(5)),
                    topo.ejection_link(nodes[5]),
                ],
            )
            .unwrap(),
        );
        let mk = |src: usize, dst: usize, p: u32, l: u32, t: u64| {
            Flow::builder(nodes[src], nodes[dst])
                .priority(Priority::new(p))
                .period(Cycles::new(t))
                .length_flits(l)
                .name(format!("τ{p}"))
                .build()
        };
        let flows = FlowSet::new(vec![
            mk(5, 4, 1, 60, 200),   // τ1
            mk(0, 4, 2, 198, 4000), // τ2
            mk(1, 5, 3, 128, 6000), // τ3
        ])
        .unwrap();
        let config = NocConfig::builder()
            .buffer_depth(2)
            .link_latency(Cycles::ONE)
            .routing_latency(Cycles::ZERO)
            .virtual_channels(3)
            .build();
        System::new(topo, config, flows, &table).unwrap()
    }

    #[test]
    fn didactic_routes_and_latencies_match_table_one() {
        let sys = didactic_system();
        assert_eq!(sys.route(FlowId::new(0)).len(), 3);
        assert_eq!(sys.route(FlowId::new(1)).len(), 7);
        assert_eq!(sys.route(FlowId::new(2)).len(), 5);
        assert_eq!(sys.zero_load_latency(FlowId::new(0)), Cycles::new(62));
        assert_eq!(sys.zero_load_latency(FlowId::new(1)), Cycles::new(204));
        assert_eq!(sys.zero_load_latency(FlowId::new(2)), Cycles::new(132));
    }

    #[test]
    fn didactic_interference_structure() {
        let sys = didactic_system();
        let g = InterferenceGraph::new(&sys).unwrap();
        let (t1, t2, t3) = (FlowId::new(0), FlowId::new(1), FlowId::new(2));
        // τ3 is directly interfered with by τ2 only; τ1 is indirect.
        assert_eq!(g.direct_set(t3), &[t2]);
        assert_eq!(g.indirect_set(t3), &[t1]);
        // τ2 is directly interfered with by τ1.
        assert_eq!(g.direct_set(t2), &[t1]);
        assert!(g.indirect_set(t2).is_empty());
        // |cd(3,2)| = 3 — the key quantity behind Table II.
        assert_eq!(g.contention_len(t3, t2), 3);
        // τ1's hits on τ2 land downstream of cd(3,2):
        let part = g.partition_indirect(t3, t2);
        assert_eq!(part.downstream, vec![t1]);
        assert!(part.upstream.is_empty());
        // τ2 suffers indirect-relevant interference relative to τ3:
        assert!(g.has_indirect_via(t3, t2));
        assert!(!g.has_indirect_via(t2, t1));
    }

    #[test]
    fn upstream_partition_detected() {
        // τ_low: n1→n3 on a 5x1 chain; τ_mid: n0→n3 (shares r1→r2,r2→r3 with
        // τ_low); τ_hi: n0→n1 — hits τ_mid on links *before* cd(low,mid).
        let topology = Topology::mesh(5, 1);
        let mk = |src: u32, dst: u32, p: u32, t: u64| {
            Flow::builder(NodeId::new(src), NodeId::new(dst))
                .priority(Priority::new(p))
                .period(Cycles::new(t))
                .length_flits(4)
                .build()
        };
        let flows = FlowSet::new(vec![
            mk(1, 4, 3, 1000), // τ_low
            mk(0, 4, 2, 500),  // τ_mid: shares n0 injection? no — 0→4 shares r1..r4 with low
            mk(0, 1, 1, 100),  // τ_hi: shares r0→r1 with mid only (plus ejection at n1)
        ])
        .unwrap();
        let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let g = InterferenceGraph::new(&sys).unwrap();
        let (low, mid, hi) = (FlowId::new(0), FlowId::new(1), FlowId::new(2));
        assert_eq!(g.direct_set(low), &[mid]);
        assert_eq!(g.indirect_set(low), &[hi]);
        let part = g.partition_indirect(low, mid);
        assert_eq!(part.upstream, vec![hi]);
        assert!(part.downstream.is_empty());
    }

    #[test]
    fn non_contiguous_domain_rejected() {
        // Custom topology where two routes share link A, diverge, and share
        // link B again: a "braid" that violates the paper's assumption.
        let mut b = TopologyBuilder::new();
        let r: Vec<_> = (0..6).map(|_| b.add_router()).collect();
        let src = b.add_node(r[0]);
        let dst = b.add_node(r[5]);
        // two parallel middle paths: r1→r2→r4 and r1→r3→r4
        for (x, y) in [(0, 1), (1, 2), (1, 3), (2, 4), (3, 4), (4, 5)] {
            b.add_duplex_router_link(r[x], r[y]);
        }
        let topo = b.build().unwrap();
        use crate::topology::Endpoint;
        let link = |a: usize, c: usize| {
            topo.find_link(Endpoint::Router(r[a]), Endpoint::Router(r[c]))
                .unwrap()
        };
        let mk_route = |mid: usize| {
            Route::new(
                &topo,
                vec![
                    topo.injection_link(src),
                    link(0, 1),
                    link(1, mid),
                    link(mid, 4),
                    link(4, 5),
                    topo.ejection_link(dst),
                ],
            )
            .unwrap()
        };
        let route_via_2 = mk_route(2);
        let route_via_3 = mk_route(3);
        let err =
            ContentionDomain::compute(FlowId::new(0), &route_via_2, FlowId::new(1), &route_via_3)
                .unwrap_err();
        assert!(matches!(
            err,
            ModelError::NonContiguousContentionDomain { .. }
        ));
    }

    /// Six flows criss-crossing a 4×4 mesh — enough contention to exercise
    /// direct, indirect, and disjoint pairs at once.
    fn mesh_specs() -> Vec<(u32, u32, u32, u64)> {
        vec![
            (0, 15, 1, 1000),
            (4, 7, 2, 1500),
            (12, 3, 3, 2000),
            (1, 13, 4, 2500),
            (5, 6, 5, 3000),
            (0, 10, 6, 3500),
        ]
    }

    fn mesh_flow((src, dst, p, t): (u32, u32, u32, u64)) -> Flow {
        Flow::builder(NodeId::new(src), NodeId::new(dst))
            .priority(Priority::new(p))
            .period(Cycles::new(t))
            .length_flits(8)
            .build()
    }

    #[test]
    fn incremental_add_matches_from_scratch() {
        let topology = Topology::mesh(4, 4);
        let specs = mesh_specs();
        let flows = FlowSet::new(vec![mesh_flow(specs[0])]).unwrap();
        let mut sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let mut g = InterferenceGraph::new(&sys).unwrap();
        for &spec in &specs[1..] {
            let (next, id) = sys.with_added_flow(mesh_flow(spec), &XyRouting).unwrap();
            let affected = g.add_flow(&next, id).unwrap();
            assert!(affected.contains(&id));
            sys = next;
            assert_eq!(g, InterferenceGraph::new(&sys).unwrap());
        }
    }

    #[test]
    fn incremental_remove_matches_from_scratch() {
        let topology = Topology::mesh(4, 4);
        let flows = FlowSet::new(mesh_specs().into_iter().map(mesh_flow).collect()).unwrap();
        let mut sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let mut g = InterferenceGraph::new(&sys).unwrap();
        // Remove from the middle, the front, and the middle again so the
        // id renumbering gets exercised in every position.
        for victim in [2u32, 0, 2] {
            let id = FlowId::new(victim);
            sys = sys.without_flow(id).unwrap();
            g.remove_flow(&sys, id);
            assert_eq!(g, InterferenceGraph::new(&sys).unwrap());
        }
    }

    #[test]
    fn remove_then_re_add_round_trips() {
        let full = didactic_system();
        let g_full = InterferenceGraph::new(&full).unwrap();
        // Drop the last flow (τ3), then grow the graph back. `add_flow`
        // only needs the post-addition system, and removing the *last* id
        // leaves every other id unchanged — so `full` itself is that system.
        let last = FlowId::new(2);
        let smaller = full.without_flow(last).unwrap();
        let mut g = g_full.clone();
        g.remove_flow(&smaller, last);
        assert_eq!(g, InterferenceGraph::new(&smaller).unwrap());
        let affected = g.add_flow(&full, last).unwrap();
        assert!(affected.contains(&last));
        assert_eq!(g, g_full);
    }

    #[test]
    fn opposite_direction_links_do_not_contend() {
        let topology = Topology::mesh(3, 1);
        let mk = |src: u32, dst: u32, p: u32| {
            Flow::builder(NodeId::new(src), NodeId::new(dst))
                .priority(Priority::new(p))
                .period(Cycles::new(1000))
                .build()
        };
        let flows = FlowSet::new(vec![mk(0, 2, 1), mk(2, 0, 2)]).unwrap();
        let sys = System::new(topology, NocConfig::default(), flows, &XyRouting).unwrap();
        let g = InterferenceGraph::new(&sys).unwrap();
        assert!(!g.contend(FlowId::new(0), FlowId::new(1)));
    }
}
