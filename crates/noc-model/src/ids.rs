//! Strongly-typed identifiers for the entities of the network model.
//!
//! All identifiers are thin newtypes over dense indices ([C-NEWTYPE]): a
//! [`NodeId`] indexes into the node table of a
//! [`Topology`](crate::topology::Topology), a [`RouterId`] into its router
//! table, a [`LinkId`] into its link table and a [`FlowId`] into the flow
//! table of a [`FlowSet`](crate::flow::FlowSet). Using distinct types keeps
//! node/router/link/flow indices from being confused at compile time.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a dense index.
            ///
            /// # Examples
            ///
            /// ```
            /// # use noc_model::ids::NodeId;
            /// let n = NodeId::new(3);
            /// assert_eq!(n.index(), 3);
            /// ```
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the dense index backing this identifier.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value backing this identifier.
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                Self(index)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifier of a processing node (π in the paper's notation).
    ///
    /// Nodes are traffic sources and destinations; each node is attached to
    /// exactly one router through a pair of unidirectional links.
    NodeId,
    "n"
);

define_id!(
    /// Identifier of a router (ξ in the paper's notation).
    RouterId,
    "r"
);

define_id!(
    /// Identifier of a unidirectional link (λ in the paper's notation).
    ///
    /// Links connect either a node to its router (injection), a router to a
    /// node (ejection), or two adjacent routers.
    LinkId,
    "l"
);

define_id!(
    /// Identifier of a real-time traffic flow (τ in the paper's notation).
    FlowId,
    "f"
);

/// Fixed priority of a traffic flow.
///
/// Follows the paper's convention: **1 denotes the highest priority** and
/// larger integers denote lower priorities. [`Priority::is_higher_than`]
/// encapsulates the comparison so call sites never get the direction wrong.
///
/// # Examples
///
/// ```
/// # use noc_model::ids::Priority;
/// let urgent = Priority::new(1);
/// let relaxed = Priority::new(7);
/// assert!(urgent.is_higher_than(relaxed));
/// assert!(!relaxed.is_higher_than(urgent));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(u32);

impl Priority {
    /// Highest possible priority (value 1).
    pub const HIGHEST: Priority = Priority(1);

    /// Creates a priority from its integer level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero; the paper's priority scale starts at 1.
    pub fn new(level: u32) -> Self {
        assert!(level >= 1, "priority levels start at 1 (1 = highest)");
        Self(level)
    }

    /// Returns the integer level (1 = highest).
    pub const fn level(self) -> u32 {
        self.0
    }

    /// Returns `true` if `self` is a strictly higher priority than `other`
    /// (i.e. its level is numerically smaller).
    pub const fn is_higher_than(self, other: Priority) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_index() {
        assert_eq!(NodeId::new(7).index(), 7);
        assert_eq!(RouterId::new(0).index(), 0);
        assert_eq!(LinkId::new(41).raw(), 41);
        assert_eq!(FlowId::from(9u32).index(), 9);
        assert_eq!(u32::from(FlowId::new(9)), 9);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(NodeId::new(2).to_string(), "n2");
        assert_eq!(RouterId::new(3).to_string(), "r3");
        assert_eq!(LinkId::new(4).to_string(), "l4");
        assert_eq!(FlowId::new(5).to_string(), "f5");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(LinkId::new(10) > LinkId::new(9));
    }

    #[test]
    fn priority_one_is_highest() {
        assert!(Priority::new(1).is_higher_than(Priority::new(2)));
        assert!(!Priority::new(2).is_higher_than(Priority::new(2)));
        assert!(!Priority::new(3).is_higher_than(Priority::new(2)));
        assert_eq!(Priority::HIGHEST, Priority::new(1));
    }

    #[test]
    fn priority_display() {
        assert_eq!(Priority::new(4).to_string(), "P4");
    }

    #[test]
    #[should_panic(expected = "priority levels start at 1")]
    fn priority_zero_rejected() {
        let _ = Priority::new(0);
    }
}
