//! Discrete time in flit-clock cycles.
//!
//! All temporal quantities of the model — periods, deadlines, jitters,
//! latencies, response times — are expressed in [`Cycles`], the time it takes
//! a router to move one flit across one link when `linkl(Ξ) = 1`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A duration (or instant, measured from time zero) in flit-clock cycles.
///
/// `Cycles` is a transparent `u64` newtype ([C-NEWTYPE]) with checked-feeling
/// arithmetic: additions and multiplications saturate at [`Cycles::MAX`]
/// instead of wrapping, so an analysis that diverges produces a recognisably
/// huge bound rather than silent wrap-around. Subtraction panics on underflow
/// in debug builds and saturates to zero in release builds, matching the
/// non-negative nature of all quantities in the model.
///
/// # Examples
///
/// ```
/// # use noc_model::time::Cycles;
/// let period = Cycles::new(4_000);
/// let jitter = Cycles::new(25);
/// assert_eq!(period + jitter, Cycles::new(4_025));
/// assert_eq!((period + jitter).ceil_div(period), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// One cycle.
    pub const ONE: Cycles = Cycles(1);

    /// The largest representable duration; arithmetic saturates here.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Creates a duration of `n` cycles.
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Returns the raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    #[must_use]
    pub const fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[must_use]
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication by a scalar.
    #[must_use]
    pub const fn saturating_mul(self, rhs: u64) -> Cycles {
        Cycles(self.0.saturating_mul(rhs))
    }

    /// Checked subtraction; `None` if `rhs > self`.
    pub const fn checked_sub(self, rhs: Cycles) -> Option<Cycles> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Cycles(v)),
            None => None,
        }
    }

    /// Ceiling division of two durations, as used by the interference hit
    /// counts `⌈(R + J) / T⌉` of every response-time analysis.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn ceil_div(self, divisor: Cycles) -> u64 {
        assert!(!divisor.is_zero(), "division by zero cycles");
        self.0.div_ceil(divisor.0)
    }

    /// Returns the larger of two durations.
    #[must_use]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    #[must_use]
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(n: u64) -> Self {
        Cycles(n)
    }
}

impl From<Cycles> for u64 {
    fn from(c: Cycles) -> u64 {
        c.0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        *self = *self + rhs;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        debug_assert!(self.0 >= rhs.0, "cycle subtraction underflow");
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        self.saturating_mul(rhs)
    }
}

impl Mul<Cycles> for u64 {
    type Output = Cycles;
    fn mul(self, rhs: Cycles) -> Cycles {
        rhs.saturating_mul(self)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Rem<Cycles> for Cycles {
    type Output = Cycles;
    fn rem(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 % rhs.0)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let a = Cycles::new(10);
        let b = Cycles::new(3);
        assert_eq!(a + b, Cycles::new(13));
        assert_eq!(a - b, Cycles::new(7));
        assert_eq!(a * 4, Cycles::new(40));
        assert_eq!(4 * a, Cycles::new(40));
        assert_eq!(a / 3, Cycles::new(3));
        assert_eq!(a % b, Cycles::new(1));
    }

    #[test]
    fn saturation_on_overflow() {
        assert_eq!(Cycles::MAX + Cycles::ONE, Cycles::MAX);
        assert_eq!(Cycles::MAX * 2, Cycles::MAX);
        assert_eq!(Cycles::ZERO.saturating_sub(Cycles::ONE), Cycles::ZERO);
    }

    #[test]
    fn ceil_div_matches_paper_hit_count() {
        // ⌈(R + J) / T⌉ examples from the didactic computation:
        // ⌈328 / 200⌉ = 2 hits of τ1 on τ2.
        assert_eq!(Cycles::new(328).ceil_div(Cycles::new(200)), 2);
        assert_eq!(Cycles::new(200).ceil_div(Cycles::new(200)), 1);
        assert_eq!(Cycles::new(201).ceil_div(Cycles::new(200)), 2);
        assert_eq!(Cycles::new(0).ceil_div(Cycles::new(200)), 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn ceil_div_by_zero_panics() {
        let _ = Cycles::new(1).ceil_div(Cycles::ZERO);
    }

    #[test]
    fn sum_and_compare() {
        let total: Cycles = [1u64, 2, 3].iter().map(|&n| Cycles::new(n)).sum();
        assert_eq!(total, Cycles::new(6));
        assert_eq!(Cycles::new(5).max(Cycles::new(9)), Cycles::new(9));
        assert_eq!(Cycles::new(5).min(Cycles::new(9)), Cycles::new(5));
    }

    #[test]
    fn display_and_conversions() {
        assert_eq!(Cycles::new(42).to_string(), "42cy");
        assert_eq!(u64::from(Cycles::new(42)), 42);
        assert_eq!(Cycles::from(7u64), Cycles::new(7));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "underflow")]
    fn debug_subtraction_underflow_panics() {
        let _ = Cycles::new(1) - Cycles::new(2);
    }
}
