//! Minimal ASCII chart rendering for schedulability curves.
//!
//! The paper's Figures 4 and 5 are line/bar charts; the experiment binaries
//! print the exact numbers as tables *and* sketch the curves with this
//! renderer so the shape (orderings, crossovers) is visible at a glance in
//! a terminal.

/// One named series of y-values in `[0, 100]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Single-character glyph used to plot the series.
    pub glyph: char,
    /// Series name for the legend.
    pub name: String,
    /// Y values (percentages), one per x position.
    pub values: Vec<f64>,
}

/// Renders percentage series as a column chart: one text column per x
/// position, y resolution of `rows` character cells (default via
/// [`render_curves`] is 11 → 10-percentage-point cells).
///
/// Overlapping points print the glyph of the *later* series in the slice,
/// so list the most important series last.
///
/// # Examples
///
/// ```
/// # use noc_experiments::chart::{render_curves_with_rows, Series};
/// let chart = render_curves_with_rows(
///     &[Series { glyph: 'x', name: "XLWX".into(), values: vec![100.0, 50.0, 0.0] }],
///     &["40", "60", "80"],
///     5,
/// );
/// assert!(chart.contains('x'));
/// assert!(chart.contains("XLWX"));
/// ```
///
/// # Panics
///
/// Panics if series lengths disagree with the label count or `rows < 2`.
pub fn render_curves_with_rows(series: &[Series], x_labels: &[&str], rows: usize) -> String {
    assert!(rows >= 2, "need at least two chart rows");
    for s in series {
        assert_eq!(
            s.values.len(),
            x_labels.len(),
            "series '{}' length mismatch",
            s.name
        );
    }
    let cols = x_labels.len();
    let mut grid = vec![vec![' '; cols]; rows];
    for s in series {
        for (x, &v) in s.values.iter().enumerate() {
            let clamped = v.clamp(0.0, 100.0);
            // Row 0 is the top (100%); row rows-1 is 0%.
            let cell = ((100.0 - clamped) / 100.0 * (rows - 1) as f64).round() as usize;
            grid[cell.min(rows - 1)][x] = s.glyph;
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let pct = 100.0 - (r as f64 / (rows - 1) as f64) * 100.0;
        out.push_str(&format!("{pct:>5.0}% |"));
        for &c in row {
            out.push(' ');
            out.push(c);
        }
        out.push('\n');
    }
    out.push_str("       ");
    for _ in 0..cols {
        out.push_str("--");
    }
    out.push('\n');
    // X labels, vertical if longer than one character.
    let max_label = x_labels.iter().map(|l| l.len()).max().unwrap_or(0);
    for line in 0..max_label {
        out.push_str("       ");
        for label in x_labels {
            out.push(' ');
            out.push(label.chars().nth(line).unwrap_or(' '));
        }
        out.push('\n');
    }
    out.push_str("legend:");
    for s in series {
        out.push_str(&format!(" {}={}", s.glyph, s.name));
    }
    out.push('\n');
    out
}

/// [`render_curves_with_rows`] with an 11-row grid (10-point resolution).
pub fn render_curves(series: &[Series], x_labels: &[&str]) -> String {
    render_curves_with_rows(series, x_labels, 11)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(glyph: char, values: Vec<f64>) -> Series {
        Series {
            glyph,
            name: glyph.to_string(),
            values,
        }
    }

    #[test]
    fn plots_extremes_on_correct_rows() {
        let chart = render_curves(&[series('a', vec![100.0, 0.0])], &["1", "2"]);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].starts_with("  100%"));
        assert!(lines[0].contains('a'), "100% value on top row");
        assert!(lines[10].starts_with("    0%"));
        assert!(lines[10].contains('a'), "0% value on bottom row");
    }

    #[test]
    fn later_series_wins_overlap() {
        let chart = render_curves(&[series('a', vec![50.0]), series('b', vec![50.0])], &["x"]);
        assert!(!chart.lines().nth(5).unwrap().contains('a'));
        assert!(chart.lines().nth(5).unwrap().contains('b'));
    }

    #[test]
    fn vertical_labels_and_legend() {
        let chart = render_curves(&[series('z', vec![10.0, 90.0])], &["40", "420"]);
        assert!(chart.contains("legend: z=z"));
        // the multi-char label is rendered vertically: its digits appear on
        // consecutive lines.
        let label_lines: Vec<&str> = chart
            .lines()
            .filter(|l| !l.contains('%') && !l.contains("legend") && !l.contains('-'))
            .collect();
        assert_eq!(label_lines.len(), 3, "{chart}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = render_curves(&[series('a', vec![1.0])], &["1", "2"]);
    }

    #[test]
    fn values_clamped() {
        let chart = render_curves(&[series('c', vec![150.0, -20.0])], &["a", "b"]);
        assert!(chart.lines().next().unwrap().contains('c'));
        assert!(chart.lines().nth(10).unwrap().contains('c'));
    }
}
