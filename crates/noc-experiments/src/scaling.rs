//! Experiment X5: breakdown scaling — a *continuous* tightness metric.
//!
//! Binary schedulability (Figures 4–5) hides how close a verdict was. The
//! breakdown factor of a system under an analysis is the smallest uniform
//! period/deadline scaling that makes the whole set schedulable: factors
//! below 1 mean the analysis certifies headroom (periods could shrink),
//! factors above 1 measure how much relaxation the analysis demands. A
//! tighter analysis always has a breakdown factor ≤ a more pessimistic
//! one — this experiment quantifies *how much* tighter IBN is than XLWX,
//! beyond the yes/no of the paper's plots.

use noc_analysis::prelude::*;
use noc_model::system::System;
use noc_workload::synthetic::SyntheticSpec;

use crate::runner::{default_threads, par_map_indexed};
use crate::table::TextTable;

/// Fixed-point denominator for the scaling search (1/1024 resolution).
const DENOM: u64 = 1 << 10;

/// Returns whether the context's system with periods scaled by `num/DENOM`
/// is fully schedulable under `analysis`. Period scaling preserves routes
/// and priorities, so the scaled system shares the context's interference
/// graph via [`AnalysisContext::rebase`].
fn schedulable_at(ctx: &AnalysisContext<'_>, analysis: &dyn Analysis, num: u64) -> bool {
    ctx.system()
        .with_scaled_periods(num, DENOM)
        .ok()
        .and_then(|s| {
            let scaled = ctx.rebase(&s).ok()?;
            analysis.analyze_with(&scaled).ok()
        })
        .map(|r| r.is_schedulable())
        .unwrap_or(false)
}

/// The breakdown factor of `system` under `analysis`: the smallest scaling
/// factor α (to 1/1024 resolution, within `[2⁻⁶, 2⁶]`) such that scaling
/// every period and deadline by α makes the set schedulable.
///
/// Returns `None` when even a 64-fold relaxation does not help (e.g. a
/// flow's deadline is below its zero-load latency by construction —
/// impossible for D = T workloads, but possible for hand-built ones).
///
/// Schedulability is monotone in the period scale (longer periods mean
/// fewer interference hits and smaller jitter), which makes binary search
/// sound; a unit test cross-checks monotonicity empirically.
///
/// # Examples
///
/// ```
/// # use noc_model::prelude::*;
/// # use noc_analysis::prelude::*;
/// # use noc_experiments::scaling::breakdown_factor;
/// # let topology = Topology::mesh(2, 1);
/// # let flows = FlowSet::new(vec![Flow::builder(NodeId::new(0), NodeId::new(1))
/// #     .priority(Priority::new(1)).period(Cycles::new(1000)).length_flits(10).build()])?;
/// # let system = System::new(topology, NocConfig::default(), flows, &XyRouting)?;
/// // A lightly loaded system has headroom: breakdown factor well below 1.
/// let alpha = breakdown_factor(&system, &BufferAware).unwrap();
/// assert!(alpha < 0.1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn breakdown_factor(system: &System, analysis: &dyn Analysis) -> Option<f64> {
    let ctx = AnalysisContext::new(system).ok()?;
    breakdown_factor_with(&ctx, analysis)
}

/// [`breakdown_factor`] against a shared [`AnalysisContext`]: every probe of
/// the binary search (≈ 12 analyses) rebases the context instead of
/// re-deriving the interference graph.
pub fn breakdown_factor_with(ctx: &AnalysisContext<'_>, analysis: &dyn Analysis) -> Option<f64> {
    let mut hi = DENOM * 64;
    if !schedulable_at(ctx, analysis, hi) {
        return None;
    }
    let mut lo = DENOM / 64;
    if schedulable_at(ctx, analysis, lo) {
        return Some(lo as f64 / DENOM as f64);
    }
    // Invariant: unschedulable at lo, schedulable at hi.
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if schedulable_at(ctx, analysis, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi as f64 / DENOM as f64)
}

/// Configuration of the breakdown-factor comparison.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Mesh width.
    pub mesh_width: u16,
    /// Mesh height.
    pub mesh_height: u16,
    /// Flows per set.
    pub n_flows: usize,
    /// Number of random flow sets.
    pub sets: usize,
    /// Base RNG seed.
    pub seed_base: u64,
    /// Small/large buffer depths for IBN.
    pub buffers: (u32, u32),
    /// Worker threads.
    pub threads: usize,
}

impl ScalingConfig {
    /// Default setup: the Figure 4(a) platform at a load where the
    /// analyses separate.
    pub fn paper() -> ScalingConfig {
        ScalingConfig {
            mesh_width: 4,
            mesh_height: 4,
            n_flows: 160,
            sets: 50,
            seed_base: 0x5CA7E,
            buffers: (2, 100),
            threads: default_threads(),
        }
    }

    /// Scales the experiment down for quick runs.
    #[must_use]
    pub fn reduced(mut self, sets: usize) -> ScalingConfig {
        self.sets = sets;
        self
    }
}

/// Breakdown factors of one flow set under the four analyses
/// (`None` = not schedulable within the search range).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakdownRow {
    /// Seed of the generated set.
    pub seed: u64,
    /// Shi & Burns (unsafe floor).
    pub sb: Option<f64>,
    /// XLWX.
    pub xlwx: Option<f64>,
    /// IBN with small buffers.
    pub ibn_small: Option<f64>,
    /// IBN with large buffers.
    pub ibn_large: Option<f64>,
}

/// Results of the breakdown comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingResults {
    /// One row per generated set.
    pub rows: Vec<BreakdownRow>,
}

impl ScalingResults {
    /// Geometric mean of the breakdown factors of one analysis (skips
    /// `None` rows). Geometric because factors are multiplicative.
    pub fn geometric_mean(&self, pick: impl Fn(&BreakdownRow) -> Option<f64>) -> Option<f64> {
        let logs: Vec<f64> = self.rows.iter().filter_map(&pick).map(f64::ln).collect();
        if logs.is_empty() {
            return None;
        }
        Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
    }
}

/// Runs the breakdown comparison.
pub fn run(config: &ScalingConfig) -> ScalingResults {
    let spec = SyntheticSpec::paper(config.mesh_width, config.mesh_height, config.n_flows, 2);
    let rows = par_map_indexed(config.sets, config.threads, |s| {
        let seed = config
            .seed_base
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(s as u64);
        let system = spec.generate(seed).into_system();
        let small = system.with_buffer_depth(config.buffers.0);
        let large = system.with_buffer_depth(config.buffers.1);
        // One interference graph serves all four analyses × two depths ×
        // every binary-search probe.
        let ctx = match AnalysisContext::new(&small) {
            Ok(ctx) => ctx,
            Err(_) => {
                return BreakdownRow {
                    seed,
                    sb: None,
                    xlwx: None,
                    ibn_small: None,
                    ibn_large: None,
                }
            }
        };
        let large_ctx = ctx.rebased(&large);
        BreakdownRow {
            seed,
            sb: breakdown_factor_with(&ctx, &ShiBurns),
            xlwx: breakdown_factor_with(&ctx, &Xlwx),
            ibn_small: breakdown_factor_with(&ctx, &BufferAware),
            ibn_large: breakdown_factor_with(&large_ctx, &BufferAware),
        }
    });
    ScalingResults { rows }
}

/// Renders the geometric-mean summary table.
pub fn render(results: &ScalingResults, config: &ScalingConfig) -> String {
    let mut t = TextTable::new(vec!["analysis", "geo-mean breakdown factor", "sets solved"]);
    let mut row = |name: String, pick: &dyn Fn(&BreakdownRow) -> Option<f64>| {
        let solved = results.rows.iter().filter(|r| pick(r).is_some()).count();
        t.add_row(vec![
            name,
            results
                .geometric_mean(pick)
                .map_or("-".into(), |g| format!("{g:.3}")),
            format!("{solved}/{}", results.rows.len()),
        ]);
    };
    row("SB (unsafe)".into(), &|r| r.sb);
    row(format!("IBN (b={})", config.buffers.0), &|r| r.ibn_small);
    row(format!("IBN (b={})", config.buffers.1), &|r| r.ibn_large);
    row("XLWX".into(), &|r| r.xlwx);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_system(seed: u64) -> System {
        SyntheticSpec::paper(4, 4, 120, 2)
            .generate(seed)
            .into_system()
    }

    #[test]
    fn breakdown_respects_analysis_ordering() {
        for seed in [1u64, 2, 3] {
            let sys = loaded_system(seed);
            let sb = breakdown_factor(&sys, &ShiBurns).unwrap();
            let ibn = breakdown_factor(&sys, &BufferAware).unwrap();
            let xlwx = breakdown_factor(&sys, &Xlwx).unwrap();
            assert!(sb <= ibn + 1e-9, "seed {seed}");
            assert!(ibn <= xlwx + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn breakdown_consistent_with_schedulability() {
        let sys = loaded_system(7);
        let report = BufferAware.analyze(&sys).unwrap();
        let alpha = breakdown_factor(&sys, &BufferAware).unwrap();
        if report.is_schedulable() {
            assert!(alpha <= 1.0);
        } else {
            assert!(alpha > 1.0);
        }
    }

    #[test]
    fn schedulability_is_monotone_in_scale() {
        // Empirical cross-check of the binary search's soundness premise.
        let sys = loaded_system(11);
        let ctx = AnalysisContext::new(&sys).unwrap();
        let mut last = false;
        for num in [256u64, 512, 1024, 2048, 4096, 16384] {
            let ok = schedulable_at(&ctx, &BufferAware, num);
            assert!(ok || !last, "schedulability regressed as periods grew");
            last = ok;
        }
    }

    #[test]
    fn context_backed_breakdown_matches_direct_path() {
        let sys = loaded_system(5);
        let ctx = AnalysisContext::new(&sys).unwrap();
        for analysis in [&ShiBurns as &dyn Analysis, &Xlwx, &BufferAware] {
            assert_eq!(
                breakdown_factor(&sys, analysis),
                breakdown_factor_with(&ctx, analysis),
                "{}",
                analysis.name()
            );
        }
    }

    #[test]
    fn run_and_render_smoke() {
        let cfg = ScalingConfig {
            n_flows: 80,
            sets: 4,
            threads: 4,
            ..ScalingConfig::paper()
        };
        let results = run(&cfg);
        assert_eq!(results.rows.len(), 4);
        let out = render(&results, &cfg);
        assert!(out.contains("XLWX"));
        assert!(out.contains("geo-mean"));
        // Ordering holds on the means as well.
        let sb = results.geometric_mean(|r| r.sb);
        let xlwx = results.geometric_mean(|r| r.xlwx);
        if let (Some(a), Some(b)) = (sb, xlwx) {
            assert!(a <= b + 1e-9);
        }
    }
}
