//! Regenerates Figure 4: % of schedulable flow sets vs set size, for the
//! 4×4 (a) and 8×8 (b) platforms, under SB / XLWX / IBN2 / IBN100.
//!
//! ```text
//! cargo run --release -p noc-experiments --bin fig4
//! ```
//!
//! Environment:
//! * `NOC_MPB_SETS` — flow sets per point (default 100, the paper's value);
//! * `NOC_MPB_THREADS` — worker threads (default: available parallelism);
//! * `NOC_MPB_CSV_DIR` — if set, also writes `fig4a.csv` / `fig4b.csv`.

use noc_experiments::chart::{render_curves, Series};
use noc_experiments::prelude::*;
use noc_experiments::table::TextTable;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn to_csv(results: &noc_experiments::fig4::Fig4Results) -> String {
    let mut t = TextTable::new(vec!["n_flows", "sb", "xlwx", "ibn2", "ibn100"]);
    for p in &results.points {
        t.add_row(vec![
            p.n_flows.to_string(),
            format!("{:.1}", p.sb),
            format!("{:.1}", p.xlwx),
            format!("{:.1}", p.ibn_small),
            format!("{:.1}", p.ibn_large),
        ]);
    }
    t.to_csv()
}

fn main() {
    let sets = env_usize("NOC_MPB_SETS", 100);
    let threads = env_usize("NOC_MPB_THREADS", default_threads());
    let csv_dir = std::env::var("NOC_MPB_CSV_DIR").ok();

    for (label, mut cfg, csv_name) in [
        ("(a) 4x4", Fig4Config::paper_4x4(), "fig4a.csv"),
        ("(b) 8x8", Fig4Config::paper_8x8(), "fig4b.csv"),
    ] {
        cfg.sets_per_point = sets;
        cfg.threads = threads;
        eprintln!(
            "fig4 {label}: {} points x {} sets, {} threads ...",
            cfg.flow_counts.len(),
            cfg.sets_per_point,
            cfg.threads
        );
        let start = std::time::Instant::now();
        let results = fig4::run(&cfg);
        eprintln!("  done in {:.1}s", start.elapsed().as_secs_f64());
        println!("Figure 4{label}: % schedulable flow sets\n");
        println!("{}", fig4::render(&results, &cfg));
        let labels: Vec<String> = results
            .points
            .iter()
            .map(|p| p.n_flows.to_string())
            .collect();
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let pick = |f: fn(&noc_experiments::fig4::Fig4Point) -> f64| {
            results.points.iter().map(f).collect::<Vec<f64>>()
        };
        println!(
            "{}",
            render_curves(
                &[
                    Series {
                        glyph: 'x',
                        name: "XLWX".into(),
                        values: pick(|p| p.xlwx)
                    },
                    Series {
                        glyph: 'L',
                        name: format!("IBN{}", cfg.buffer_large),
                        values: pick(|p| p.ibn_large)
                    },
                    Series {
                        glyph: 'i',
                        name: format!("IBN{}", cfg.buffer_small),
                        values: pick(|p| p.ibn_small)
                    },
                    Series {
                        glyph: 's',
                        name: "SB".into(),
                        values: pick(|p| p.sb)
                    },
                ],
                &label_refs,
            )
        );
        println!(
            "max IBN{} - XLWX gap: {:.0} percentage points (paper: up to {}%)\n",
            cfg.buffer_small,
            fig4::max_ibn_xlwx_gap(&results),
            if label.contains("4x4") { 58 } else { 45 },
        );
        if let Some(dir) = &csv_dir {
            let path = std::path::Path::new(dir).join(csv_name);
            std::fs::create_dir_all(dir).expect("create CSV dir");
            std::fs::write(&path, to_csv(&results)).expect("write CSV");
            eprintln!("  wrote {}", path.display());
        }
    }
}
