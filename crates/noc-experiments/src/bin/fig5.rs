//! Regenerates Figure 5: % of schedulable AV-benchmark mappings per
//! topology (26 meshes, 2×2 .. 10×10) under XLWX / IBN2 / IBN100.
//!
//! ```text
//! cargo run --release -p noc-experiments --bin fig5
//! ```
//!
//! Environment:
//! * `NOC_MPB_MAPPINGS` — mappings per topology (default 100);
//! * `NOC_MPB_THREADS` — worker threads;
//! * `NOC_MPB_CSV_DIR` — if set, also writes `fig5.csv`.

use noc_experiments::chart::{render_curves, Series};
use noc_experiments::prelude::*;
use noc_experiments::table::TextTable;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let mut cfg = Fig5Config::paper();
    cfg.mappings_per_topology = env_usize("NOC_MPB_MAPPINGS", 100);
    cfg.threads = env_usize("NOC_MPB_THREADS", default_threads());
    eprintln!(
        "fig5: {} topologies x {} mappings, {} threads ...",
        cfg.topologies.len(),
        cfg.mappings_per_topology,
        cfg.threads
    );
    let start = std::time::Instant::now();
    let results = fig5::run(&cfg);
    eprintln!("  done in {:.1}s", start.elapsed().as_secs_f64());
    println!("Figure 5: % schedulable AV-benchmark mappings\n");
    println!("{}", fig5::render(&results, &cfg));
    let labels: Vec<String> = results.points.iter().map(|p| p.dims.to_string()).collect();
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let pick = |f: fn(&noc_experiments::fig5::Fig5Point) -> f64| {
        results.points.iter().map(f).collect::<Vec<f64>>()
    };
    println!(
        "{}",
        render_curves(
            &[
                Series {
                    glyph: 'x',
                    name: "XLWX".into(),
                    values: pick(|p| p.xlwx)
                },
                Series {
                    glyph: 'L',
                    name: format!("IBN{}", cfg.buffer_large),
                    values: pick(|p| p.ibn_large)
                },
                Series {
                    glyph: 'i',
                    name: format!("IBN{}", cfg.buffer_small),
                    values: pick(|p| p.ibn_small)
                },
            ],
            &label_refs,
        )
    );
    println!(
        "max IBN{} - XLWX gap: {:.0} percentage points (paper: up to 67%)",
        cfg.buffer_small,
        fig5::max_ibn_xlwx_gap(&results)
    );
    if let Ok(dir) = std::env::var("NOC_MPB_CSV_DIR") {
        let mut t = TextTable::new(vec!["topology", "xlwx", "ibn2", "ibn100"]);
        for p in &results.points {
            t.add_row(vec![
                p.dims.to_string(),
                format!("{:.1}", p.xlwx),
                format!("{:.1}", p.ibn_small),
                format!("{:.1}", p.ibn_large),
            ]);
        }
        let path = std::path::Path::new(&dir).join("fig5.csv");
        std::fs::create_dir_all(&dir).expect("create CSV dir");
        std::fs::write(&path, t.to_csv()).expect("write CSV");
        eprintln!("  wrote {}", path.display());
    }
}
