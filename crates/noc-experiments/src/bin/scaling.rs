//! Extension experiment: breakdown-factor comparison across analyses — a
//! continuous measure of tightness (the smallest uniform period scaling
//! that makes each set schedulable; smaller is tighter).
//!
//! ```text
//! cargo run --release -p noc-experiments --bin scaling
//! ```
//!
//! Environment:
//! * `NOC_MPB_SETS` — flow sets (default 50);
//! * `NOC_MPB_FLOWS` — flows per set (default 160);
//! * `NOC_MPB_THREADS` — worker threads.

use noc_experiments::prelude::*;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let mut cfg = ScalingConfig::paper();
    cfg.sets = env_usize("NOC_MPB_SETS", cfg.sets);
    cfg.n_flows = env_usize("NOC_MPB_FLOWS", cfg.n_flows);
    cfg.threads = env_usize("NOC_MPB_THREADS", default_threads());
    eprintln!(
        "breakdown scaling: {} sets of {} flows on {}x{} ...",
        cfg.sets, cfg.n_flows, cfg.mesh_width, cfg.mesh_height
    );
    let start = std::time::Instant::now();
    let results = scaling::run(&cfg);
    eprintln!("  done in {:.1}s", start.elapsed().as_secs_f64());
    println!(
        "Breakdown factors ({} sets of {} flows on {}x{}; smaller = tighter):\n",
        cfg.sets, cfg.n_flows, cfg.mesh_width, cfg.mesh_height
    );
    println!("{}", scaling::render(&results, &cfg));
    println!(
        "A factor of 1.0 means \"schedulable exactly as generated\"; the gap\n\
         between the IBN and XLWX rows is the certified-capacity advantage of\n\
         the buffer-aware analysis, and the SB row is the (unsafe) floor."
    );
}
