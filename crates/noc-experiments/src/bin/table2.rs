//! Regenerates Tables I and II of the paper (didactic example, §V).
//!
//! ```text
//! cargo run --release -p noc-experiments --bin table2
//! ```
//!
//! Environment:
//! * `NOC_MPB_SWEEP_STEP` — offset-sweep granularity in cycles (default 1,
//!   the exhaustive search).

use noc_experiments::table2;

fn main() {
    let step: u64 = std::env::var("NOC_MPB_SWEEP_STEP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    println!("TABLE I: Flow parameters\n");
    println!("{}", table2::render_table_i());
    println!("TABLE II: Analysis and simulation results (offset sweep step = {step})\n");
    let results = table2::run(step);
    println!("{}", table2::render_table_ii(&results));
    println!("Paper values for comparison:");
    println!("  R_SB   = [62, 328, 336]   R_XLWX = [62, 328, 460]");
    println!("  R_IBN  = [62, 328, 396] (b=10), [62, 328, 348] (b=2)");
    println!("  R_sim  = [62, 324, 352] (b=10), [62, 324, 336] (b=2)");
}
