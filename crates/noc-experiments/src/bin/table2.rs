//! Regenerates Tables I and II of the paper (didactic example, §V).
//!
//! ```text
//! cargo run --release -p noc-experiments --bin table2
//! ```
//!
//! By default the `R^sim` columns use the pruned critical-instant offset
//! search (same worst cases as the paper's exhaustive sweep, ~10× fewer
//! simulations). Environment:
//!
//! * `NOC_MPB_SWEEP_EXHAUSTIVE=1` — restore the exhaustive offset sweep;
//! * `NOC_MPB_SWEEP_STEP` — offset-sweep granularity in cycles for the
//!   exhaustive mode (default 1); setting it implies the exhaustive mode.

use noc_experiments::table2;

fn main() {
    println!("TABLE I: Flow parameters\n");
    println!("{}", table2::render_table_i());
    let results = table2::run_from_env();
    match results.mode {
        table2::SweepMode::Exhaustive { step } => println!(
            "TABLE II: Analysis and simulation results (exhaustive sweep, step = {step}, {} sims)\n",
            results.sweep_b10.simulations + results.sweep_b2.simulations
        ),
        table2::SweepMode::Critical => println!(
            "TABLE II: Analysis and simulation results (critical-instant sweep, {} sims; \
             NOC_MPB_SWEEP_EXHAUSTIVE=1 restores the full sweep)\n",
            results.sweep_b10.simulations + results.sweep_b2.simulations
        ),
    }
    println!("{}", table2::render_table_ii(&results));
    println!("Paper values for comparison:");
    println!("  R_SB   = [62, 328, 336]   R_XLWX = [62, 328, 460]");
    println!("  R_IBN  = [62, 328, 396] (b=10), [62, 328, 348] (b=2)");
    println!("  R_sim  = [62, 324, 352] (b=10), [62, 324, 336] (b=2)");
}
