//! Regenerates the paper's §VI buffer-size observation: IBN schedulability
//! decreases monotonically as router buffers grow from 2 to 100 flits.
//!
//! ```text
//! cargo run --release -p noc-experiments --bin buffer_sweep
//! ```
//!
//! Environment:
//! * `NOC_MPB_SETS` — flow sets per depth (default 100);
//! * `NOC_MPB_FLOWS` — flows per set (default 160, where Figure 4(a)
//!   separates the analyses);
//! * `NOC_MPB_THREADS` — worker threads.

use noc_experiments::prelude::*;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let mut cfg = BufferSweepConfig::paper();
    cfg.sets = env_usize("NOC_MPB_SETS", 100);
    cfg.n_flows = env_usize("NOC_MPB_FLOWS", cfg.n_flows);
    cfg.threads = env_usize("NOC_MPB_THREADS", default_threads());
    eprintln!(
        "buffer sweep: {} depths x {} sets of {} flows on {}x{} ...",
        cfg.buffer_depths.len(),
        cfg.sets,
        cfg.n_flows,
        cfg.mesh_width,
        cfg.mesh_height
    );
    let start = std::time::Instant::now();
    let results = buffer_sweep::run(&cfg);
    eprintln!("  done in {:.1}s", start.elapsed().as_secs_f64());
    println!(
        "Buffer-depth sweep ({} flows on {}x{}): % schedulable flow sets\n",
        cfg.n_flows, cfg.mesh_width, cfg.mesh_height
    );
    println!("{}", buffer_sweep::render(&results));
    println!(
        "The paper reports (§VI) that schedulability decreases monotonically\n\
         with buffer size in every configuration tested; the IBN column above\n\
         should be non-increasing and lower-bounded by the XLWX row."
    );
}
