//! Minimal aligned-text table and CSV rendering for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned text table with an optional CSV rendering.
///
/// # Examples
///
/// ```
/// # use noc_experiments::table::TextTable;
/// let mut t = TextTable::new(vec!["flow", "C", "T"]);
/// t.add_row(vec!["τ1".into(), "62".into(), "200".into()]);
/// let text = t.render();
/// assert!(text.contains("flow"));
/// assert!(text.contains("τ1"));
/// assert_eq!(t.to_csv().lines().count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table with a header separator.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i] - cell.chars().count();
                out.push_str(cell);
                for _ in 0..pad {
                    out.push(' ');
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        for _ in 0..total {
            out.push('-');
        }
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }

    /// Renders the table as CSV (comma-separated, no quoting — cells are
    /// numeric or simple identifiers).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.add_row(vec!["xxxxx".into(), "1".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a      long-header"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxxx  1"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = TextTable::new(vec!["n", "pct"]);
        t.add_row(vec!["40".into(), "100.0".into()]);
        t.add_row(vec!["60".into(), "97.0".into()]);
        assert_eq!(t.to_csv(), "n,pct\n40,100.0\n60,97.0\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = TextTable::new(vec!["a"]);
        t.add_row(vec!["1".into(), "2".into()]);
    }
}
