//! Experiment T1/T2: the didactic example — Tables I and II of the paper.
//!
//! Reproduces the analytical bounds R_SB, R_XLWX, R_IBN(b=10), R_IBN(b=2)
//! and the simulated worst observed latencies R^sim(b=10), R^sim(b=2) for
//! the three flows of Figure 3.

use noc_analysis::prelude::*;
use noc_model::prelude::*;
use noc_sim::prelude::*;
use noc_workload::didactic::{self, DidacticFlows, TABLE_I};

use crate::table::TextTable;

/// Results of the didactic experiment for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Row {
    /// Flow index (0 → τ1, 1 → τ2, 2 → τ3).
    pub flow: usize,
    /// Shi & Burns bound (buffer-independent).
    pub r_sb: u64,
    /// XLWX bound (buffer-independent).
    pub r_xlwx: u64,
    /// IBN bound with 10-flit buffers.
    pub r_ibn_b10: u64,
    /// IBN bound with 2-flit buffers.
    pub r_ibn_b2: u64,
    /// Worst observed latency with 10-flit buffers.
    pub sim_b10: u64,
    /// Worst observed latency with 2-flit buffers.
    pub sim_b2: u64,
}

/// Full results of the didactic experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Results {
    /// One row per flow, in τ1, τ2, τ3 order.
    pub rows: Vec<Table2Row>,
    /// Offset step used for the simulation sweep (1 = exhaustive).
    pub sweep_step: u64,
}

/// Worst observed latencies [τ1, τ2, τ3] under a sweep of τ1's release
/// offset over its period in steps of `step` cycles.
pub fn simulate_worst(buffer: u32, step: u64) -> [u64; 3] {
    assert!(step >= 1, "sweep step must be at least one cycle");
    let f = DidacticFlows::ids();
    let sys = didactic::system(buffer);
    let period_tau1 = sys.flow(f.tau1).period().as_u64();
    let mut worst = [0u64; 3];
    let mut offset = 0;
    while offset < period_tau1 {
        let plan = ReleasePlan::synchronous(&sys).with_offset(f.tau1, Cycles::new(offset));
        let mut sim = Simulator::new(&sys, plan);
        sim.run_until(Cycles::new(18_000));
        for (slot, id) in [f.tau1, f.tau2, f.tau3].iter().enumerate() {
            if let Some(w) = sim.flow_stats(*id).worst_latency() {
                worst[slot] = worst[slot].max(w.as_u64());
            }
        }
        offset += step;
    }
    worst
}

/// Runs the full didactic experiment. `sweep_step = 1` reproduces the
/// exhaustive offset search (a few hundred short simulations).
pub fn run(sweep_step: u64) -> Table2Results {
    let bounds = |analysis: &dyn Analysis, buffer: u32| -> [u64; 3] {
        let sys = didactic::system(buffer);
        let report = analysis.analyze(&sys).expect("didactic system analyses");
        let f = DidacticFlows::ids();
        [f.tau1, f.tau2, f.tau3].map(|id| report.response_time(id).expect("schedulable").as_u64())
    };
    let sb = bounds(&ShiBurns, 2);
    let xlwx = bounds(&Xlwx, 2);
    let ibn10 = bounds(&BufferAware, 10);
    let ibn2 = bounds(&BufferAware, 2);
    let sim10 = simulate_worst(10, sweep_step);
    let sim2 = simulate_worst(2, sweep_step);
    Table2Results {
        rows: (0..3)
            .map(|i| Table2Row {
                flow: i,
                r_sb: sb[i],
                r_xlwx: xlwx[i],
                r_ibn_b10: ibn10[i],
                r_ibn_b2: ibn2[i],
                sim_b10: sim10[i],
                sim_b2: sim2[i],
            })
            .collect(),
        sweep_step,
    }
}

/// Renders Table I (the flow parameters).
pub fn render_table_i() -> String {
    let sys = didactic::system(2);
    let f = DidacticFlows::ids();
    let mut t = TextTable::new(vec!["flow", "C (L, |route|)", "T", "D", "J", "P"]);
    for (i, id) in [f.tau1, f.tau2, f.tau3].iter().enumerate() {
        let (p, l, period, d, j) = TABLE_I[i];
        t.add_row(vec![
            format!("τ{}", i + 1),
            format!(
                "{} ({}, {})",
                sys.zero_load_latency(*id).as_u64(),
                l,
                sys.route(*id).len()
            ),
            period.to_string(),
            d.to_string(),
            j.to_string(),
            p.to_string(),
        ]);
    }
    t.render()
}

/// Renders Table II (analysis and simulation results).
pub fn render_table_ii(results: &Table2Results) -> String {
    let mut t = TextTable::new(vec![
        "flow",
        "R_SB",
        "R_XLWX",
        "R_IBN b=10",
        "R_IBN b=2",
        "R_sim b=10",
        "R_sim b=2",
    ]);
    for row in &results.rows {
        t.add_row(vec![
            format!("τ{}", row.flow + 1),
            row.r_sb.to_string(),
            row.r_xlwx.to_string(),
            row.r_ibn_b10.to_string(),
            row.r_ibn_b2.to_string(),
            row.sim_b10.to_string(),
            row.sim_b2.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytical_columns_match_paper() {
        // Coarse sweep keeps the test fast; analytical columns are exact.
        let r = run(20);
        let tau3 = r.rows[2];
        assert_eq!(tau3.r_sb, 336);
        assert_eq!(tau3.r_xlwx, 460);
        assert_eq!(tau3.r_ibn_b10, 396);
        assert_eq!(tau3.r_ibn_b2, 348);
        assert_eq!(r.rows[0].r_sb, 62);
        assert_eq!(r.rows[1].r_sb, 328);
    }

    #[test]
    fn simulation_below_safe_bounds() {
        let r = run(20);
        for row in &r.rows {
            assert!(row.sim_b10 <= row.r_ibn_b10);
            assert!(row.sim_b2 <= row.r_ibn_b2);
        }
    }

    #[test]
    fn tables_render() {
        let t1 = render_table_i();
        assert!(t1.contains("62 (60, 3)"));
        assert!(t1.contains("204 (198, 7)"));
        assert!(t1.contains("132 (128, 5)"));
        let r = run(50);
        let t2 = render_table_ii(&r);
        assert!(t2.contains("460"));
        assert!(t2.contains("τ3"));
    }
}
