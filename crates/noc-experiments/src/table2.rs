//! Experiment T1/T2: the didactic example — Tables I and II of the paper.
//!
//! Reproduces the analytical bounds R_SB, R_XLWX, R_IBN(b=10), R_IBN(b=2)
//! and the simulated worst observed latencies R^sim(b=10), R^sim(b=2) for
//! the three flows of Figure 3.
//!
//! The `R^sim` columns come from sweeping τ1's release offset over its
//! period. Two [`SweepMode`]s are supported: the paper's exhaustive grid
//! and (the default) the pruned critical-instant candidate enumeration of
//! [`noc_sim::search::critical_offset_candidates`], which reproduces the
//! same worst cases in ~10× fewer simulations. Set
//! `NOC_MPB_SWEEP_EXHAUSTIVE=1` (or an explicit `NOC_MPB_SWEEP_STEP`) to
//! restore the grid in [`run_from_env`].

use noc_analysis::prelude::*;
use noc_model::prelude::*;
use noc_sim::prelude::*;
use noc_workload::didactic::{self, DidacticFlows, TABLE_I};

use crate::table::TextTable;

/// Results of the didactic experiment for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Row {
    /// Flow index (0 → τ1, 1 → τ2, 2 → τ3).
    pub flow: usize,
    /// Shi & Burns bound (buffer-independent).
    pub r_sb: u64,
    /// XLWX bound (buffer-independent).
    pub r_xlwx: u64,
    /// IBN bound with 10-flit buffers.
    pub r_ibn_b10: u64,
    /// IBN bound with 2-flit buffers.
    pub r_ibn_b2: u64,
    /// Worst observed latency with 10-flit buffers.
    pub sim_b10: u64,
    /// Worst observed latency with 2-flit buffers.
    pub sim_b2: u64,
}

/// How the τ1 release-offset space of the didactic sweep is searched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Every offset in `0..T₁` in steps of `step` cycles (`step = 1` is the
    /// paper's exhaustive search).
    Exhaustive {
        /// Offset increment in cycles (≥ 1).
        step: u64,
    },
    /// Only the critical-instant candidates of
    /// [`noc_sim::search::critical_offset_candidates`] — offsets at which
    /// some interferer's alignment changes. The `sweep_equivalence`
    /// integration test pins this mode against `Exhaustive { step: 1 }`.
    Critical,
}

/// Result of the offset sweep for one buffer depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Worst observed latency per flow, in [τ1, τ2, τ3] order.
    pub worst: [u64; 3],
    /// The first τ1 offset (in sweep order) at which each flow's worst
    /// latency was observed.
    pub worst_offsets: [u64; 3],
    /// Number of simulations run.
    pub simulations: usize,
}

/// Full results of the didactic experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Results {
    /// One row per flow, in τ1, τ2, τ3 order.
    pub rows: Vec<Table2Row>,
    /// Offset-search strategy used for the simulation columns.
    pub mode: SweepMode,
    /// Sweep details for the 10-flit-buffer simulation.
    pub sweep_b10: SweepOutcome,
    /// Sweep details for the 2-flit-buffer simulation.
    pub sweep_b2: SweepOutcome,
}

/// Worst observed latencies (and the offsets producing them) for the three
/// didactic flows under a sweep of τ1's release offset over its period.
///
/// All offsets of one sweep run through a single [`BatchSimulator`]: the
/// system's simulation layout is precomputed once and one state allocation
/// is reused per candidate plan.
pub fn simulate_worst(buffer: u32, mode: SweepMode) -> SweepOutcome {
    let f = DidacticFlows::ids();
    let sys = didactic::system(buffer);
    let period_tau1 = sys.flow(f.tau1).period().as_u64();
    let offsets: Vec<u64> = match mode {
        SweepMode::Exhaustive { step } => {
            assert!(step >= 1, "sweep step must be at least one cycle");
            (0..period_tau1)
                .step_by(usize::try_from(step).unwrap_or(usize::MAX))
                .collect()
        }
        SweepMode::Critical => critical_offset_candidates(&sys, f.tau1, Cycles::new(period_tau1))
            .into_iter()
            .map(|c| c.as_u64())
            .collect(),
    };
    let mut worst = [0u64; 3];
    let mut worst_offsets = [0u64; 3];
    let mut batch = BatchSimulator::new(&sys);
    for &offset in &offsets {
        let plan = ReleasePlan::synchronous(&sys).with_offset(f.tau1, Cycles::new(offset));
        let stats = batch.run(&plan, Cycles::new(18_000));
        for (slot, id) in [f.tau1, f.tau2, f.tau3].iter().enumerate() {
            if let Some(w) = stats[id.index()].worst_latency() {
                if w.as_u64() > worst[slot] {
                    worst[slot] = w.as_u64();
                    worst_offsets[slot] = offset;
                }
            }
        }
    }
    SweepOutcome {
        worst,
        worst_offsets,
        simulations: offsets.len(),
    }
}

/// Runs the full didactic experiment with an exhaustive offset sweep in
/// steps of `sweep_step` cycles (`1` reproduces the paper's search, a few
/// hundred short simulations). See [`run_with`] for the pruned search.
pub fn run(sweep_step: u64) -> Table2Results {
    run_with(SweepMode::Exhaustive { step: sweep_step })
}

/// Runs the full didactic experiment with the given [`SweepMode`].
///
/// The four analytical columns share one [`AnalysisContext`] (rebased
/// between the 2- and 10-flit systems); the simulation columns sweep τ1's
/// offset according to `mode`.
pub fn run_with(mode: SweepMode) -> Table2Results {
    let f = DidacticFlows::ids();
    let sys2 = didactic::system(2);
    let ctx2 = AnalysisContext::new(&sys2).expect("didactic system analyses");
    let sys10 = sys2.with_buffer_depth(10);
    let ctx10 = ctx2.rebased(&sys10);
    let bounds = |analysis: &dyn Analysis, ctx: &AnalysisContext<'_>| -> [u64; 3] {
        let report = analysis
            .analyze_with(ctx)
            .expect("didactic system analyses");
        [f.tau1, f.tau2, f.tau3].map(|id| report.response_time(id).expect("schedulable").as_u64())
    };
    let sb = bounds(&ShiBurns, &ctx2);
    let xlwx = bounds(&Xlwx, &ctx2);
    let ibn10 = bounds(&BufferAware, &ctx10);
    let ibn2 = bounds(&BufferAware, &ctx2);
    let sweep_b10 = simulate_worst(10, mode);
    let sweep_b2 = simulate_worst(2, mode);
    Table2Results {
        rows: (0..3)
            .map(|i| Table2Row {
                flow: i,
                r_sb: sb[i],
                r_xlwx: xlwx[i],
                r_ibn_b10: ibn10[i],
                r_ibn_b2: ibn2[i],
                sim_b10: sweep_b10.worst[i],
                sim_b2: sweep_b2.worst[i],
            })
            .collect(),
        mode,
        sweep_b10,
        sweep_b2,
    }
}

/// Runs the didactic experiment with the sweep mode selected by the
/// environment, the policy of the `table2` binary:
///
/// * `NOC_MPB_SWEEP_EXHAUSTIVE=1` — exhaustive grid, stepped by
///   `NOC_MPB_SWEEP_STEP` (default 1);
/// * `NOC_MPB_SWEEP_STEP=n` alone — exhaustive grid in steps of `n`
///   (backwards-compatible with the pre-pruning binary); a set-but-unparsable
///   value still selects the exhaustive grid, at step 1;
/// * neither — the pruned [`SweepMode::Critical`] search.
pub fn run_from_env() -> Table2Results {
    let exhaustive = std::env::var("NOC_MPB_SWEEP_EXHAUSTIVE")
        .is_ok_and(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"));
    let step: Option<u64> = std::env::var("NOC_MPB_SWEEP_STEP")
        .ok()
        .map(|v| v.parse().unwrap_or(1));
    match (exhaustive, step) {
        (true, step) => run_with(SweepMode::Exhaustive {
            step: step.unwrap_or(1),
        }),
        (false, Some(step)) => run_with(SweepMode::Exhaustive { step }),
        (false, None) => run_with(SweepMode::Critical),
    }
}

/// Renders Table I (the flow parameters).
pub fn render_table_i() -> String {
    let sys = didactic::system(2);
    let f = DidacticFlows::ids();
    let mut t = TextTable::new(vec!["flow", "C (L, |route|)", "T", "D", "J", "P"]);
    for (i, id) in [f.tau1, f.tau2, f.tau3].iter().enumerate() {
        let (p, l, period, d, j) = TABLE_I[i];
        t.add_row(vec![
            format!("τ{}", i + 1),
            format!(
                "{} ({}, {})",
                sys.zero_load_latency(*id).as_u64(),
                l,
                sys.route(*id).len()
            ),
            period.to_string(),
            d.to_string(),
            j.to_string(),
            p.to_string(),
        ]);
    }
    t.render()
}

/// Renders Table II (analysis and simulation results).
pub fn render_table_ii(results: &Table2Results) -> String {
    let mut t = TextTable::new(vec![
        "flow",
        "R_SB",
        "R_XLWX",
        "R_IBN b=10",
        "R_IBN b=2",
        "R_sim b=10",
        "R_sim b=2",
    ]);
    for row in &results.rows {
        t.add_row(vec![
            format!("τ{}", row.flow + 1),
            row.r_sb.to_string(),
            row.r_xlwx.to_string(),
            row.r_ibn_b10.to_string(),
            row.r_ibn_b2.to_string(),
            row.sim_b10.to_string(),
            row.sim_b2.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytical_columns_match_paper() {
        // Coarse sweep keeps the test fast; analytical columns are exact.
        let r = run(20);
        let tau3 = r.rows[2];
        assert_eq!(tau3.r_sb, 336);
        assert_eq!(tau3.r_xlwx, 460);
        assert_eq!(tau3.r_ibn_b10, 396);
        assert_eq!(tau3.r_ibn_b2, 348);
        assert_eq!(r.rows[0].r_sb, 62);
        assert_eq!(r.rows[1].r_sb, 328);
    }

    #[test]
    fn simulation_below_safe_bounds() {
        let r = run(20);
        for row in &r.rows {
            assert!(row.sim_b10 <= row.r_ibn_b10);
            assert!(row.sim_b2 <= row.r_ibn_b2);
        }
    }

    #[test]
    fn tables_render() {
        let t1 = render_table_i();
        assert!(t1.contains("62 (60, 3)"));
        assert!(t1.contains("204 (198, 7)"));
        assert!(t1.contains("132 (128, 5)"));
        let r = run(50);
        let t2 = render_table_ii(&r);
        assert!(t2.contains("460"));
        assert!(t2.contains("τ3"));
    }

    #[test]
    fn critical_mode_prunes_the_sweep() {
        let pruned = run_with(SweepMode::Critical);
        assert_eq!(pruned.mode, SweepMode::Critical);
        // τ1's period is 200, so the exhaustive step-1 grid is 200 sims per
        // buffer depth; the acceptance bar is at least a 5× reduction.
        assert!(
            pruned.sweep_b2.simulations * 5 <= 200,
            "pruned sweep ran {} sims",
            pruned.sweep_b2.simulations
        );
        assert_eq!(pruned.sweep_b10.simulations, pruned.sweep_b2.simulations);
        // Analytical columns are sweep-independent and exact.
        assert_eq!(pruned.rows[2].r_xlwx, 460);
        assert_eq!(pruned.rows[2].r_ibn_b2, 348);
    }

    #[test]
    fn sweep_records_offsets_that_reproduce_the_worst_case() {
        let outcome = simulate_worst(2, SweepMode::Critical);
        let f = DidacticFlows::ids();
        let sys = didactic::system(2);
        for (slot, id) in [f.tau1, f.tau2, f.tau3].iter().enumerate() {
            let plan = ReleasePlan::synchronous(&sys)
                .with_offset(f.tau1, Cycles::new(outcome.worst_offsets[slot]));
            let mut sim = Simulator::new(&sys, plan);
            sim.run_until(Cycles::new(18_000));
            assert_eq!(
                sim.flow_stats(*id).worst_latency().map(|c| c.as_u64()),
                Some(outcome.worst[slot]),
                "recorded offset does not reproduce the worst case for slot {slot}"
            );
        }
    }
}
