//! Experiment harness reproducing every table and figure of the DATE 2018
//! buffer-aware MPB paper.
//!
//! # Module map (code ↔ paper)
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`table2`] | Tables I & II (didactic example, §V), incl. the `R^sim` offset sweep |
//! | [`fig4`] | Figure 4(a)/(b): % schedulable flow sets vs set size |
//! | [`fig5`] | Figure 5: AV benchmark across 26 topologies |
//! | [`buffer_sweep`] | §VI remark: schedulability vs buffer depth 2..100 |
//! | [`scaling`] | extension: breakdown-factor comparison (continuous tightness) |
//! | [`runner`] | deterministic thread-parallel map (`NOC_MPB_THREADS` workers) |
//! | [`table`], [`chart`] | text rendering of the paper's rows/series |
//!
//! Each experiment exposes a `Config` (with the paper's parameters as the
//! default constructor and a `reduced()` scaler for quick runs), a `run`
//! function returning plain-data results, and a `render` function printing
//! the same rows/series the paper reports. Runner binaries live in
//! `src/bin/`; scale them with the environment variables documented there
//! (and tabulated in the repository README).
//!
//! # Shared analysis context
//!
//! Every harness derives the interference structure of a flow set **once**
//! as an [`noc_analysis::AnalysisContext`] and runs all analyses — and all
//! buffer-depth/period-scale variants, via
//! [`noc_analysis::AnalysisContext::rebase`] — against it. The
//! `context_equivalence` integration test pins this cached path bit-for-bit
//! against per-call derivation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buffer_sweep;
pub mod chart;
pub mod fig4;
pub mod fig5;
pub mod runner;
pub mod scaling;
pub mod table;
pub mod table2;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::buffer_sweep::{self, BufferSweepConfig};
    pub use crate::chart::{render_curves, Series};
    pub use crate::fig4::{self, Fig4Config};
    pub use crate::fig5::{self, Fig5Config};
    pub use crate::runner::{default_threads, par_map_indexed};
    pub use crate::scaling::{self, breakdown_factor, breakdown_factor_with, ScalingConfig};
    pub use crate::table::TextTable;
    pub use crate::table2;
}
