//! Experiment F4: large-scale schedulability comparison (Figure 4).
//!
//! For flow sets of increasing size on a 4×4 (a) and an 8×8 (b) platform,
//! the percentage of fully schedulable sets under SB (unsafe baseline),
//! XLWX (safe baseline), IBN with 2-flit buffers and IBN with 100-flit
//! buffers.
//!
//! The inclusion `sched(XLWX) ⊆ sched(IBN100) ⊆ sched(IBN2)` lets the
//! harness evaluate the safe analyses lazily (cheapest sufficient check
//! first); [`Fig4Config::exhaustive`] disables the shortcut for
//! benchmarking, and a unit test asserts both modes agree.
//!
//! Each generated flow set builds one [`AnalysisContext`]; all analyses and
//! both buffer depths share its interference graph.

use noc_analysis::prelude::*;
use noc_model::system::System;
use noc_workload::synthetic::SyntheticSpec;

use crate::runner::{default_threads, par_map_indexed};
use crate::table::TextTable;

/// Configuration of a Figure-4 style sweep.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Mesh width.
    pub mesh_width: u16,
    /// Mesh height.
    pub mesh_height: u16,
    /// The x-axis: flow-set sizes.
    pub flow_counts: Vec<usize>,
    /// Flow sets generated per point.
    pub sets_per_point: usize,
    /// Base RNG seed; set `s` of point `n` uses seed `base ⊕ (n, s)`.
    pub seed_base: u64,
    /// Small buffer depth (paper: 2).
    pub buffer_small: u32,
    /// Large buffer depth (paper: 100).
    pub buffer_large: u32,
    /// Worker threads.
    pub threads: usize,
    /// Evaluate all four analyses on every set instead of using the
    /// schedulability inclusions.
    pub exhaustive: bool,
}

impl Fig4Config {
    /// Figure 4(a): the 4×4 platform, 40–420 flows.
    pub fn paper_4x4() -> Fig4Config {
        Fig4Config {
            mesh_width: 4,
            mesh_height: 4,
            flow_counts: (40..=420).step_by(20).collect(),
            sets_per_point: 100,
            seed_base: 0x4A4A,
            buffer_small: 2,
            buffer_large: 100,
            threads: default_threads(),
            exhaustive: false,
        }
    }

    /// Figure 4(b): the 8×8 platform, 80–520 flows.
    pub fn paper_8x8() -> Fig4Config {
        Fig4Config {
            mesh_width: 8,
            mesh_height: 8,
            flow_counts: (80..=520).step_by(20).collect(),
            sets_per_point: 100,
            seed_base: 0x8B8B,
            ..Fig4Config::paper_4x4()
        }
    }

    /// Scales the experiment down (fewer points/sets) for quick runs.
    #[must_use]
    pub fn reduced(mut self, points: usize, sets: usize) -> Fig4Config {
        let stride = (self.flow_counts.len() / points.max(1)).max(1);
        self.flow_counts = self
            .flow_counts
            .iter()
            .copied()
            .step_by(stride)
            .take(points)
            .collect();
        self.sets_per_point = sets;
        self
    }
}

/// Schedulability verdict of one flow set under the four analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetVerdicts {
    /// Shi & Burns (unsafe baseline).
    pub sb: bool,
    /// XLWX (safe state of the art).
    pub xlwx: bool,
    /// IBN with the small buffer depth.
    pub ibn_small: bool,
    /// IBN with the large buffer depth.
    pub ibn_large: bool,
}

/// One point of the schedulability curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Point {
    /// Number of flows per set.
    pub n_flows: usize,
    /// % of sets schedulable under SB.
    pub sb: f64,
    /// % under XLWX.
    pub xlwx: f64,
    /// % under IBN(small buffers).
    pub ibn_small: f64,
    /// % under IBN(large buffers).
    pub ibn_large: f64,
}

/// Results of a Figure-4 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Results {
    /// Curve points in x order.
    pub points: Vec<Fig4Point>,
}

/// Evaluates one generated system under all four analyses, building the
/// shared [`AnalysisContext`] internally. Harnesses that already hold a
/// context should call [`judge_set_with`].
pub fn judge_set(
    system: &System,
    buffer_small: u32,
    buffer_large: u32,
    exhaustive: bool,
) -> SetVerdicts {
    let Ok(ctx) = AnalysisContext::new(system) else {
        // A model-assumption violation means no analysis can certify the set.
        return SetVerdicts {
            sb: false,
            xlwx: false,
            ibn_small: false,
            ibn_large: false,
        };
    };
    judge_set_with(&ctx, buffer_small, buffer_large, exhaustive)
}

/// Evaluates one system under all four analyses against a shared context:
/// the interference graph is derived once and reused by every analysis and
/// both buffer depths (via [`AnalysisContext::rebase`]).
pub fn judge_set_with(
    ctx: &AnalysisContext<'_>,
    buffer_small: u32,
    buffer_large: u32,
    exhaustive: bool,
) -> SetVerdicts {
    let schedulable = |analysis: &dyn Analysis, ctx: &AnalysisContext<'_>| {
        analysis
            .analyze_with(ctx)
            .map(|r| r.is_schedulable())
            .unwrap_or(false)
    };
    let small_sys = ctx.system().with_buffer_depth(buffer_small);
    let small = ctx.rebased(&small_sys);
    let sb = schedulable(&ShiBurns, &small);
    if exhaustive {
        let large_sys = ctx.system().with_buffer_depth(buffer_large);
        let large = ctx.rebased(&large_sys);
        return SetVerdicts {
            sb,
            xlwx: schedulable(&Xlwx, &small),
            ibn_small: schedulable(&BufferAware, &small),
            ibn_large: schedulable(&BufferAware, &large),
        };
    }
    // Lazy evaluation along the inclusion chain
    // sched(XLWX) ⊆ sched(IBN_large) ⊆ sched(IBN_small):
    // – an unschedulable IBN_small implies the others are unschedulable;
    // – a schedulable XLWX implies the others are schedulable.
    let ibn_small = schedulable(&BufferAware, &small);
    if !ibn_small {
        return SetVerdicts {
            sb,
            xlwx: false,
            ibn_small: false,
            ibn_large: false,
        };
    }
    let xlwx = schedulable(&Xlwx, &small);
    let ibn_large = if xlwx {
        true
    } else {
        let large_sys = ctx.system().with_buffer_depth(buffer_large);
        let large = ctx.rebased(&large_sys);
        schedulable(&BufferAware, &large)
    };
    SetVerdicts {
        sb,
        xlwx,
        ibn_small,
        ibn_large,
    }
}

/// Runs the sweep.
pub fn run(config: &Fig4Config) -> Fig4Results {
    let points = config
        .flow_counts
        .iter()
        .map(|&n| {
            let spec = SyntheticSpec::paper(
                config.mesh_width,
                config.mesh_height,
                n,
                config.buffer_small,
            );
            let verdicts: Vec<SetVerdicts> =
                par_map_indexed(config.sets_per_point, config.threads, |s| {
                    let seed = config
                        .seed_base
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((n as u64) << 32 | s as u64);
                    let system = spec.generate(seed).into_system();
                    judge_set(
                        &system,
                        config.buffer_small,
                        config.buffer_large,
                        config.exhaustive,
                    )
                });
            let pct = |f: &dyn Fn(&SetVerdicts) -> bool| {
                100.0 * verdicts.iter().filter(|v| f(v)).count() as f64 / verdicts.len() as f64
            };
            Fig4Point {
                n_flows: n,
                sb: pct(&|v| v.sb),
                xlwx: pct(&|v| v.xlwx),
                ibn_small: pct(&|v| v.ibn_small),
                ibn_large: pct(&|v| v.ibn_large),
            }
        })
        .collect();
    Fig4Results { points }
}

/// Renders the curve as an aligned table (one row per x value).
pub fn render(results: &Fig4Results, config: &Fig4Config) -> String {
    let mut t = TextTable::new(vec![
        "#flows".to_string(),
        "SB".to_string(),
        "XLWX".to_string(),
        format!("IBN{}", config.buffer_small),
        format!("IBN{}", config.buffer_large),
    ]);
    for p in &results.points {
        t.add_row(vec![
            p.n_flows.to_string(),
            format!("{:.0}", p.sb),
            format!("{:.0}", p.xlwx),
            format!("{:.0}", p.ibn_small),
            format!("{:.0}", p.ibn_large),
        ]);
    }
    t.render()
}

/// Largest IBN(small) − XLWX gap over the curve, in percentage points (the
/// paper reports up to 58 on 4×4 and 45 on 8×8).
pub fn max_ibn_xlwx_gap(results: &Fig4Results) -> f64 {
    results
        .points
        .iter()
        .map(|p| p.ibn_small - p.xlwx)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Fig4Config {
        Fig4Config {
            flow_counts: vec![60, 140],
            sets_per_point: 12,
            threads: 4,
            ..Fig4Config::paper_4x4()
        }
    }

    #[test]
    fn lazy_and_exhaustive_agree() {
        let mut cfg = small_config();
        let lazy = run(&cfg);
        cfg.exhaustive = true;
        let full = run(&cfg);
        assert_eq!(lazy, full);
    }

    #[test]
    fn percentages_ordered_by_analysis_tightness() {
        let results = run(&small_config());
        for p in &results.points {
            assert!(p.ibn_small >= p.ibn_large, "{p:?}");
            assert!(p.ibn_large >= p.xlwx, "{p:?}");
            assert!(p.sb >= p.ibn_small, "{p:?}");
            assert!((0.0..=100.0).contains(&p.sb));
        }
    }

    #[test]
    fn reduced_trims_points_and_sets() {
        let cfg = Fig4Config::paper_4x4().reduced(4, 5);
        assert_eq!(cfg.flow_counts.len(), 4);
        assert_eq!(cfg.sets_per_point, 5);
    }

    #[test]
    fn render_contains_counts() {
        let cfg = small_config();
        let out = render(&run(&cfg), &cfg);
        assert!(out.contains("60"));
        assert!(out.contains("IBN2"));
        assert!(out.contains("IBN100"));
    }
}
