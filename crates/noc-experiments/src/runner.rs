//! A small deterministic thread-parallel map for embarrassingly parallel
//! experiment sweeps (100 flow sets per point, 100 mappings per topology).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every index in `0..n` across `threads` worker threads and
/// returns the results in index order (fully deterministic regardless of
/// scheduling).
///
/// # Examples
///
/// ```
/// # use noc_experiments::runner::par_map_indexed;
/// let squares = par_map_indexed(8, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
///
/// # Panics
///
/// Panics if `threads == 0` or if a worker panics.
pub fn par_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *results[i].lock().expect("poisoned result slot") = Some(value);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("poisoned result slot")
                .expect("every index was processed")
        })
        .collect()
}

/// Default worker count: the machine's available parallelism, capped at 16.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(16))
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order() {
        let out = par_map_indexed(100, 7, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_works() {
        assert_eq!(par_map_indexed(3, 1, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn zero_items_is_empty() {
        let out: Vec<usize> = par_map_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(par_map_indexed(2, 16, |i| i), vec![0, 1]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
