//! Experiment F5: the AV benchmark across 26 topologies (Figure 5).
//!
//! 100 random mappings of the autonomous-vehicle application onto each mesh
//! from 2×2 to 10×10; the percentage of mappings deemed fully schedulable
//! by XLWX, IBN(b=2) and IBN(b=100).

use noc_analysis::prelude::*;
use noc_model::prelude::*;
use noc_model::topology::MeshDims;
use noc_workload::av::{av_benchmark, AvApplication};
use noc_workload::mapping::random_mapping;
use noc_workload::topologies::fig5_topologies;

use crate::runner::{default_threads, par_map_indexed};
use crate::table::TextTable;

/// Configuration of a Figure-5 style sweep.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Topologies to map onto.
    pub topologies: Vec<MeshDims>,
    /// Random mappings per topology.
    pub mappings_per_topology: usize,
    /// Base RNG seed.
    pub seed_base: u64,
    /// Small buffer depth (paper: 2).
    pub buffer_small: u32,
    /// Large buffer depth (paper: 100).
    pub buffer_large: u32,
    /// Worker threads.
    pub threads: usize,
}

impl Fig5Config {
    /// The paper's setup: 26 topologies × 100 mappings.
    pub fn paper() -> Fig5Config {
        Fig5Config {
            topologies: fig5_topologies(),
            mappings_per_topology: 100,
            seed_base: 0xF1_65,
            buffer_small: 2,
            buffer_large: 100,
            threads: default_threads(),
        }
    }

    /// Scales the experiment down for quick runs.
    #[must_use]
    pub fn reduced(mut self, topologies: usize, mappings: usize) -> Fig5Config {
        let stride = (self.topologies.len() / topologies.max(1)).max(1);
        self.topologies = self
            .topologies
            .iter()
            .copied()
            .step_by(stride)
            .take(topologies)
            .collect();
        self.mappings_per_topology = mappings;
        self
    }
}

/// One bar group of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Point {
    /// Topology size.
    pub dims: MeshDims,
    /// % of mappings schedulable under XLWX.
    pub xlwx: f64,
    /// % under IBN(small buffers).
    pub ibn_small: f64,
    /// % under IBN(large buffers).
    pub ibn_large: f64,
}

/// Results of a Figure-5 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Results {
    /// One point per topology, in x-axis order.
    pub points: Vec<Fig5Point>,
}

fn judge_mapping(
    app: &AvApplication,
    dims: MeshDims,
    config: &Fig5Config,
    seed: u64,
) -> (bool, bool, bool) {
    let noc = NocConfig::builder()
        .buffer_depth(config.buffer_small)
        .link_latency(Cycles::ONE)
        .routing_latency(Cycles::ZERO)
        .build();
    let mapped =
        random_mapping(app, dims.width, dims.height, noc, seed).expect("mesh mapping cannot fail");
    let system = mapped.system();
    // One context per mapping: XLWX and both IBN depths share the graph.
    let Ok(ctx) = AnalysisContext::new(system) else {
        return (false, false, false);
    };
    let schedulable = |analysis: &dyn Analysis, ctx: &AnalysisContext<'_>| {
        analysis
            .analyze_with(ctx)
            .map(|r| r.is_schedulable())
            .unwrap_or(false)
    };
    // Lazy evaluation along sched(XLWX) ⊆ sched(IBN100) ⊆ sched(IBN2).
    let ibn_small = schedulable(&BufferAware, &ctx);
    if !ibn_small {
        return (false, false, false);
    }
    let xlwx = schedulable(&Xlwx, &ctx);
    let ibn_large = xlwx || {
        let large_sys = system.with_buffer_depth(config.buffer_large);
        let large = ctx.rebased(&large_sys);
        schedulable(&BufferAware, &large)
    };
    (xlwx, ibn_small, ibn_large)
}

/// Runs the sweep with the bundled AV benchmark.
pub fn run(config: &Fig5Config) -> Fig5Results {
    let app = av_benchmark();
    let points = config
        .topologies
        .iter()
        .map(|&dims| {
            let verdicts: Vec<(bool, bool, bool)> =
                par_map_indexed(config.mappings_per_topology, config.threads, |s| {
                    let seed = config
                        .seed_base
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((dims.len() as u64) << 32 | s as u64);
                    judge_mapping(&app, dims, config, seed)
                });
            let pct = |f: &dyn Fn(&(bool, bool, bool)) -> bool| {
                100.0 * verdicts.iter().filter(|v| f(v)).count() as f64 / verdicts.len() as f64
            };
            Fig5Point {
                dims,
                xlwx: pct(&|v| v.0),
                ibn_small: pct(&|v| v.1),
                ibn_large: pct(&|v| v.2),
            }
        })
        .collect();
    Fig5Results { points }
}

/// Renders the results as an aligned table (one row per topology).
pub fn render(results: &Fig5Results, config: &Fig5Config) -> String {
    let mut t = TextTable::new(vec![
        "topology".to_string(),
        "XLWX".to_string(),
        format!("IBN{}", config.buffer_small),
        format!("IBN{}", config.buffer_large),
    ]);
    for p in &results.points {
        t.add_row(vec![
            p.dims.to_string(),
            format!("{:.0}", p.xlwx),
            format!("{:.0}", p.ibn_small),
            format!("{:.0}", p.ibn_large),
        ]);
    }
    t.render()
}

/// Largest IBN(small) − XLWX gap in percentage points (the paper reports up
/// to 67).
pub fn max_ibn_xlwx_gap(results: &Fig5Results) -> f64 {
    results
        .points
        .iter()
        .map(|p| p.ibn_small - p.xlwx)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Fig5Config {
        Fig5Config {
            topologies: vec![
                MeshDims {
                    width: 3,
                    height: 3,
                },
                MeshDims {
                    width: 6,
                    height: 6,
                },
            ],
            mappings_per_topology: 10,
            threads: 4,
            ..Fig5Config::paper()
        }
    }

    #[test]
    fn percentages_ordered_by_tightness() {
        let results = run(&small_config());
        assert_eq!(results.points.len(), 2);
        for p in &results.points {
            assert!(p.ibn_small >= p.ibn_large, "{p:?}");
            assert!(p.ibn_large >= p.xlwx, "{p:?}");
        }
    }

    #[test]
    fn reduced_trims() {
        let cfg = Fig5Config::paper().reduced(5, 7);
        assert_eq!(cfg.topologies.len(), 5);
        assert_eq!(cfg.mappings_per_topology, 7);
    }

    #[test]
    fn render_lists_topologies() {
        let cfg = small_config();
        let out = render(&run(&cfg), &cfg);
        assert!(out.contains("3x3"));
        assert!(out.contains("6x6"));
    }
}
