//! Experiment X1: schedulability as a function of buffer depth.
//!
//! §VI of the paper: "We have performed the same experiments with a range
//! of different buffer sizes between 2 and 100 … in every case, the
//! analysis was able to guarantee schedulability of a smaller number of
//! flow sets when considering routers with larger buffers." This
//! experiment reproduces that (unplotted) observation as a table: the
//! percentage of schedulable flow sets under IBN for each buffer depth,
//! with XLWX as the buffer-independent floor.

use noc_analysis::prelude::*;
use noc_workload::synthetic::SyntheticSpec;

use crate::runner::{default_threads, par_map_indexed};
use crate::table::TextTable;

/// Configuration of the buffer-depth sweep.
#[derive(Debug, Clone)]
pub struct BufferSweepConfig {
    /// Mesh width.
    pub mesh_width: u16,
    /// Mesh height.
    pub mesh_height: u16,
    /// Flows per set (pick a value where Figure 4 shows separation).
    pub n_flows: usize,
    /// Buffer depths to evaluate.
    pub buffer_depths: Vec<u32>,
    /// Flow sets per depth.
    pub sets: usize,
    /// Base RNG seed.
    pub seed_base: u64,
    /// Worker threads.
    pub threads: usize,
    /// Optional heterogeneous point: per-router depths drawn uniformly
    /// from this inclusive range (same flow sets, same seeds). `None`
    /// reproduces the paper's uniform-depth sweep exactly.
    pub hetero_range: Option<(u32, u32)>,
}

impl BufferSweepConfig {
    /// The paper's remark: buffers 2..100 on the 4×4 platform, at a load
    /// where Figure 4(a) separates the analyses.
    pub fn paper() -> BufferSweepConfig {
        BufferSweepConfig {
            mesh_width: 4,
            mesh_height: 4,
            n_flows: 160,
            buffer_depths: vec![2, 4, 8, 16, 32, 64, 100],
            sets: 100,
            seed_base: 0xB0F5,
            threads: default_threads(),
            hetero_range: None,
        }
    }

    /// Scales the experiment down for quick runs.
    #[must_use]
    pub fn reduced(mut self, sets: usize) -> BufferSweepConfig {
        self.sets = sets;
        self
    }
}

/// One point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferSweepPoint {
    /// Buffer depth `buf(Ξ)`.
    pub buffer_depth: u32,
    /// % of sets schedulable under IBN at this depth.
    pub ibn: f64,
}

/// Results of the buffer-depth sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferSweepResults {
    /// One point per depth, in ascending depth order.
    pub points: Vec<BufferSweepPoint>,
    /// % of sets schedulable under XLWX (buffer-independent floor).
    pub xlwx: f64,
    /// % of sets schedulable under IBN with heterogeneous per-router
    /// depths, when [`BufferSweepConfig::hetero_range`] is set. Sandwiched
    /// between the uniform sweep at the range's endpoints (per set, a
    /// heterogeneous map's buffered interference lies between the two
    /// uniform extremes).
    pub hetero: Option<(u32, u32, f64)>,
}

/// Runs the sweep.
pub fn run(config: &BufferSweepConfig) -> BufferSweepResults {
    // Generate each set once; one AnalysisContext per set is rebased across
    // every buffer depth (depth never changes the interference graph).
    let spec = SyntheticSpec::paper(config.mesh_width, config.mesh_height, config.n_flows, 2);
    let per_set: Vec<(Vec<bool>, bool, bool)> = par_map_indexed(config.sets, config.threads, |s| {
        let seed = config
            .seed_base
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(s as u64);
        let system = spec.generate(seed).into_system();
        let Ok(ctx) = AnalysisContext::new(&system) else {
            return (vec![false; config.buffer_depths.len()], false, false);
        };
        let ibn: Vec<bool> = config
            .buffer_depths
            .iter()
            .map(|&b| {
                let sys = system.with_buffer_depth(b);
                let depth_ctx = ctx.rebased(&sys);
                BufferAware
                    .analyze_with(&depth_ctx)
                    .map(|r| r.is_schedulable())
                    .unwrap_or(false)
            })
            .collect();
        let xlwx = Xlwx
            .analyze_with(&ctx)
            .map(|r| r.is_schedulable())
            .unwrap_or(false);
        // The heterogeneous point re-generates with the same seed: depth
        // draws happen after every flow draw, so the flow set — and hence
        // the interference graph the context is rebased onto — is
        // identical.
        let hetero = config.hetero_range.is_some_and(|(lo, hi)| {
            let sys = spec
                .clone()
                .with_buffer_depth_range(lo, hi)
                .generate(seed)
                .into_system();
            let hetero_ctx = ctx.rebased(&sys);
            BufferAware
                .analyze_with(&hetero_ctx)
                .map(|r| r.is_schedulable())
                .unwrap_or(false)
        });
        (ibn, xlwx, hetero)
    });
    let n = per_set.len() as f64;
    let points = config
        .buffer_depths
        .iter()
        .enumerate()
        .map(|(i, &buffer_depth)| BufferSweepPoint {
            buffer_depth,
            ibn: 100.0 * per_set.iter().filter(|(ibn, _, _)| ibn[i]).count() as f64 / n,
        })
        .collect();
    let xlwx = 100.0 * per_set.iter().filter(|(_, x, _)| *x).count() as f64 / n;
    let hetero = config.hetero_range.map(|(lo, hi)| {
        (
            lo,
            hi,
            100.0 * per_set.iter().filter(|(_, _, h)| *h).count() as f64 / n,
        )
    });
    BufferSweepResults {
        points,
        xlwx,
        hetero,
    }
}

/// Renders the sweep as a table.
pub fn render(results: &BufferSweepResults) -> String {
    let mut t = TextTable::new(vec!["buf(Ξ)", "% schedulable (IBN)"]);
    for p in &results.points {
        t.add_row(vec![p.buffer_depth.to_string(), format!("{:.0}", p.ibn)]);
    }
    if let Some((lo, hi, pct)) = results.hetero {
        t.add_row(vec![format!("hetero {lo}..={hi}"), format!("{pct:.0}")]);
    }
    t.add_row(vec![
        "XLWX (any buf)".into(),
        format!("{:.0}", results.xlwx),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedulability_monotone_in_buffer_depth() {
        let cfg = BufferSweepConfig {
            n_flows: 120,
            buffer_depths: vec![2, 16, 100],
            sets: 10,
            threads: 4,
            ..BufferSweepConfig::paper()
        };
        let results = run(&cfg);
        for pair in results.points.windows(2) {
            assert!(
                pair[0].ibn >= pair[1].ibn,
                "schedulability should not improve with larger buffers: {pair:?}"
            );
        }
        // IBN at any depth dominates XLWX.
        for p in &results.points {
            assert!(p.ibn >= results.xlwx);
        }
    }

    #[test]
    fn hetero_point_is_sandwiched_by_uniform_extremes() {
        let cfg = BufferSweepConfig {
            n_flows: 120,
            buffer_depths: vec![2, 16],
            sets: 10,
            threads: 4,
            hetero_range: Some((2, 16)),
            ..BufferSweepConfig::paper()
        };
        let results = run(&cfg);
        let (lo, hi, pct) = results.hetero.expect("hetero point requested");
        assert_eq!((lo, hi), (2, 16));
        let at_lo = results.points[0].ibn;
        let at_hi = results.points[1].ibn;
        assert!(
            at_hi <= pct && pct <= at_lo,
            "hetero {pct}% outside uniform sandwich [{at_hi}%, {at_lo}%]"
        );
        assert!(render(&results).contains("hetero 2..=16"));
    }

    #[test]
    fn render_includes_floor() {
        let cfg = BufferSweepConfig {
            n_flows: 60,
            buffer_depths: vec![2, 100],
            sets: 5,
            threads: 2,
            ..BufferSweepConfig::paper()
        };
        let out = render(&run(&cfg));
        assert!(out.contains("XLWX (any buf)"));
    }
}
