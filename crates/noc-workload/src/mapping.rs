//! Random task→core mappings of an application onto a topology (Figure 5).
//!
//! The paper randomly generates 100 mappings of the AV benchmark onto each
//! of 26 topologies. A mapping places every task on a uniformly random node
//! (several tasks may share a node — topologies as small as 2×2 must host
//! all 38 tasks); messages whose endpoints land on the same node produce no
//! network traffic and are dropped. Priorities are assigned rate-
//! monotonically over the surviving messages.

use noc_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::av::AvApplication;
use crate::priority::assign_rate_monotonic;

/// An application mapped onto a topology: the resulting analysable system
/// plus the placement that produced it.
#[derive(Debug, Clone)]
pub struct MappedApplication {
    system: System,
    placement: Vec<NodeId>,
    dropped_local: Vec<usize>,
    message_of_flow: Vec<usize>,
}

impl MappedApplication {
    /// The analysable system (only non-local messages become flows).
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Node hosting each task, indexed like [`AvApplication::tasks`].
    pub fn placement(&self) -> &[NodeId] {
        &self.placement
    }

    /// Indices (into [`AvApplication::messages`]) of messages dropped
    /// because both endpoints shared a node.
    pub fn dropped_local(&self) -> &[usize] {
        &self.dropped_local
    }

    /// For each flow of the system, the index of the originating message in
    /// [`AvApplication::messages`].
    pub fn message_of_flow(&self, flow: FlowId) -> usize {
        self.message_of_flow[flow.index()]
    }

    /// Consumes the mapping, returning the system.
    pub fn into_system(self) -> System {
        self.system
    }
}

/// Maps `app` onto a fresh `width × height` mesh with placement drawn
/// deterministically from `seed`.
///
/// # Errors
///
/// Propagates [`ModelError`] from system construction (cannot happen for
/// XY-routed meshes unless every message is local, in which case an empty
/// system is returned instead of an error).
///
/// # Examples
///
/// ```
/// # use noc_workload::av::av_benchmark;
/// # use noc_workload::mapping::random_mapping;
/// # use noc_model::prelude::NocConfig;
/// let app = av_benchmark();
/// let mapped = random_mapping(&app, 4, 4, NocConfig::default(), 7)?;
/// assert_eq!(mapped.placement().len(), app.task_count());
/// // flows + dropped-local messages account for every message:
/// assert_eq!(
///     mapped.system().flows().len() + mapped.dropped_local().len(),
///     app.message_count()
/// );
/// # Ok::<(), noc_model::error::ModelError>(())
/// ```
pub fn random_mapping(
    app: &AvApplication,
    width: u16,
    height: u16,
    config: NocConfig,
    seed: u64,
) -> Result<MappedApplication, ModelError> {
    let topology = Topology::mesh(width, height);
    let nodes = topology.node_count() as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    let placement: Vec<NodeId> = (0..app.task_count())
        .map(|_| NodeId::new(rng.gen_range(0..nodes)))
        .collect();

    let mut survivors = Vec::new();
    let mut dropped_local = Vec::new();
    for (idx, m) in app.messages.iter().enumerate() {
        let src = placement[m.source_task];
        let dst = placement[m.dest_task];
        if src == dst {
            dropped_local.push(idx);
        } else {
            survivors.push((idx, src, dst));
        }
    }
    let periods: Vec<Cycles> = survivors
        .iter()
        .map(|&(idx, _, _)| app.messages[idx].period)
        .collect();
    let priorities = assign_rate_monotonic(&periods);

    let flows = FlowSet::new(
        survivors
            .iter()
            .enumerate()
            .map(|(i, &(idx, src, dst))| {
                let m = &app.messages[idx];
                Flow::builder(src, dst)
                    .priority(priorities[i])
                    .period(m.period)
                    .length_flits(m.length_flits)
                    .name(m.name)
                    .build()
            })
            .collect(),
    )?;
    let system = System::new(topology, config, flows, &XyRouting)?;
    Ok(MappedApplication {
        system,
        placement,
        dropped_local,
        message_of_flow: survivors.into_iter().map(|(idx, _, _)| idx).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::av::av_benchmark;

    #[test]
    fn mapping_is_deterministic() {
        let app = av_benchmark();
        let a = random_mapping(&app, 4, 4, NocConfig::default(), 3).unwrap();
        let b = random_mapping(&app, 4, 4, NocConfig::default(), 3).unwrap();
        assert_eq!(a.placement(), b.placement());
        assert_eq!(a.system().flows().len(), b.system().flows().len());
    }

    #[test]
    fn different_seeds_give_different_placements() {
        let app = av_benchmark();
        let a = random_mapping(&app, 4, 4, NocConfig::default(), 1).unwrap();
        let b = random_mapping(&app, 4, 4, NocConfig::default(), 2).unwrap();
        assert_ne!(a.placement(), b.placement());
    }

    #[test]
    fn local_messages_are_dropped_not_lost() {
        let app = av_benchmark();
        // On a 2x2 mesh collisions are common.
        let m = random_mapping(&app, 2, 2, NocConfig::default(), 5).unwrap();
        assert_eq!(
            m.system().flows().len() + m.dropped_local().len(),
            app.message_count()
        );
        for &idx in m.dropped_local() {
            let msg = &app.messages[idx];
            assert_eq!(m.placement()[msg.source_task], m.placement()[msg.dest_task]);
        }
    }

    #[test]
    fn flows_trace_back_to_messages() {
        let app = av_benchmark();
        let m = random_mapping(&app, 3, 3, NocConfig::default(), 11).unwrap();
        for (flow_id, flow) in m.system().flows().iter() {
            let msg = &app.messages[m.message_of_flow(flow_id)];
            assert_eq!(flow.period(), msg.period);
            assert_eq!(flow.length_flits(), msg.length_flits);
            assert_eq!(flow.name(), Some(msg.name));
            assert_eq!(m.placement()[msg.source_task], flow.source());
            assert_eq!(m.placement()[msg.dest_task], flow.dest());
        }
    }

    #[test]
    fn priorities_rate_monotonic_over_survivors() {
        let app = av_benchmark();
        let m = random_mapping(&app, 5, 5, NocConfig::default(), 13).unwrap();
        let sys = m.system();
        let mut flows: Vec<_> = sys.flows().iter().map(|(_, f)| f.clone()).collect();
        flows.sort_by_key(|f| f.priority());
        for pair in flows.windows(2) {
            assert!(pair[0].period() <= pair[1].period());
        }
    }
}
