//! Synthetic flow-set generation (§VI of the paper).
//!
//! The paper's large-scale evaluation draws flow sets with periods
//! "uniformly distributed between 0.5 s and 0.5 ms", packet lengths
//! "uniformly distributed between 128 and 4096 flits", deadlines equal to
//! periods, random sources and destinations, and rate-monotonic priorities.
//!
//! The paper does not state the flit-clock frequency; this crate's default
//! time base is a **5 MHz flit clock** (1 cycle = 0.2 µs), which puts the
//! period range at 2 500 – 2 500 000 cycles. That calibration makes the
//! schedulability curves sweep the paper's x-axis ranges — including the
//! decline of the SB curve — and reproduces the reported IBN2-vs-IBN100
//! separation (see `EXPERIMENTS.md`).

use noc_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::priority::PriorityPolicy;

/// Spatial traffic pattern: how flow endpoints are drawn.
///
/// The paper uses uniformly random endpoints; the other patterns are the
/// classic NoC evaluation suites (transpose, hotspot, nearest-neighbour),
/// useful for studying how the analyses behave under structured contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrafficPattern {
    /// Source and destination drawn uniformly, `src ≠ dst` (the paper's
    /// §VI setup).
    #[default]
    UniformRandom,
    /// Node `(x, y)` talks to node `(y, x)`; nodes on the diagonal fall
    /// back to a uniformly random destination. Requires a square mesh for
    /// the full effect but works on any rectangle (coordinates are clamped).
    Transpose,
    /// A fraction of the flows (three out of four) target one hot node;
    /// the rest are uniform. Models shared-memory/gateway contention.
    Hotspot {
        /// The congested destination.
        node: NodeId,
    },
    /// Each source talks to a uniformly chosen mesh neighbour — minimal
    /// route lengths, contention concentrated on single links.
    Neighbour,
}

/// Parameters of the synthetic generator. All distributions are inclusive
/// uniform, matching the paper's description.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Mesh width.
    pub mesh_width: u16,
    /// Mesh height.
    pub mesh_height: u16,
    /// Number of flows per set.
    pub n_flows: usize,
    /// Period range in cycles (inclusive); deadline = period.
    pub period_range: (u64, u64),
    /// Packet length range in flits (inclusive).
    pub length_range: (u32, u32),
    /// Release jitter applied to every flow.
    pub jitter: Cycles,
    /// Router configuration (buffer depth, latencies).
    pub config: NocConfig,
    /// Priority assignment policy.
    pub priority_policy: PriorityPolicy,
    /// Spatial traffic pattern.
    pub pattern: TrafficPattern,
    /// Burst allowance range σ (inclusive), drawn uniformly per flow.
    /// `(0, 0)` — the default of [`SyntheticSpec::paper`] — keeps every
    /// flow strictly periodic and the generator bit-identical to the
    /// burst-free generator.
    pub burst_range: (u32, u32),
    /// Per-router buffer-depth range (inclusive). `None` (the paper's
    /// setup) keeps every router at the uniform depth of `config`; with
    /// `Some((lo, hi))` each router's depth is drawn uniformly from the
    /// range, producing a heterogeneous [`BufferMap`].
    pub buffer_depth_range: Option<(u32, u32)>,
}

impl SyntheticSpec {
    /// Period range of the paper (0.5 ms – 0.5 s) at the 5 MHz flit clock.
    pub const PAPER_PERIODS: (u64, u64) = (2_500, 2_500_000);

    /// Packet length range of the paper.
    pub const PAPER_LENGTHS: (u32, u32) = (128, 4096);

    /// The paper's §VI setup on a `width × height` mesh with `n_flows`
    /// flows and the given per-VC buffer depth.
    pub fn paper(width: u16, height: u16, n_flows: usize, buffer_depth: u32) -> SyntheticSpec {
        SyntheticSpec {
            mesh_width: width,
            mesh_height: height,
            n_flows,
            period_range: Self::PAPER_PERIODS,
            length_range: Self::PAPER_LENGTHS,
            jitter: Cycles::ZERO,
            config: NocConfig::builder()
                .buffer_depth(buffer_depth)
                .link_latency(Cycles::ONE)
                .routing_latency(Cycles::ZERO)
                .build(),
            priority_policy: PriorityPolicy::RateMonotonic,
            pattern: TrafficPattern::UniformRandom,
            burst_range: (0, 0),
            buffer_depth_range: None,
        }
    }

    /// Draws each flow's burst allowance σ uniformly from `lo..=hi`.
    #[must_use]
    pub fn with_burst_range(mut self, lo: u32, hi: u32) -> SyntheticSpec {
        assert!(lo <= hi, "empty burst range");
        self.burst_range = (lo, hi);
        self
    }

    /// Draws each router's buffer depth uniformly from `lo..=hi` (flits),
    /// producing a heterogeneous buffer map over the mesh.
    #[must_use]
    pub fn with_buffer_depth_range(mut self, lo: u32, hi: u32) -> SyntheticSpec {
        assert!(lo >= 1 && lo <= hi, "buffer depth range must be ≥ 1");
        self.buffer_depth_range = Some((lo, hi));
        self
    }

    fn draw_endpoints(&self, rng: &mut StdRng, nodes: u32, flow_index: usize) -> (u32, u32) {
        let uniform_dst = |rng: &mut StdRng, src: u32| loop {
            let d = rng.gen_range(0..nodes);
            if d != src {
                break d;
            }
        };
        let src = rng.gen_range(0..nodes);
        let w = u32::from(self.mesh_width);
        let h = u32::from(self.mesh_height);
        let dst = match self.pattern {
            TrafficPattern::UniformRandom => uniform_dst(rng, src),
            TrafficPattern::Transpose => {
                let (x, y) = (src % w, src / w);
                // Swap coordinates, clamped into the rectangle.
                let t = (y.min(w - 1)) + (x.min(h - 1)) * w;
                if t == src {
                    uniform_dst(rng, src)
                } else {
                    t
                }
            }
            TrafficPattern::Hotspot { node } => {
                let hot = node.raw() % nodes;
                if !flow_index.is_multiple_of(4) && hot != src {
                    hot
                } else {
                    uniform_dst(rng, src)
                }
            }
            TrafficPattern::Neighbour => {
                let (x, y) = (src % w, src / w);
                let mut options = Vec::with_capacity(4);
                if x > 0 {
                    options.push(src - 1);
                }
                if x + 1 < w {
                    options.push(src + 1);
                }
                if y > 0 {
                    options.push(src - w);
                }
                if y + 1 < h {
                    options.push(src + w);
                }
                options[rng.gen_range(0..options.len())]
            }
        };
        (src, dst)
    }

    /// Generates one flow set deterministically from `seed`.
    ///
    /// The same `(spec, seed)` pair always yields the same [`System`];
    /// experiment reproducibility rests on this.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (no flows, mesh smaller than two
    /// nodes, empty ranges).
    pub fn generate(&self, seed: u64) -> SyntheticWorkload {
        assert!(self.n_flows > 0, "need at least one flow");
        assert!(
            u32::from(self.mesh_width) * u32::from(self.mesh_height) >= 2,
            "mesh must have at least two nodes"
        );
        assert!(self.period_range.0 > 0 && self.period_range.0 <= self.period_range.1);
        assert!(self.length_range.0 > 0 && self.length_range.0 <= self.length_range.1);

        let mut rng = StdRng::seed_from_u64(seed);
        let topology = Topology::mesh(self.mesh_width, self.mesh_height);
        let nodes = topology.node_count() as u32;

        let mut endpoints = Vec::with_capacity(self.n_flows);
        let mut periods = Vec::with_capacity(self.n_flows);
        let mut lengths = Vec::with_capacity(self.n_flows);
        let mut bursts = Vec::with_capacity(self.n_flows);
        for flow_index in 0..self.n_flows {
            let (src, dst) = self.draw_endpoints(&mut rng, nodes, flow_index);
            endpoints.push((NodeId::new(src), NodeId::new(dst)));
            periods.push(Cycles::new(
                rng.gen_range(self.period_range.0..=self.period_range.1),
            ));
            lengths.push(rng.gen_range(self.length_range.0..=self.length_range.1));
            // Skipping the draw entirely when the range is degenerate keeps
            // the rng stream — and hence every generated flow set — bit-
            // identical to the burst-free generator.
            bursts.push(if self.burst_range.1 > 0 {
                rng.gen_range(self.burst_range.0..=self.burst_range.1)
            } else {
                0
            });
        }
        let priorities = self.priority_policy.assign(&periods, &mut rng);

        let flows = FlowSet::new(
            (0..self.n_flows)
                .map(|i| {
                    Flow::builder(endpoints[i].0, endpoints[i].1)
                        .priority(priorities[i])
                        .period(periods[i])
                        .jitter(self.jitter)
                        .length_flits(lengths[i])
                        .burst(bursts[i])
                        .build()
                })
                .collect(),
        )
        .expect("generated flows are valid by construction");
        let mut system = System::new(topology, self.config, flows, &XyRouting)
            .expect("XY routing on a mesh cannot fail");
        if let Some((lo, hi)) = self.buffer_depth_range {
            let mut map = BufferMap::uniform(self.config.buffer_depth());
            for router in 0..system.topology().router_count() {
                map.set_router_depth(RouterId::new(router as u32), rng.gen_range(lo..=hi));
            }
            system = system.with_buffer_map(map);
        }
        SyntheticWorkload { seed, system }
    }
}

/// A generated flow set together with the seed that produced it.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    seed: u64,
    system: System,
}

impl SyntheticWorkload {
    /// The seed that produced this workload.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generated system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Consumes the workload, returning the system.
    pub fn into_system(self) -> System {
        self.system
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SyntheticSpec {
        SyntheticSpec::paper(4, 4, 40, 2)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec().generate(123);
        let b = spec().generate(123);
        for id in a.system().flows().ids() {
            assert_eq!(a.system().flow(id), b.system().flow(id));
            assert_eq!(a.system().route(id), b.system().route(id));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = spec().generate(1);
        let b = spec().generate(2);
        let same = a
            .system()
            .flows()
            .ids()
            .all(|id| a.system().flow(id) == b.system().flow(id));
        assert!(!same);
    }

    #[test]
    fn parameters_within_ranges() {
        let w = spec().generate(7);
        for (_, f) in w.system().flows().iter() {
            let t = f.period().as_u64();
            assert!((2_500..=2_500_000).contains(&t), "period {t}");
            assert!((128..=4096).contains(&f.length_flits()));
            assert_eq!(f.deadline(), f.period());
            assert_ne!(f.source(), f.dest());
        }
    }

    #[test]
    fn priorities_are_rate_monotonic() {
        let w = spec().generate(9);
        let sys = w.system();
        let mut flows: Vec<_> = sys.flows().iter().map(|(_, f)| f.clone()).collect();
        flows.sort_by_key(|f| f.priority());
        for pair in flows.windows(2) {
            assert!(pair[0].period() <= pair[1].period());
        }
    }

    #[test]
    fn flow_count_and_mesh_respected() {
        let w = SyntheticSpec::paper(8, 8, 80, 100).generate(0);
        assert_eq!(w.system().flows().len(), 80);
        assert_eq!(w.system().topology().node_count(), 64);
        assert_eq!(w.system().config().buffer_depth(), 100);
        assert_eq!(w.seed(), 0);
    }

    #[test]
    fn default_spec_is_periodic_and_uniform() {
        let w = spec().generate(21);
        assert!(w.system().flows().iter().all(|(_, f)| f.burst() == 0));
        assert!(!w.system().has_heterogeneous_buffers());
    }

    #[test]
    fn burst_range_draws_within_bounds() {
        let w = spec().with_burst_range(1, 4).generate(13);
        let mut seen = std::collections::BTreeSet::new();
        for (_, f) in w.system().flows().iter() {
            assert!((1..=4).contains(&f.burst()), "σ = {}", f.burst());
            seen.insert(f.burst());
        }
        assert!(seen.len() > 1, "40 draws should hit several burst values");
    }

    #[test]
    fn buffer_depth_range_produces_heterogeneous_map() {
        let w = spec().with_buffer_depth_range(2, 9).generate(17);
        let sys = w.system();
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..sys.topology().router_count() {
            let d = sys.buffer_depth_at(RouterId::new(r as u32));
            assert!((2..=9).contains(&d), "depth {d}");
            seen.insert(d);
        }
        assert!(seen.len() > 1, "16 routers should draw several depths");
        assert!(sys.has_heterogeneous_buffers());
    }

    #[test]
    fn bursty_hetero_generation_is_deterministic() {
        let make = || {
            spec()
                .with_burst_range(0, 3)
                .with_buffer_depth_range(2, 6)
                .generate(99)
        };
        let (a, b) = (make(), make());
        for id in a.system().flows().ids() {
            assert_eq!(a.system().flow(id), b.system().flow(id));
        }
        assert_eq!(a.system().buffer_map(), b.system().buffer_map());
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn zero_flows_rejected() {
        let mut s = spec();
        s.n_flows = 0;
        let _ = s.generate(0);
    }

    #[test]
    fn transpose_pattern_swaps_coordinates() {
        let mut s = SyntheticSpec::paper(5, 5, 60, 2);
        s.pattern = TrafficPattern::Transpose;
        let w = s.generate(3);
        let mut transposed = 0;
        for (_, f) in w.system().flows().iter() {
            let (sx, sy) = (f.source().raw() % 5, f.source().raw() / 5);
            let (dx, dy) = (f.dest().raw() % 5, f.dest().raw() / 5);
            if sx == dy && sy == dx {
                transposed += 1;
            } else {
                // fall-back only happens for diagonal sources
                assert_eq!(sx, sy, "non-diagonal source must transpose");
            }
        }
        assert!(transposed > 30, "most flows follow the transpose pattern");
    }

    #[test]
    fn hotspot_pattern_concentrates_traffic() {
        let hot = NodeId::new(7);
        let mut s = SyntheticSpec::paper(4, 4, 80, 2);
        s.pattern = TrafficPattern::Hotspot { node: hot };
        let w = s.generate(5);
        let to_hot = w
            .system()
            .flows()
            .iter()
            .filter(|(_, f)| f.dest() == hot)
            .count();
        assert!(to_hot >= 40, "hotspot should attract most flows: {to_hot}");
    }

    #[test]
    fn neighbour_pattern_yields_three_link_routes() {
        let mut s = SyntheticSpec::paper(4, 4, 40, 2);
        s.pattern = TrafficPattern::Neighbour;
        let w = s.generate(9);
        for id in w.system().flows().ids() {
            assert_eq!(w.system().route(id).len(), 3, "injection + hop + ejection");
        }
    }

    #[test]
    fn patterns_never_produce_local_flows() {
        for pattern in [
            TrafficPattern::UniformRandom,
            TrafficPattern::Transpose,
            TrafficPattern::Hotspot {
                node: NodeId::new(0),
            },
            TrafficPattern::Neighbour,
        ] {
            let mut s = SyntheticSpec::paper(3, 4, 50, 2);
            s.pattern = pattern;
            let w = s.generate(11);
            for (_, f) in w.system().flows().iter() {
                assert_ne!(f.source(), f.dest(), "{pattern:?}");
            }
        }
    }
}
