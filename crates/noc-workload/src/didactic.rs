//! The didactic example of the paper (§V, Figure 3, Tables I–II).
//!
//! Three flows on a six-router custom topology, chosen by the authors to
//! expose downstream indirect interference of τ1 over τ3 through τ2. The
//! figure's geometry is partially garbled in the available text, so the
//! routes here were reverse-engineered under the constraints that fix every
//! number in Tables I and II (see `DESIGN.md`):
//!
//! ```text
//!   a    b    c    d            τ1: f→e        via r6, r5   (|route| = 3)
//!   r1 ─ r2 ─ r3 ─ r4           τ2: a→e via r1,r2,r3,r4,r6,r5 (|route| = 7)
//!             │    │            τ3: b→f        via r2,r3,r4,r6 (|route| = 5)
//!             r5 ─ r6
//!             e    f
//! ```
//!
//! Key structural facts (asserted by tests across the workspace):
//! `cd(3,2) = {r2→r3, r3→r4, r4→r6}` (3 links), `cd(1,2) = {r6→r5, r5→e}`
//! downstream of it on τ2's route, and `cd(1,3) = ∅`.

use noc_model::prelude::*;

/// Flow parameters of Table I.
///
/// `(priority, length flits, period, deadline, jitter)` for τ1, τ2, τ3; the
/// zero-load latencies C of Table I (62, 204, 132) follow from Equation 1
/// with `routl = 0`, `linkl = 1`.
pub const TABLE_I: [(u32, u32, u64, u64, u64); 3] = [
    (1, 60, 200, 200, 0),
    (2, 198, 4000, 4000, 0),
    (3, 128, 6000, 6000, 0),
];

/// Identifiers of the three flows in the returned [`System`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DidacticFlows {
    /// τ1 — highest priority, f→e.
    pub tau1: FlowId,
    /// τ2 — middle priority, a→e.
    pub tau2: FlowId,
    /// τ3 — lowest priority, b→f; the victim of MPB.
    pub tau3: FlowId,
}

impl DidacticFlows {
    /// The fixed flow identifiers (insertion order τ1, τ2, τ3).
    pub const fn ids() -> DidacticFlows {
        DidacticFlows {
            tau1: FlowId::new(0),
            tau2: FlowId::new(1),
            tau3: FlowId::new(2),
        }
    }
}

/// Builds the didactic system with the given per-VC buffer depth
/// (`b = buf(Ξ)`, the subscript of Table II).
///
/// # Examples
///
/// ```
/// # use noc_workload::didactic;
/// let system = didactic::system(2);
/// let flows = didactic::DidacticFlows::ids();
/// assert_eq!(system.zero_load_latency(flows.tau2).as_u64(), 204);
/// ```
///
/// # Panics
///
/// Panics if `buffer_depth` is zero (forwarded from
/// `NocConfig` validation).
pub fn system(buffer_depth: u32) -> System {
    system_with_routing(buffer_depth).0
}

/// [`system`], but also returning the routing table the system was built
/// with — needed by callers that keep routing *new* flows over the didactic
/// topology afterwards (e.g. admission what-ifs in `noc-serve`). The table
/// routes the three `(source, dest)` pairs of Table I.
pub fn system_with_routing(buffer_depth: u32) -> (System, TableRouting) {
    let mut b = TopologyBuilder::new();
    let r: Vec<RouterId> = (1..=6)
        .map(|i| b.add_named_router(format!("r{i}")))
        .collect();
    let node_names = ["a", "b", "c", "d", "e", "f"];
    let nodes: Vec<NodeId> = node_names
        .iter()
        .enumerate()
        .map(|(i, n)| b.add_named_node(r[i], *n))
        .collect();
    // Top row r1-r2-r3-r4; verticals r3-r5 and r4-r6; bottom row r5-r6.
    for (x, y) in [(0, 1), (1, 2), (2, 3), (2, 4), (3, 5), (4, 5)] {
        b.add_duplex_router_link(r[x], r[y]);
    }
    let topo = b.build().expect("didactic topology is well-formed");

    let rl = |a: usize, c: usize| {
        topo.find_link(Endpoint::Router(r[a]), Endpoint::Router(r[c]))
            .expect("didactic link exists")
    };
    let route = |links: Vec<LinkId>| Route::new(&topo, links).expect("didactic route is connected");

    let mut table = TableRouting::new();
    // τ1: f→e via r6, r5.
    table.insert(
        nodes[5],
        nodes[4],
        route(vec![
            topo.injection_link(nodes[5]),
            rl(5, 4),
            topo.ejection_link(nodes[4]),
        ]),
    );
    // τ2: a→e via r1, r2, r3, r4, r6, r5.
    table.insert(
        nodes[0],
        nodes[4],
        route(vec![
            topo.injection_link(nodes[0]),
            rl(0, 1),
            rl(1, 2),
            rl(2, 3),
            rl(3, 5),
            rl(5, 4),
            topo.ejection_link(nodes[4]),
        ]),
    );
    // τ3: b→f via r2, r3, r4, r6.
    table.insert(
        nodes[1],
        nodes[5],
        route(vec![
            topo.injection_link(nodes[1]),
            rl(1, 2),
            rl(2, 3),
            rl(3, 5),
            topo.ejection_link(nodes[5]),
        ]),
    );

    let endpoints = [(5usize, 4usize), (0, 4), (1, 5)];
    let flows = FlowSet::new(
        TABLE_I
            .iter()
            .zip(endpoints)
            .map(|(&(p, l, t, d, j), (src, dst))| {
                Flow::builder(nodes[src], nodes[dst])
                    .priority(Priority::new(p))
                    .period(Cycles::new(t))
                    .deadline(Cycles::new(d))
                    .jitter(Cycles::new(j))
                    .length_flits(l)
                    .name(format!("τ{p}"))
                    .build()
            })
            .collect(),
    )
    .expect("didactic flow set is valid");

    let config = NocConfig::builder()
        .buffer_depth(buffer_depth)
        .link_latency(Cycles::ONE)
        .routing_latency(Cycles::ZERO)
        .virtual_channels(3)
        .build();
    let system = System::new(topo, config, flows, &table).expect("didactic system is valid");
    (system, table)
}

/// Identifiers of the three flows of the Figure 2 scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Figure2Flows {
    /// τk — highest priority, c→d; the downstream hitter.
    pub tau_k: FlowId,
    /// τj — middle priority, a→d; the flow whose flits get buffered.
    pub tau_j: FlowId,
    /// τi — lowest priority, a→c; the MPB victim.
    pub tau_i: FlowId,
}

impl Figure2Flows {
    /// The fixed flow identifiers (insertion order τk, τj, τi).
    pub const fn ids() -> Figure2Flows {
        Figure2Flows {
            tau_k: FlowId::new(0),
            tau_j: FlowId::new(1),
            tau_i: FlowId::new(2),
        }
    }
}

/// Builds the four-router chain of the paper's **Figure 2** — the scenario
/// used to *explain* the MPB mechanism (§IV):
///
/// ```text
///   a    b    c    d        τj: a→d (all four routers)
///   r1 ─ r2 ─ r3 ─ r4       τi: a→c (shares r1..r3 with τj)
///                           τk: c→d (hits τj on r3→r4, after cd(i,j))
/// ```
///
/// τi and τj are released together from node a; τk's packets (small, much
/// more frequent) repeatedly stall τj downstream, and each stall lets τi
/// advance past buffered τj flits that then hit it again.
///
/// # Examples
///
/// ```
/// # use noc_workload::didactic;
/// let system = didactic::figure2_system(4);
/// assert_eq!(system.flows().len(), 3);
/// ```
pub fn figure2_system(buffer_depth: u32) -> System {
    let mut b = TopologyBuilder::new();
    let r: Vec<RouterId> = (1..=4)
        .map(|i| b.add_named_router(format!("r{i}")))
        .collect();
    let node_names = ["a", "b", "c", "d"];
    let nodes: Vec<NodeId> = node_names
        .iter()
        .enumerate()
        .map(|(i, n)| b.add_named_node(r[i], *n))
        .collect();
    for x in 0..3 {
        b.add_duplex_router_link(r[x], r[x + 1]);
    }
    let topo = b.build().expect("figure-2 topology is well-formed");
    let rl = |a: usize, c: usize| {
        topo.find_link(Endpoint::Router(r[a]), Endpoint::Router(r[c]))
            .expect("figure-2 link exists")
    };
    let route = |links: Vec<LinkId>| Route::new(&topo, links).expect("figure-2 route connected");
    let mut table = TableRouting::new();
    // τk: c→d.
    table.insert(
        nodes[2],
        nodes[3],
        route(vec![
            topo.injection_link(nodes[2]),
            rl(2, 3),
            topo.ejection_link(nodes[3]),
        ]),
    );
    // τj: a→d.
    table.insert(
        nodes[0],
        nodes[3],
        route(vec![
            topo.injection_link(nodes[0]),
            rl(0, 1),
            rl(1, 2),
            rl(2, 3),
            topo.ejection_link(nodes[3]),
        ]),
    );
    // τi: a→c.
    table.insert(
        nodes[0],
        nodes[2],
        route(vec![
            topo.injection_link(nodes[0]),
            rl(0, 1),
            rl(1, 2),
            topo.ejection_link(nodes[2]),
        ]),
    );
    // τi and τj have much larger periods and longer packets than τk (§IV).
    let params: [(usize, usize, u32, u32, u64, &str); 3] = [
        (2, 3, 1, 8, 40, "τk"),
        (0, 3, 2, 60, 2000, "τj"),
        (0, 2, 3, 40, 3000, "τi"),
    ];
    let flows = FlowSet::new(
        params
            .iter()
            .map(|&(src, dst, p, l, t, name)| {
                Flow::builder(nodes[src], nodes[dst])
                    .priority(Priority::new(p))
                    .period(Cycles::new(t))
                    .length_flits(l)
                    .name(name)
                    .build()
            })
            .collect(),
    )
    .expect("figure-2 flow set is valid");
    let config = NocConfig::builder()
        .buffer_depth(buffer_depth)
        .link_latency(Cycles::ONE)
        .routing_latency(Cycles::ZERO)
        .virtual_channels(3)
        .build();
    System::new(topo, config, flows, &table).expect("figure-2 system is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::contention::InterferenceGraph;

    #[test]
    fn table_one_zero_load_latencies() {
        let sys = system(2);
        let f = DidacticFlows::ids();
        assert_eq!(sys.zero_load_latency(f.tau1), Cycles::new(62));
        assert_eq!(sys.zero_load_latency(f.tau2), Cycles::new(204));
        assert_eq!(sys.zero_load_latency(f.tau3), Cycles::new(132));
    }

    #[test]
    fn route_lengths_match_table_one() {
        let sys = system(2);
        let f = DidacticFlows::ids();
        assert_eq!(sys.route(f.tau1).len(), 3);
        assert_eq!(sys.route(f.tau2).len(), 7);
        assert_eq!(sys.route(f.tau3).len(), 5);
    }

    #[test]
    fn interference_structure_is_the_mpb_scenario() {
        let sys = system(2);
        let f = DidacticFlows::ids();
        let g = InterferenceGraph::new(&sys).unwrap();
        assert_eq!(g.direct_set(f.tau3), &[f.tau2]);
        assert_eq!(g.indirect_set(f.tau3), &[f.tau1]);
        assert_eq!(g.contention_len(f.tau3, f.tau2), 3);
        let part = g.partition_indirect(f.tau3, f.tau2);
        assert_eq!(part.downstream, vec![f.tau1]);
        assert!(part.upstream.is_empty());
        // τ1 and τ3 never share a link.
        assert!(!g.contend(f.tau1, f.tau3));
    }

    #[test]
    fn buffer_depth_parameterises_config() {
        assert_eq!(system(2).config().buffer_depth(), 2);
        assert_eq!(system(10).config().buffer_depth(), 10);
    }

    #[test]
    fn figure2_interference_structure() {
        let sys = figure2_system(4);
        let f = Figure2Flows::ids();
        let g = InterferenceGraph::new(&sys).unwrap();
        // τi is directly interfered with by τj only; τk is indirect.
        assert_eq!(g.direct_set(f.tau_i), &[f.tau_j]);
        assert_eq!(g.indirect_set(f.tau_i), &[f.tau_k]);
        assert!(!g.contend(f.tau_i, f.tau_k));
        // τk hits τj downstream of cd(i,j): the MPB trigger of Figure 2.
        let part = g.partition_indirect(f.tau_i, f.tau_j);
        assert_eq!(part.downstream, vec![f.tau_k]);
        assert!(part.upstream.is_empty());
        // cd(i,j) covers the three links a→r1, r1→r2, r2→r3.
        assert_eq!(g.contention_len(f.tau_i, f.tau_j), 3);
    }

    #[test]
    fn figure2_zero_load_latencies() {
        let sys = figure2_system(4);
        let f = Figure2Flows::ids();
        assert_eq!(sys.zero_load_latency(f.tau_k), Cycles::new(10));
        assert_eq!(sys.zero_load_latency(f.tau_j), Cycles::new(64));
        assert_eq!(sys.zero_load_latency(f.tau_i), Cycles::new(43));
    }
}
