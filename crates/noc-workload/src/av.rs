//! An autonomous-vehicle (AV) application benchmark.
//!
//! Substitute for the AV benchmark of Indrusiak (J. Syst. Arch. 2014, ref
//! \[5\] of the paper), whose exact task/flow table is not reproduced in the
//! paper text. This benchmark matches its published scale — 38 tasks and 39
//! periodic messages mixing heavy video/lidar streams with tight control
//! loops — and exercises exactly the same code paths (mapping → routing →
//! interference analysis).
//!
//! Periods are expressed at a **0.5 MHz flit clock** (1 ms = 500 cycles),
//! calibrated — like the synthetic generator's time base — so that the
//! smallest topologies of Figure 5 are contention-limited while the largest
//! are comfortably schedulable, reproducing the paper's curve shape (see
//! `EXPERIMENTS.md`).

use noc_model::time::Cycles;

/// Cycles per millisecond at the 0.5 MHz flit clock.
pub const CYCLES_PER_MS: u64 = 500;

/// A computational task of the AV application (a traffic source/sink).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvTask {
    /// Task name (unique within the application).
    pub name: &'static str,
}

/// A periodic message between two tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvMessage {
    /// Message name.
    pub name: &'static str,
    /// Index of the producing task in [`AvApplication::tasks`].
    pub source_task: usize,
    /// Index of the consuming task in [`AvApplication::tasks`].
    pub dest_task: usize,
    /// Period (= deadline) in cycles.
    pub period: Cycles,
    /// Maximum packet length in flits.
    pub length_flits: u32,
}

/// The task graph of the AV application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvApplication {
    /// All tasks; message endpoints index into this list.
    pub tasks: Vec<AvTask>,
    /// All periodic messages.
    pub messages: Vec<AvMessage>,
}

impl AvApplication {
    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of messages.
    pub fn message_count(&self) -> usize {
        self.messages.len()
    }
}

/// Builds the AV benchmark application.
///
/// # Examples
///
/// ```
/// # use noc_workload::av::av_benchmark;
/// let app = av_benchmark();
/// assert_eq!(app.task_count(), 38);
/// assert_eq!(app.message_count(), 39);
/// ```
pub fn av_benchmark() -> AvApplication {
    const TASK_NAMES: [&str; 38] = [
        "front-camera",     // 0
        "rear-camera",      // 1
        "left-camera",      // 2
        "right-camera",     // 3
        "front-preproc",    // 4
        "rear-preproc",     // 5
        "side-preproc",     // 6
        "object-detector",  // 7
        "object-tracker",   // 8
        "lidar",            // 9
        "lidar-proc",       // 10
        "radar-front",      // 11
        "radar-rear",       // 12
        "radar-proc",       // 13
        "gps",              // 14
        "imu",              // 15
        "localizer",        // 16
        "sensor-fusion",    // 17
        "occupancy-grid",   // 18
        "tl-detector",      // 19
        "obstacle-pred",    // 20
        "path-planner",     // 21
        "behavior-planner", // 22
        "traj-follower",    // 23
        "steering-ctrl",    // 24
        "throttle-ctrl",    // 25
        "brake-ctrl",       // 26
        "stability-ctrl",   // 27
        "v2v-radio",        // 28
        "telemetry",        // 29
        "hmi-display",      // 30
        "map-db",           // 31
        "mission-mgr",      // 32
        "watchdog",         // 33
        "speed-sensor",     // 34
        "wheel-encoder",    // 35
        "horn-lights",      // 36
        "black-box",        // 37
    ];
    // (name, source, dest, period ms, flits)
    const MESSAGES: [(&str, usize, usize, u64, u32); 39] = [
        ("front-video", 0, 4, 33, 4096),
        ("rear-video", 1, 5, 33, 4096),
        ("left-video", 2, 6, 33, 2048),
        ("right-video", 3, 6, 33, 2048),
        ("front-features", 4, 7, 33, 1024),
        ("rear-features", 5, 7, 33, 1024),
        ("side-features", 6, 7, 33, 1024),
        ("detections", 7, 8, 33, 512),
        ("tl-crop", 4, 19, 66, 512),
        ("tl-state", 19, 22, 66, 32),
        ("point-cloud", 9, 10, 100, 4096),
        ("lidar-objects", 10, 17, 100, 1024),
        ("radar-front-raw", 11, 13, 50, 256),
        ("radar-rear-raw", 12, 13, 50, 256),
        ("radar-tracks", 13, 17, 50, 128),
        ("visual-tracks", 8, 17, 33, 256),
        ("gps-fix", 14, 16, 100, 64),
        ("imu-sample", 15, 16, 10, 32),
        ("speed-sample", 34, 16, 10, 16),
        ("odometry", 35, 16, 10, 16),
        ("pose", 16, 17, 20, 64),
        ("fused-objects", 17, 18, 50, 1024),
        ("occupancy", 18, 21, 100, 2048),
        ("fused-tracks", 17, 20, 50, 256),
        ("predictions", 20, 22, 50, 64),
        ("map-tiles", 31, 21, 200, 1024),
        ("mission-goals", 32, 22, 200, 32),
        ("maneuver", 22, 21, 100, 64),
        ("trajectory", 21, 23, 50, 128),
        ("steering-cmd", 23, 24, 5, 16),
        ("throttle-cmd", 23, 25, 5, 16),
        ("brake-cmd", 23, 26, 5, 16),
        ("stability-feed", 15, 27, 5, 16),
        ("v2v-state", 17, 28, 100, 256),
        ("hmi-frame", 17, 30, 100, 1024),
        ("telemetry-feed", 23, 29, 50, 128),
        ("log-stream", 29, 37, 200, 2048),
        ("alert-cmd", 22, 36, 100, 16),
        ("heartbeat", 23, 33, 10, 8),
    ];
    AvApplication {
        tasks: TASK_NAMES.iter().map(|&name| AvTask { name }).collect(),
        messages: MESSAGES
            .iter()
            .map(
                |&(name, source_task, dest_task, period_ms, length_flits)| AvMessage {
                    name,
                    source_task,
                    dest_task,
                    period: Cycles::new(period_ms * CYCLES_PER_MS),
                    length_flits,
                },
            )
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn benchmark_scale() {
        let app = av_benchmark();
        assert_eq!(app.task_count(), 38);
        assert_eq!(app.message_count(), 39);
    }

    #[test]
    fn message_endpoints_are_valid_and_distinct() {
        let app = av_benchmark();
        for m in &app.messages {
            assert!(m.source_task < app.task_count(), "{}", m.name);
            assert!(m.dest_task < app.task_count(), "{}", m.name);
            assert_ne!(m.source_task, m.dest_task, "{}", m.name);
            assert!(m.length_flits >= 1);
            assert!(!m.period.is_zero());
        }
    }

    #[test]
    fn every_task_participates() {
        let app = av_benchmark();
        let mut used = HashSet::new();
        for m in &app.messages {
            used.insert(m.source_task);
            used.insert(m.dest_task);
        }
        for (i, t) in app.tasks.iter().enumerate() {
            assert!(used.contains(&i), "task {} unused", t.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let app = av_benchmark();
        let task_names: HashSet<_> = app.tasks.iter().map(|t| t.name).collect();
        assert_eq!(task_names.len(), app.task_count());
        let msg_names: HashSet<_> = app.messages.iter().map(|m| m.name).collect();
        assert_eq!(msg_names.len(), app.message_count());
    }

    #[test]
    fn periods_span_control_to_logging() {
        let app = av_benchmark();
        let min = app.messages.iter().map(|m| m.period).min().unwrap();
        let max = app.messages.iter().map(|m| m.period).max().unwrap();
        assert_eq!(min, Cycles::new(5 * CYCLES_PER_MS));
        assert_eq!(max, Cycles::new(200 * CYCLES_PER_MS));
    }
}
