//! Workload generation for real-time NoC schedulability experiments.
//!
//! Provides every workload used by the paper's evaluation (§V–VI):
//!
//! * [`didactic`] — the three-flow example of Figure 3 / Tables I–II;
//! * [`synthetic`] — randomly generated flow sets of configurable size
//!   (uniform periods, uniform packet lengths, random endpoints,
//!   rate-monotonic priorities) as used for Figure 4;
//! * [`av`] — an autonomous-vehicle application benchmark (substitute for
//!   the benchmark of Indrusiak, JSA 2014 — see `DESIGN.md`);
//! * [`mapping`] — random task→core mappings of an application onto a
//!   topology, as used for Figure 5;
//! * [`priority`] — priority assignment policies;
//! * [`topologies`] — the 26 mesh sizes of Figure 5.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod av;
pub mod didactic;
pub mod mapping;
pub mod priority;
pub mod synthetic;
pub mod topologies;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::av::{av_benchmark, AvApplication, AvMessage, AvTask};
    pub use crate::didactic::{self, DidacticFlows, Figure2Flows};
    pub use crate::mapping::{random_mapping, MappedApplication};
    pub use crate::priority::{assign_rate_monotonic, PriorityPolicy};
    pub use crate::synthetic::{SyntheticSpec, SyntheticWorkload, TrafficPattern};
    pub use crate::topologies::fig5_topologies;
}
