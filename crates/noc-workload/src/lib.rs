//! Workload generation for real-time NoC schedulability experiments.
//!
//! Provides every workload used by the paper's evaluation (§V–VI).
//!
//! # Module map (code ↔ paper)
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`didactic`] | §V: the Figure 3 three-flow example behind Tables I–II, plus the Figure 2 MPB-mechanism scenario |
//! | [`synthetic`] | §VI generator for Figure 4: uniform periods/lengths, random endpoints, rate-monotonic priorities |
//! | [`av`] | the autonomous-vehicle benchmark of Figure 5 (substitute for Indrusiak, JSA 2014 — see `DESIGN.md`) |
//! | [`mapping`] | random task→core mappings onto meshes, as swept in Figure 5 |
//! | [`priority`] | priority-assignment policies (rate-monotonic is the paper's) |
//! | [`topologies`] | the 26 mesh sizes of Figure 5's x-axis |
//!
//! Systems produced here feed the bounds in `noc-analysis` (via its shared
//! `AnalysisContext`), the simulator in `noc-sim`, and the harnesses in
//! `noc-experiments`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod av;
pub mod didactic;
pub mod mapping;
pub mod priority;
pub mod synthetic;
pub mod topologies;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::av::{av_benchmark, AvApplication, AvMessage, AvTask};
    pub use crate::didactic::{self, DidacticFlows, Figure2Flows};
    pub use crate::mapping::{random_mapping, MappedApplication};
    pub use crate::priority::{assign_rate_monotonic, PriorityPolicy};
    pub use crate::synthetic::{SyntheticSpec, SyntheticWorkload, TrafficPattern};
    pub use crate::topologies::fig5_topologies;
}
