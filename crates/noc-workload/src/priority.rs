//! Priority assignment policies.
//!
//! The paper uses rate-monotonic priority assignment "despite
//! sub-optimality, given that no optimal assignment is known for this
//! problem" (§VI). A uniformly random policy is provided for ablation
//! studies.

use noc_model::ids::Priority;
use noc_model::time::Cycles;
use rand::seq::SliceRandom;
use rand::Rng;

/// How unique priority levels 1..=n are assigned to n flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PriorityPolicy {
    /// Shorter period ⇒ higher priority; ties broken by flow index. The
    /// paper's choice.
    #[default]
    RateMonotonic,
    /// A uniformly random permutation of the priority levels (ablation
    /// baseline).
    Random,
}

impl PriorityPolicy {
    /// Assigns unique priorities to flows with the given `periods`.
    ///
    /// The result is indexed like `periods`; level 1 is the highest
    /// priority. `rng` is only consulted by [`PriorityPolicy::Random`].
    pub fn assign<R: Rng + ?Sized>(self, periods: &[Cycles], rng: &mut R) -> Vec<Priority> {
        match self {
            PriorityPolicy::RateMonotonic => assign_rate_monotonic(periods),
            PriorityPolicy::Random => {
                let mut levels: Vec<u32> = (1..=periods.len() as u32).collect();
                levels.shuffle(rng);
                levels.into_iter().map(Priority::new).collect()
            }
        }
    }
}

/// Rate-monotonic assignment: sorts flows by ascending period (ties broken
/// by index) and hands out priority levels 1..=n in that order.
///
/// # Examples
///
/// ```
/// # use noc_workload::priority::assign_rate_monotonic;
/// # use noc_model::time::Cycles;
/// # use noc_model::ids::Priority;
/// let periods = [Cycles::new(900), Cycles::new(100), Cycles::new(500)];
/// let prios = assign_rate_monotonic(&periods);
/// assert_eq!(prios, vec![Priority::new(3), Priority::new(1), Priority::new(2)]);
/// ```
pub fn assign_rate_monotonic(periods: &[Cycles]) -> Vec<Priority> {
    let mut order: Vec<usize> = (0..periods.len()).collect();
    order.sort_by_key(|&i| (periods[i], i));
    let mut result = vec![Priority::HIGHEST; periods.len()];
    for (level, &flow_index) in order.iter().enumerate() {
        result[flow_index] = Priority::new(level as u32 + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rate_monotonic_orders_by_period() {
        let periods: Vec<Cycles> = [400u64, 100, 300, 200]
            .iter()
            .map(|&p| Cycles::new(p))
            .collect();
        let prios = assign_rate_monotonic(&periods);
        let levels: Vec<u32> = prios.iter().map(|p| p.level()).collect();
        assert_eq!(levels, vec![4, 1, 3, 2]);
    }

    #[test]
    fn rate_monotonic_breaks_ties_by_index() {
        let periods = vec![Cycles::new(100); 3];
        let prios = assign_rate_monotonic(&periods);
        let levels: Vec<u32> = prios.iter().map(|p| p.level()).collect();
        assert_eq!(levels, vec![1, 2, 3]);
    }

    #[test]
    fn priorities_are_always_a_permutation() {
        let periods: Vec<Cycles> = (0..50).map(|i| Cycles::new(1000 - i * 7)).collect();
        for policy in [PriorityPolicy::RateMonotonic, PriorityPolicy::Random] {
            let mut rng = StdRng::seed_from_u64(42);
            let prios = policy.assign(&periods, &mut rng);
            let mut levels: Vec<u32> = prios.iter().map(|p| p.level()).collect();
            levels.sort_unstable();
            assert_eq!(levels, (1..=50).collect::<Vec<u32>>(), "{policy:?}");
        }
    }

    #[test]
    fn random_policy_is_seed_deterministic() {
        let periods: Vec<Cycles> = (0..20).map(|i| Cycles::new(100 + i)).collect();
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        assert_eq!(
            PriorityPolicy::Random.assign(&periods, &mut rng_a),
            PriorityPolicy::Random.assign(&periods, &mut rng_b)
        );
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(assign_rate_monotonic(&[]).is_empty());
    }
}
