//! The 26 mesh topologies of Figure 5.
//!
//! The paper maps the AV benchmark onto NoC topologies "from 4 to 100
//! nodes"; the x-axis of Figure 5 lists the sizes reproduced here, ordered
//! by node count (ties by width).

use noc_model::topology::MeshDims;

/// The 26 mesh sizes of Figure 5, in the paper's x-axis order.
///
/// # Examples
///
/// ```
/// # use noc_workload::topologies::fig5_topologies;
/// let dims = fig5_topologies();
/// assert_eq!(dims.len(), 26);
/// assert_eq!(dims.first().unwrap().len(), 4);    // 2x2
/// assert_eq!(dims.last().unwrap().len(), 100);   // 10x10
/// ```
pub fn fig5_topologies() -> Vec<MeshDims> {
    const SIZES: [(u16, u16); 26] = [
        (2, 2),
        (3, 2),
        (3, 3),
        (4, 3),
        (4, 4),
        (5, 4),
        (6, 4),
        (5, 5),
        (7, 4),
        (6, 5),
        (7, 5),
        (6, 6),
        (8, 5),
        (7, 6),
        (8, 6),
        (7, 7),
        (9, 6),
        (8, 7),
        (9, 7),
        (8, 8),
        (10, 7),
        (9, 8),
        (10, 8),
        (9, 9),
        (10, 9),
        (10, 10),
    ];
    SIZES
        .iter()
        .map(|&(width, height)| MeshDims { width, height })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_six_topologies_sorted_by_node_count() {
        let dims = fig5_topologies();
        assert_eq!(dims.len(), 26);
        for pair in dims.windows(2) {
            assert!(pair[0].len() <= pair[1].len(), "{:?}", pair);
        }
    }

    #[test]
    fn covers_4_to_100_nodes() {
        let dims = fig5_topologies();
        assert_eq!(dims.iter().map(MeshDims::len).min(), Some(4));
        assert_eq!(dims.iter().map(MeshDims::len).max(), Some(100));
    }

    #[test]
    fn all_sizes_distinct() {
        let dims = fig5_topologies();
        for (i, a) in dims.iter().enumerate() {
            for b in &dims[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
