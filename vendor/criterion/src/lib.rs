//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API that the `noc-bench`
//! targets use: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Throughput`], [`Bencher::iter`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark is warmed up once and then
//! timed for `sample_size` samples; the mean, min and max per-iteration
//! wall-clock times are printed. No statistics, plots or baselines — the
//! goal is that `cargo bench` compiles, runs and reports useful numbers
//! without network access to crates.io.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's traditional name.
pub use std::hint::black_box;

/// One completed benchmark measurement, as delivered to a
/// [`Criterion::with_measurement_sink`] callback.
///
/// This is the shim's machine-readable extension point: harnesses that need
/// timings as data rather than console text (e.g. the `noc-bench`
/// bench-to-JSON binary) install a sink and reuse the exact bench bodies the
/// `cargo bench` targets run, instead of duplicating them.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark label (`group/function[/parameter]`).
    pub label: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample, in nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, in nanoseconds per iteration.
    pub max_ns: f64,
    /// The group's throughput annotation, if any.
    pub throughput: Option<Throughput>,
}

/// Callback receiving every [`Measurement`] produced by a [`Criterion`].
pub type MeasurementSink = Box<dyn FnMut(Measurement)>;

/// Top-level benchmark driver (API-compatible subset of criterion's).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    sink: Option<MeasurementSink>,
}

impl fmt::Debug for Criterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Criterion")
            .field("sample_size", &self.sample_size)
            .field("measurement_time", &self.measurement_time)
            .field("sink", &self.sink.as_ref().map(|_| "FnMut(Measurement)"))
            .finish()
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            sink: None,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Set the target measurement time (cap on total timing per benchmark).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Install a callback that receives every completed [`Measurement`]
    /// (shim extension; timings are still printed to stdout as usual).
    pub fn with_measurement_sink(mut self, sink: MeasurementSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &id.to_string(),
            self.sample_size,
            self.measurement_time,
            None,
            &mut self.sink,
            f,
        );
        self
    }
}

/// Throughput annotation attached to a group (per-iteration work volume).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many abstract elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    // Group-scoped overrides: real criterion confines sample_size and
    // measurement_time set on a group to that group, so these must not
    // write through to the shared `Criterion`.
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl fmt::Debug for BenchmarkGroup<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BenchmarkGroup")
            .field("name", &self.name)
            .field("throughput", &self.throughput)
            .field("sample_size", &self.sample_size)
            .field("measurement_time", &self.measurement_time)
            .finish_non_exhaustive()
    }
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample size for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Override the measurement time for this group only.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &label,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
            self.throughput,
            &mut self.criterion.sink,
            f,
        );
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// A `name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier from a function name plus a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to each benchmark closure; `iter` runs and times the payload.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f` (the measured region of the benchmark).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `f` with the per-batch iteration count made explicit.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(f(input));
        }
        self.elapsed = start.elapsed();
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

fn run_benchmark<F>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    sink: &mut Option<MeasurementSink>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up pass: one iteration, also used to size the timed batches so
    // each sample takes a meaningful but bounded amount of wall-clock time.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget = measurement_time.as_secs_f64() / sample_size as f64;
    let iters = (budget / per_iter.as_secs_f64()).clamp(1.0, 1_000_000.0) as u64;

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;

    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.3} Melem/s", n as f64 / mean / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:.3} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "{label:<50} time: [{} {} {}]{extra}",
        format_time(min),
        format_time(mean),
        format_time(max)
    );
    if let Some(sink) = sink {
        sink(Measurement {
            label: label.to_string(),
            mean_ns: mean * 1e9,
            min_ns: min * 1e9,
            max_ns: max * 1e9,
            throughput,
        });
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

/// Define a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_payload() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(1));
        let counter = std::cell::Cell::new(0u64);
        c.bench_function("smoke", |b| b.iter(|| counter.set(counter.get() + 1)));
        assert!(counter.get() > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("ibn", 16).to_string(), "ibn/16");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn sink_receives_measurements_with_labels_and_throughput() {
        let samples = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let tap = samples.clone();
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(1))
            .with_measurement_sink(Box::new(move |m| tap.borrow_mut().push(m)));
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        {
            let mut g = c.benchmark_group("grp");
            g.throughput(Throughput::Elements(10));
            g.bench_function("inner", |b| b.iter(|| black_box(2 + 2)));
            g.finish();
        }
        let got = samples.borrow();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].label, "standalone");
        assert!(got[0].throughput.is_none());
        assert_eq!(got[1].label, "grp/inner");
        assert!(matches!(got[1].throughput, Some(Throughput::Elements(10))));
        assert!(got[1].mean_ns > 0.0);
        assert!(got[1].min_ns <= got[1].mean_ns && got[1].mean_ns <= got[1].max_ns);
    }

    #[test]
    fn group_overrides_do_not_leak_to_later_groups() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(1));
        {
            let mut g = c.benchmark_group("a");
            g.sample_size(50).measurement_time(Duration::from_millis(2));
            g.finish();
        }
        assert_eq!(c.sample_size, 10, "group sample_size leaked");
        assert_eq!(
            c.measurement_time,
            Duration::from_millis(1),
            "group measurement_time leaked"
        );
    }
}
