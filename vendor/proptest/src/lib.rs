//! Minimal stand-in for the `proptest` property-testing crate.
//!
//! Implements the subset of proptest 1.x used by this workspace's tests:
//! the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, integer
//! range strategies, tuple strategies, [`strategy::Just`],
//! `prop_flat_map` / `prop_map`, and [`collection::vec`]. Inputs are drawn
//! from a deterministic per-test RNG; failing cases are reported with their
//! case number but are **not shrunk**.

#![warn(missing_docs)]

/// Strategies describe how to draw random values of a given type.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random test values (no shrinking in this shim).
    pub trait Strategy {
        /// The type of values this strategy draws.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Derive a strategy that post-processes each drawn value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Derive a strategy whose shape depends on a first draw.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Box the strategy (API-compatibility helper).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy drawing a `Vec` whose length is uniform in `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Draw vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — draw a fresh one.
        Reject(String),
        /// An assertion failed — the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Construct a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic RNG seeded from the test name, so each test draws a
    /// stable input sequence across runs.
    pub fn deterministic_rng(test_name: &str) -> StdRng {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(seed)
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Mirrors proptest's macro forms:
/// an optional `#![proptest_config(expr)]` header followed by `#[test]`
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::deterministic_rng(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let strategy = ($($strat,)+);
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(1_000);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: too many rejected cases ({} attempts for {} cases)",
                    attempts,
                    config.cases
                );
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&strategy, &mut rng);
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {}/{} failed: {}\n(shim runner: inputs \
                             are deterministic per test, no shrinking)",
                            accepted + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Fallible assertion: fails the current case without unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // The stringified condition goes through a `{}` placeholder, not the
        // format string itself, so conditions containing braces stay legal.
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+), l, r
        );
    }};
}

/// Fallible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Reject the current case (draw a fresh input instead of failing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..6), c in 1usize..4) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!((1..4).contains(&c));
        }

        #[test]
        fn assume_rejects(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn braces_in_asserted_condition(v in 1u32..10) {
            // The stringified condition contains `{`/`}`; it must not be
            // interpreted as a format string by the macro expansion.
            prop_assert!(matches!(Some(v), Some(x) if { x > 0 }));
        }
    }

    proptest! {
        #[test]
        fn flat_map_and_vec((n, items) in (1u32..5).prop_flat_map(|n| {
            (Just(n), collection::vec(0u32..n, 1..8))
        })) {
            prop_assert!(!items.is_empty());
            for &x in &items {
                prop_assert!(x < n);
            }
        }
    }
}
