//! Minimal, deterministic stand-in for the `rand` crate (0.8 API subset).
//!
//! The reproduction only ever seeds explicitly (`StdRng::seed_from_u64`)
//! and draws uniform integers / shuffles slices, so this crate implements
//! exactly that surface on top of xoshiro256**. Streams are deterministic
//! for a given seed, which is all the experiments rely on; they make no
//! claim of matching upstream `rand`'s byte streams.

#![warn(missing_docs)]

/// Core trait producing raw random words.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` convenience seed (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Uniform sampling from a range type (subset of `rand::distributions`).
pub trait SampleRange<T> {
    /// Draw one sample from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

/// Uniform draw in `0..span` (`span > 0`) by rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// User-facing extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniformly sample from `range` (e.g. `0..n`, `lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A uniformly random `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 1, 2];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5..=5u32);
            assert_eq!(w, 5);
            let x = rng.gen_range(-3..=3i64);
            assert!((-3..=3).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be identity");
    }
}
