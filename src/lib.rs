//! # noc-mpb — buffer-aware MPB bounds for priority-preemptive NoCs
//!
//! A from-scratch Rust reproduction of *"Buffer-aware bounds to multi-point
//! progressive blocking in priority-preemptive NoCs"* (Leandro Soares
//! Indrusiak, Alan Burns, Borislav Nikolić — DATE 2018).
//!
//! Wormhole networks-on-chip with priority-preemptive virtual channels can
//! give hard real-time guarantees, but *multi-point progressive blocking*
//! (MPB) lets a single high-priority packet interfere with a victim more
//! than once: flits that already passed the victim get buffered by a
//! downstream stall and hit it again when they drain. The paper's **IBN**
//! analysis bounds that re-interference by the amount of buffering the
//! contention domain can hold — `bi(i,j) = buf(Ξ)·linkl(Ξ)·|cd(i,j)|` — so
//! *smaller router buffers yield provably tighter latency bounds*.
//!
//! This umbrella crate re-exports the five sub-crates of the workspace:
//!
//! * [`model`] (`noc-model`) — topologies, routing, flows, contention
//!   domains and interference sets (§II–III);
//! * [`analysis`] (`noc-analysis`) — the IBN analysis and all baselines
//!   (SB, XLWX, the original Xiong Eq. 4, a naive bound) (§III–IV), plus
//!   the shared [`analysis::AnalysisContext`] that amortises the
//!   interference structure across analyses;
//! * [`sim`] (`noc-sim`) — a cycle-accurate wormhole simulator with
//!   credit-based flow control (§II, Table II's `R^sim` columns); note the
//!   `buf(Ξ) ≥ 2` fidelity precondition documented in its crate docs;
//! * [`workload`] (`noc-workload`) — the didactic example, the synthetic
//!   generator and the autonomous-vehicle benchmark (§V–VI);
//! * [`experiments`] (`noc-experiments`) — harnesses regenerating every
//!   table and figure;
//! * [`serve`] (`noc-serve`) — sharded batch serving of admission-control
//!   what-if queries over the incremental analysis machinery;
//! * [`telemetry`] (`noc-telemetry`) — opt-in counters, latency histograms
//!   and trace events across the solver, simulator and serving layer
//!   (enable with `NOC_TELEMETRY=1`; zero-cost when off).
//!
//! Each sub-crate's docs open with a module map tying its modules to the
//! paper's equations, figures and tables.
//!
//! # Quick start
//!
//! ```
//! use noc_mpb::prelude::*;
//!
//! // Four flows on a 4x4 mesh with 2-flit buffers per virtual channel.
//! let topology = Topology::mesh(4, 4);
//! let flows = FlowSet::new(vec![
//!     Flow::builder(NodeId::new(0), NodeId::new(3))
//!         .priority(Priority::new(1))
//!         .period(Cycles::new(1_000))
//!         .length_flits(32)
//!         .build(),
//!     Flow::builder(NodeId::new(4), NodeId::new(7))
//!         .priority(Priority::new(2))
//!         .period(Cycles::new(2_000))
//!         .length_flits(64)
//!         .build(),
//!     Flow::builder(NodeId::new(0), NodeId::new(7))
//!         .priority(Priority::new(3))
//!         .period(Cycles::new(5_000))
//!         .length_flits(128)
//!         .build(),
//! ])?;
//! let system = System::new(topology, NocConfig::default(), flows, &XyRouting)?;
//!
//! // Worst-case response-time bounds under the buffer-aware analysis:
//! let report = BufferAware.analyze(&system)?;
//! assert!(report.is_schedulable());
//!
//! // Cross-check with the cycle-accurate simulator:
//! let mut sim = Simulator::new(&system, ReleasePlan::synchronous(&system));
//! sim.run_until(Cycles::new(50_000));
//! for (id, verdict) in report.iter() {
//!     let observed = sim.flow_stats(id).worst_latency().unwrap();
//!     assert!(observed <= verdict.response_time().unwrap());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See the `examples/` directory for runnable scenarios: `quickstart`,
//! `didactic_example` (Tables I–II), `mpb_trace` (Figure 2's mechanism,
//! live), `buffer_design_space` and `av_platform_sizing`.

#![warn(missing_docs)]

pub use noc_analysis as analysis;
pub use noc_experiments as experiments;
pub use noc_model as model;
pub use noc_serve as serve;
pub use noc_sim as sim;
pub use noc_telemetry as telemetry;
pub use noc_workload as workload;

/// One-stop re-exports for applications.
pub mod prelude {
    pub use noc_analysis::prelude::*;
    pub use noc_model::prelude::*;
    pub use noc_sim::prelude::*;
    pub use noc_workload::prelude::*;
}
