//! Chaos harness for the fault-tolerant serving layer: batches served
//! under a deterministic [`FaultPlan`] must stay *terminal* (every query
//! answers exactly once, the process neither deadlocks nor aborts),
//! *explainable* (each outcome is the clean answer, a conservative
//! degradation, or a terminal failure — matching the injected fault),
//! *sound* (a `Degraded { failing: 0 }` answer implies the exact analysis
//! accepts too), and *hermetic* (a clean run after the chaos run is
//! bit-identical to one that never saw a fault).
//!
//! Faults are injected per `(seed, query, attempt)` by a pure hash, so
//! each scenario replays exactly under any thread count.

use std::sync::Once;

use noc_mpb::prelude::*;
use noc_mpb::serve::fault::{Fault, FaultPlan};
use noc_mpb::serve::{
    run_batch, run_batch_with, sample_queries, DegradeReason, Query, QueryBatch, QueryOutcome,
    ServeError, ServeOptions,
};
use noc_mpb::workload::didactic;
use noc_mpb::workload::synthetic::SyntheticSpec;

/// Injected-fault panics are caught and retried by the serving layer;
/// keep the default hook from spraying their backtraces over the test
/// output. Real panics still print.
fn quiet_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("injected fault:"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn fixture() -> (System, TableRouting) {
    let (system, table) = didactic::system_with_routing(2);
    // The paper fixture pins vc(Ξ) = 3, which would veto a fourth
    // priority level; admission what-ifs need auto-sized VCs.
    let system = system
        .with_virtual_channels(None)
        .expect("didactic VCs auto-size");
    (system, table)
}

/// Runs one chaos scenario under `seed` and checks every invariant
/// against the never-faulted `clean` outcomes.
fn exercise_seed(
    seed: u64,
    base: &AnalysisContext<'_>,
    batch: &QueryBatch,
    routing: &(dyn RoutingAlgorithm + Sync),
    clean: &[QueryOutcome],
) {
    let plan = FaultPlan::new(seed, 0.75);
    let options = ServeOptions {
        faults: Some(plan),
        ..ServeOptions::default()
    };

    let chaos = run_batch_with(base, batch, routing, 4, &options);
    assert_eq!(
        chaos.outcomes.len(),
        batch.queries.len(),
        "seed {seed}: every query must reach exactly one terminal outcome"
    );

    for (i, outcome) in chaos.outcomes.iter().enumerate() {
        match outcome {
            // A degraded answer must be conservative: certifying the
            // what-if (failing == 0) implies the exact analysis accepts.
            QueryOutcome::Degraded { reason, failing } => {
                assert_eq!(
                    *reason,
                    DegradeReason::DeadlineExceeded,
                    "seed {seed}, query {i}: chaos degradations come from cancelled solves"
                );
                assert_eq!(
                    plan.fault_for(i, 0),
                    Fault::CancelSolve,
                    "seed {seed}, query {i}: degraded without a CancelSolve fault"
                );
                if *failing == 0 {
                    assert!(
                        clean[i].is_accepted(),
                        "seed {seed}, query {i}: conservative accept but exact answer {:?}",
                        clean[i]
                    );
                }
            }
            // A terminal failure is only legal for a persistent panic.
            QueryOutcome::Failed { error } => {
                assert!(
                    matches!(error, ServeError::Panicked { .. }),
                    "seed {seed}, query {i}: unexpected failure {error:?}"
                );
                assert_eq!(
                    plan.fault_for(i, 0),
                    Fault::Panic { persistent: true },
                    "seed {seed}, query {i}: failed without a persistent panic fault"
                );
            }
            // Everything else — unfaulted, delayed, or transiently
            // panicked and retried — must match the clean answer exactly.
            other => {
                assert_eq!(
                    other,
                    &clean[i],
                    "seed {seed}, query {i}: fault {:?} perturbed the answer",
                    plan.fault_for(i, 0)
                );
            }
        }
    }

    // Determinism: the same seed replays to bit-identical outcomes, and
    // the plan is thread-count invariant.
    let replay = run_batch_with(base, batch, routing, 4, &options);
    assert_eq!(
        chaos.outcomes, replay.outcomes,
        "seed {seed}: chaos run must replay bit-identically"
    );
    let single = run_batch_with(base, batch, routing, 1, &options);
    assert_eq!(
        chaos.outcomes, single.outcomes,
        "seed {seed}: chaos outcomes must not depend on thread count"
    );
}

#[test]
fn chaos_batches_are_terminal_explainable_and_hermetic() {
    quiet_injected_panics();
    let (system, table) = fixture();
    let base = AnalysisContext::new(&system).expect("didactic system is analysable");
    let batch = QueryBatch {
        analysis: AnalysisKind::BufferAware,
        queries: sample_queries(&system, 24),
    };

    let clean = run_batch(&base, &batch, &table, 4).outcomes;

    for seed in [0xC4A0_0001, 0xC4A0_0002, 0xC4A0_0003, 0xC4A0_0004] {
        exercise_seed(seed, &base, &batch, &table, &clean);
    }

    // Hermeticity: after all that chaos, a clean run over the same base
    // is bit-identical to the never-faulted one — caught panics and
    // re-forked shards leaked nothing into the shared context.
    let after = run_batch(&base, &batch, &table, 4).outcomes;
    assert_eq!(
        clean, after,
        "clean serving after chaos must match the never-faulted run"
    );
}

/// Heterogeneous what-ifs under chaos: the base system already carries
/// per-router overrides and bursty sources, and the batch piles explicit
/// [`Query::RouterBufferWhatIf`]s (deepening *and* shrinking overridden
/// routers) on top of the samples. Faulted shards must restore the
/// resized base exactly — the hermeticity check at the end would catch a
/// shard that leaked a what-if depth into later answers.
#[test]
fn heterogeneous_what_ifs_survive_chaos() {
    quiet_injected_panics();
    let system = SyntheticSpec::paper(4, 4, 16, 2)
        .with_buffer_depth_range(2, 8)
        .with_burst_range(0, 2)
        .generate(0xBEEF)
        .into_system();
    assert!(system.has_heterogeneous_buffers());
    let base = AnalysisContext::new(&system).expect("heterogeneous base is analysable");

    let mut queries = sample_queries(&system, 20);
    for r in 0..8u32 {
        queries.push(Query::RouterBufferWhatIf {
            router: RouterId::new(r * 2),
            depth: 1 + r,
        });
    }
    let batch = QueryBatch {
        analysis: AnalysisKind::BufferAware,
        queries,
    };

    let clean = run_batch(&base, &batch, &XyRouting, 4).outcomes;
    for seed in [0xC4A0_0006, 0xC4A0_0007] {
        exercise_seed(seed, &base, &batch, &XyRouting, &clean);
    }

    let after = run_batch(&base, &batch, &XyRouting, 4).outcomes;
    assert_eq!(
        clean, after,
        "clean serving after chaos must match the never-faulted run"
    );
}

#[test]
fn deadlines_and_shedding_compose_under_chaos() {
    quiet_injected_panics();
    let (system, table) = fixture();
    let base = AnalysisContext::new(&system).expect("didactic system is analysable");
    let batch = QueryBatch {
        analysis: AnalysisKind::BufferAware,
        queries: sample_queries(&system, 24),
    };

    // Zero deadline: every served query degrades to the conservative
    // bound; shedding still truncates the batch deterministically.
    let options = ServeOptions {
        deadline: Some(std::time::Duration::ZERO),
        max_pending: Some(16),
        faults: Some(FaultPlan::new(0xC4A0_0005, 0.5)),
        ..ServeOptions::default()
    };
    let report = run_batch_with(&base, &batch, &table, 3, &options);
    assert_eq!(report.outcomes.len(), batch.queries.len());
    for (i, outcome) in report.outcomes.iter().enumerate() {
        if i >= 16 {
            assert_eq!(
                outcome,
                &QueryOutcome::Shed,
                "query {i} beyond max_pending must shed"
            );
            continue;
        }
        match outcome {
            QueryOutcome::Degraded { reason, .. } => {
                assert_eq!(*reason, DegradeReason::DeadlineExceeded, "query {i}");
            }
            QueryOutcome::Failed { error } => {
                assert!(
                    matches!(error, ServeError::Panicked { .. }),
                    "query {i}: unexpected failure {error:?}"
                );
            }
            other => panic!("query {i}: zero deadline must degrade, got {other:?}"),
        }
    }

    let replay = run_batch_with(&base, &batch, &table, 1, &options);
    assert_eq!(
        report.outcomes, replay.outcomes,
        "composed policy must stay deterministic and thread-invariant"
    );
}
