//! Cross-validation of the three pillars through the public API: for
//! randomly generated systems, the cycle-accurate simulator must never
//! observe a latency above the safe analytical bounds, and the analyses
//! must respect their tightness ordering.

use noc_mpb::prelude::*;
use noc_mpb::workload::synthetic::SyntheticSpec;

fn dense_workload(seed: u64, n: usize) -> System {
    let mut spec = SyntheticSpec::paper(3, 3, n, 2);
    spec.period_range = (400, 8_000);
    spec.length_range = (4, 96);
    spec.generate(seed).into_system()
}

#[test]
fn simulator_never_beats_safe_bounds() {
    for seed in 0..30 {
        let system = dense_workload(seed, 8);
        let ibn = BufferAware.analyze(&system).unwrap();
        let xlwx = Xlwx.analyze(&system).unwrap();
        let mut sim = Simulator::new(&system, ReleasePlan::synchronous(&system));
        sim.run_until(Cycles::new(60_000));
        for id in system.flows().ids() {
            let Some(observed) = sim.flow_stats(id).worst_latency() else {
                continue;
            };
            if let Some(bound) = ibn.response_time(id) {
                assert!(
                    observed <= bound,
                    "seed {seed} {id}: {observed} > IBN {bound}"
                );
            }
            if let Some(bound) = xlwx.response_time(id) {
                assert!(
                    observed <= bound,
                    "seed {seed} {id}: {observed} > XLWX {bound}"
                );
            }
        }
    }
}

#[test]
fn offset_search_still_respects_bounds() {
    // Sweeping offsets finds worse cases than synchronous release, but
    // never crosses a safe bound.
    let system = dense_workload(99, 5);
    let ibn = BufferAware.analyze(&system).unwrap();
    let victim = *system.flows().ids_by_priority().last().unwrap();
    let Some(bound) = ibn.response_time(victim) else {
        return; // unschedulable seed: nothing to validate against
    };
    let highest = system.flows().ids_by_priority()[0];
    let plans = offset_sweep(&system, highest, Cycles::new(400), Cycles::new(7));
    let outcome =
        search_worst_case(&system, victim, plans, Cycles::new(30_000)).expect("packets observed");
    assert!(outcome.worst_latency <= bound);
}

#[test]
fn analysis_tightness_ordering_via_public_api() {
    for seed in 100..130 {
        let system = dense_workload(seed, 10);
        let reports: Vec<AnalysisReport> = all_analyses()
            .iter()
            .map(|a| a.analyze(&system).unwrap())
            .collect();
        let by_name = |n: &str| {
            reports
                .iter()
                .find(|r| r.analysis() == n)
                .unwrap_or_else(|| panic!("missing analysis {n}"))
        };
        let (sb, xlwx, ibn) = (by_name("SB"), by_name("XLWX"), by_name("IBN"));
        for id in system.flows().ids() {
            if let (Some(a), Some(b)) = (sb.response_time(id), ibn.response_time(id)) {
                assert!(a <= b);
            }
            if let (Some(a), Some(b)) = (ibn.response_time(id), xlwx.response_time(id)) {
                assert!(a <= b);
            }
        }
    }
}

#[test]
fn buffer_monotonicity_via_public_api() {
    let system = dense_workload(7, 9);
    let mut last_count = usize::MAX;
    for b in [1u32, 2, 8, 32, 128] {
        let report = BufferAware.analyze(&system.with_buffer_depth(b)).unwrap();
        assert!(report.schedulable_count() <= last_count);
        last_count = report.schedulable_count();
    }
}

#[test]
fn av_benchmark_maps_and_analyses_everywhere() {
    let app = av_benchmark();
    for dims in fig5_topologies() {
        let mapped =
            random_mapping(&app, dims.width, dims.height, NocConfig::default(), 42).unwrap();
        // Whatever the verdict, the analysis must run without model errors.
        let report = BufferAware.analyze(mapped.system()).unwrap();
        assert_eq!(report.len(), mapped.system().flows().len());
    }
}
