//! Telemetry must be *observation only*: enabling it may not change a
//! single bit of any analysis report, simulation statistic or query
//! outcome, and with it disabled recording must be a true no-op (no
//! metric registers, no event is buffered).
//!
//! One test function drives all three engines because the telemetry gate
//! is process-global state — splitting it across `#[test]`s would race.

use noc_mpb::prelude::*;
use noc_mpb::serve::{
    run_batch, run_batch_with, sample_queries, QueryBatch, QueryOutcome, ServeOptions,
};
use noc_mpb::telemetry;
use noc_mpb::workload::didactic;

/// One pass of representative work through the solver (full + incremental),
/// the simulator and the serving layer, returning every observable result.
fn run_workload() -> (
    Vec<AnalysisReport>,
    Vec<AnalysisReport>,
    Vec<FlowStats>,
    Vec<QueryOutcome>,
) {
    let (system, table) = didactic::system_with_routing(2);
    let serve_system = system
        .with_virtual_channels(None)
        .expect("didactic VCs auto-size");

    // Full solves, all five analyses.
    let ctx = AnalysisContext::new(&system).expect("didactic system is analysable");
    let full: Vec<AnalysisReport> = AnalysisKind::ALL
        .iter()
        .map(|k| {
            k.as_analysis()
                .analyze_with(&ctx)
                .expect("didactic system converges")
        })
        .collect();

    // Incremental solves through an admission round-trip.
    let mut inc = IncrementalContext::new(serve_system.clone()).expect("analysable");
    let before = inc.analyze(AnalysisKind::BufferAware).expect("converges");
    let template = serve_system.flows().flow(FlowId::new(0));
    let candidate = Flow::builder(template.source(), template.dest())
        .priority(Priority::new(serve_system.flows().len() as u32 + 1))
        .period(template.period())
        .length_flits(16)
        .build();
    let id = inc.add_flow(candidate, &table).expect("routable candidate");
    let with_candidate = inc.analyze(AnalysisKind::BufferAware).expect("converges");
    inc.remove_flow(id).expect("undo");
    let after = inc.analyze(AnalysisKind::BufferAware).expect("converges");
    assert_eq!(
        before, after,
        "admission round-trip must restore the report"
    );
    let incremental = vec![before, with_candidate, after];

    // Simulation.
    let mut sim = Simulator::new(&system, ReleasePlan::synchronous(&system));
    sim.run_until(Cycles::new(20_000));
    let stats: Vec<FlowStats> = system
        .flows()
        .ids()
        .map(|id| sim.flow_stats(id).clone())
        .collect();

    // Batch serving.
    let base = AnalysisContext::new(&serve_system).expect("analysable");
    let batch = QueryBatch {
        analysis: AnalysisKind::BufferAware,
        queries: sample_queries(&serve_system, 24),
    };
    let outcomes = run_batch(&base, &batch, &table, 2).outcomes;
    // The fault-tolerant entry point with a default policy (no deadline,
    // no shedding, no faults) must be bit-identical to plain `run_batch`.
    let with_default = run_batch_with(&base, &batch, &table, 2, &ServeOptions::default()).outcomes;
    assert_eq!(
        outcomes, with_default,
        "default ServeOptions must not perturb serving"
    );

    (full, incremental, stats, outcomes)
}

#[test]
fn telemetry_is_a_pure_observer() {
    // --- Disabled: recording must be a complete no-op. ---
    telemetry::set_enabled(false);
    let _ = telemetry::events::drain();
    let baseline = run_workload();
    let snap = telemetry::snapshot();
    assert!(
        snap.is_empty(),
        "disabled-mode work registered metrics: {snap:?}"
    );
    assert_eq!(
        telemetry::events::len(),
        0,
        "disabled-mode work buffered events"
    );

    // --- Enabled: identical results, nonzero instrumentation. ---
    telemetry::set_enabled(true);
    let observed = run_workload();
    telemetry::set_enabled(false);

    assert_eq!(baseline.0, observed.0, "full analysis reports diverged");
    assert_eq!(baseline.1, observed.1, "incremental reports diverged");
    assert_eq!(baseline.2, observed.2, "simulation statistics diverged");
    assert_eq!(baseline.3, observed.3, "query outcomes diverged");

    let snap = telemetry::snapshot();
    for counter in [
        "analysis.solver.iterations",
        "analysis.solver.flows_solved",
        "analysis.cache.dirty_solved",
        "analysis.incremental.deltas",
        "sim.steps",
        "sim.release_pops",
        "serve.queries",
        "serve.context_forks",
    ] {
        assert!(
            snap.counter(counter).unwrap_or(0) > 0,
            "expected nonzero {counter} in {snap:?}"
        );
    }
    let latency = snap
        .histogram("serve.query.latency_ns")
        .expect("query latency histogram recorded");
    // The workload serves the 24-query batch twice (plain and
    // default-options entry points), one latency sample per query each.
    assert_eq!(latency.count, 48, "one latency sample per served query");
    assert!(
        snap.histogram("analysis.solver.solve_ns")
            .is_some_and(|h| h.count > 0),
        "solve-time histogram recorded"
    );
    assert!(
        !telemetry::events::drain().is_empty(),
        "structured events recorded"
    );
}
