//! Regression guard for the pruned offset search: on the didactic workloads
//! the critical-instant candidate sweep (the `table2` default) must find
//! exactly the same worst-case latencies — at the same first worst-case
//! offsets — as the paper's exhaustive step-1 sweep
//! (`NOC_MPB_SWEEP_EXHAUSTIVE=1`), in at least 5× fewer simulations.

use noc_mpb::experiments::table2::{self, SweepMode};

#[test]
fn critical_sweep_matches_exhaustive_on_didactic_workloads() {
    for buffer in [10u32, 2] {
        let exhaustive = table2::simulate_worst(buffer, SweepMode::Exhaustive { step: 1 });
        let pruned = table2::simulate_worst(buffer, SweepMode::Critical);
        assert_eq!(
            pruned.worst, exhaustive.worst,
            "b={buffer}: pruned sweep missed the exhaustive worst case"
        );
        // On the didactic workloads the exhaustive grid first attains each
        // maximum at an offset that is itself a critical-instant candidate,
        // so the two ascending searches record identical offsets — the
        // acceptance bar for the pruned default. Should a future candidate-set
        // tweak break that coincidence while preserving `worst`, relax this
        // to "the recorded offset reproduces the worst latency" (already
        // asserted by table2's unit tests).
        assert_eq!(
            pruned.worst_offsets, exhaustive.worst_offsets,
            "b={buffer}: pruned sweep found a different worst-case offset"
        );
        assert!(
            pruned.simulations * 5 <= exhaustive.simulations,
            "b={buffer}: pruned sweep ran {} of {} sims — less than a 5× cut",
            pruned.simulations,
            exhaustive.simulations
        );
    }
}

#[test]
fn full_run_is_mode_independent_on_the_didactic_example() {
    let exhaustive = table2::run_with(SweepMode::Exhaustive { step: 1 });
    let pruned = table2::run_with(SweepMode::Critical);
    assert_eq!(exhaustive.rows, pruned.rows);
}
