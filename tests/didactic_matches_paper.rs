//! End-to-end reproduction of the paper's §V results through the public
//! umbrella API: Table I (flow parameters), Table II (bounds and
//! simulations) and the qualitative claims built on them.

use noc_mpb::experiments::table2;
use noc_mpb::prelude::*;

#[test]
fn table_i_parameters() {
    let system = didactic::system(2);
    let flows = DidacticFlows::ids();
    for (id, c, l, route_len, t, p) in [
        (flows.tau1, 62, 60, 3, 200, 1),
        (flows.tau2, 204, 198, 7, 4000, 2),
        (flows.tau3, 132, 128, 5, 6000, 3),
    ] {
        assert_eq!(system.zero_load_latency(id).as_u64(), c);
        assert_eq!(system.flow(id).length_flits(), l);
        assert_eq!(system.route(id).len(), route_len);
        assert_eq!(system.flow(id).period().as_u64(), t);
        assert_eq!(system.flow(id).deadline().as_u64(), t);
        assert_eq!(system.flow(id).priority().level(), p);
    }
}

#[test]
fn table_ii_full_reproduction() {
    // Paper's Table II:
    //   flow  R_SB  R_XLWX  R_IBN(10)  R_IBN(2)  R_sim(10)  R_sim(2)
    //   τ1    62    62      62         62        62         62
    //   τ2    328   328     328        328       324        324
    //   τ3    336   460     396        348       352        336
    // Analytical columns are exact; simulation columns match τ1/τ2 exactly
    // and τ3 within 2 cycles (350/334 vs 352/336 — router restart timing).
    let results = table2::run(4);
    let expect = [
        // (sb, xlwx, ibn10, ibn2, sim10, sim2)
        (62, 62, 62, 62, 62, 62),
        (328, 328, 328, 328, 324, 324),
        (336, 460, 396, 348, 350, 334),
    ];
    for (row, e) in results.rows.iter().zip(expect) {
        assert_eq!(
            (
                row.r_sb,
                row.r_xlwx,
                row.r_ibn_b10,
                row.r_ibn_b2,
                row.sim_b10,
                row.sim_b2
            ),
            e,
            "flow τ{}",
            row.flow + 1
        );
    }
}

#[test]
fn headline_claims() {
    let results = table2::run(4);
    let tau3 = results.rows[2];
    // 1. SB is unsafe under MPB: observable latency exceeds its bound.
    assert!(tau3.sim_b10 > tau3.r_sb);
    // 2. XLWX and IBN are safe for every observation.
    for row in &results.rows {
        assert!(row.sim_b10 <= row.r_ibn_b10 && row.r_ibn_b10 <= row.r_xlwx);
        assert!(row.sim_b2 <= row.r_ibn_b2 && row.r_ibn_b2 <= row.r_xlwx);
    }
    // 3. IBN is strictly tighter than XLWX on the MPB victim.
    assert!(tau3.r_ibn_b10 < tau3.r_xlwx);
    assert!(tau3.r_ibn_b2 < tau3.r_ibn_b10);
    // 4. The buffered-interference delta (sim) matches the paper: 16 cycles.
    assert_eq!(tau3.sim_b10 - tau3.sim_b2, 16);
}

#[test]
fn renders_are_consistent_with_results() {
    let results = table2::run(8);
    let table = table2::render_table_ii(&results);
    for row in &results.rows {
        assert!(table.contains(&row.r_xlwx.to_string()));
    }
    assert!(table2::render_table_i().contains("132 (128, 5)"));
}
