//! Reduced-scale end-to-end runs of the Figure 4 / Figure 5 / buffer-sweep
//! experiments, asserting the orderings the paper's full-scale plots show.

use noc_mpb::experiments::prelude::*;

#[test]
fn fig4_reduced_preserves_curve_ordering() {
    let cfg = Fig4Config {
        flow_counts: vec![80, 200, 320],
        sets_per_point: 10,
        threads: 4,
        ..Fig4Config::paper_4x4()
    };
    let results = fig4::run(&cfg);
    assert_eq!(results.points.len(), 3);
    for p in &results.points {
        assert!(p.sb >= p.ibn_small);
        assert!(p.ibn_small >= p.ibn_large);
        assert!(p.ibn_large >= p.xlwx);
    }
    // Schedulability declines with load for the safe analyses.
    let first = &results.points[0];
    let last = &results.points[2];
    assert!(first.xlwx >= last.xlwx);
    assert!(first.ibn_small >= last.ibn_small);
}

#[test]
fn fig4_gap_appears_at_moderate_load() {
    // At 200 flows on 4x4 the paper's Figure 4(a) regime shows IBN clearly
    // above XLWX.
    let cfg = Fig4Config {
        flow_counts: vec![200],
        sets_per_point: 16,
        threads: 4,
        ..Fig4Config::paper_4x4()
    };
    let results = fig4::run(&cfg);
    let p = &results.points[0];
    assert!(
        p.ibn_small > p.xlwx,
        "expected an IBN2-XLWX gap at 200 flows, got {p:?}"
    );
}

#[test]
fn fig5_reduced_preserves_bar_ordering() {
    let cfg = Fig5Config::paper().reduced(4, 8);
    let results = fig5::run(&cfg);
    assert_eq!(results.points.len(), 4);
    for p in &results.points {
        assert!(p.ibn_small >= p.ibn_large);
        assert!(p.ibn_large >= p.xlwx);
    }
}

#[test]
fn buffer_sweep_monotone() {
    let cfg = BufferSweepConfig {
        buffer_depths: vec![2, 8, 32, 100],
        sets: 8,
        threads: 4,
        ..BufferSweepConfig::paper()
    };
    let results = buffer_sweep::run(&cfg);
    for pair in results.points.windows(2) {
        assert!(pair[0].ibn >= pair[1].ibn, "{pair:?}");
    }
    for p in &results.points {
        assert!(p.ibn >= results.xlwx);
    }
}
