//! Regression guard for the shared-context refactor: analyses run through a
//! precomputed [`AnalysisContext`] — including contexts *rebased* onto
//! buffer-depth and period-scale variants — must return bit-identical
//! [`AnalysisReport`]s (and explanations) to the direct
//! [`Analysis::analyze`] path that derives the interference structure from
//! scratch per call.

use noc_mpb::prelude::*;
use noc_mpb::workload::didactic;
use noc_mpb::workload::synthetic::SyntheticSpec;

fn synthetic_systems() -> Vec<(String, System)> {
    let mut out = Vec::new();
    for (seed, mesh, n_flows) in [(41u64, 3u16, 8usize), (42, 4, 14), (43, 4, 24)] {
        let mut spec = SyntheticSpec::paper(mesh, mesh, n_flows, 2);
        spec.period_range = (400, 8_000);
        spec.length_range = (4, 96);
        out.push((
            format!("seed={seed} mesh={mesh}x{mesh} n={n_flows}"),
            spec.generate(seed).into_system(),
        ));
    }
    out.push(("didactic b=2".into(), didactic::system(2)));
    out.push(("figure2 b=4".into(), didactic::figure2_system(4)));
    out
}

#[test]
fn context_backed_reports_are_bit_identical_to_direct_path() {
    for (label, system) in synthetic_systems() {
        let ctx = AnalysisContext::new(&system).unwrap();
        for analysis in all_analyses() {
            let direct = analysis.analyze(&system).unwrap();
            let shared = analysis.analyze_with(&ctx).unwrap();
            assert_eq!(direct, shared, "[{label}] {}", analysis.name());
            let direct_expl = analysis.explain(&system).unwrap();
            let shared_expl = analysis.explain_with(&ctx).unwrap();
            assert_eq!(direct_expl, shared_expl, "[{label}] {}", analysis.name());
        }
    }
}

#[test]
fn rebased_buffer_depths_match_fresh_contexts() {
    for (label, system) in synthetic_systems() {
        let ctx = AnalysisContext::new(&system).unwrap();
        for depth in [1u32, 2, 10, 100] {
            let variant = system.with_buffer_depth(depth);
            let rebased = ctx.rebase(&variant).unwrap();
            let direct = BufferAware.analyze(&variant).unwrap();
            let shared = BufferAware.analyze_with(&rebased).unwrap();
            assert_eq!(direct, shared, "[{label}] depth={depth}");
        }
    }
}

#[test]
fn rebased_period_scales_match_fresh_contexts() {
    for (label, system) in synthetic_systems() {
        let ctx = AnalysisContext::new(&system).unwrap();
        for (num, den) in [(1u64, 2u64), (3, 4), (2, 1), (13, 7)] {
            let variant = system.with_scaled_periods(num, den).unwrap();
            let rebased = ctx.rebase(&variant).unwrap();
            for analysis in all_analyses() {
                let direct = analysis.analyze(&variant).unwrap();
                let shared = analysis.analyze_with(&rebased).unwrap();
                assert_eq!(
                    direct,
                    shared,
                    "[{label}] {} × {num}/{den}",
                    analysis.name()
                );
            }
        }
    }
}

#[test]
fn rebased_heterogeneous_buffers_match_fresh_contexts() {
    let system = didactic::system(2);
    let ctx = AnalysisContext::new(&system).unwrap();
    // Deepen one router's buffers: per-router overrides keep the routes and
    // priorities, so the context rebases; the analysis must still pick the
    // override up from the new system.
    let router = system.topology().router_ids().next().expect("has routers");
    let variant = system.with_router_buffer_depth(router, 50);
    let rebased = ctx.rebase(&variant).unwrap();
    let direct = BufferAware.analyze(&variant).unwrap();
    let shared = BufferAware.analyze_with(&rebased).unwrap();
    assert_eq!(direct, shared);
}
