//! Regression guard for the shared-context refactor: analyses run through a
//! precomputed [`AnalysisContext`] — including contexts *rebased* onto
//! buffer-depth and period-scale variants — must return bit-identical
//! [`AnalysisReport`]s (and explanations) to the direct
//! [`Analysis::analyze`] path that derives the interference structure from
//! scratch per call.
//!
//! It also pins the degenerate-equivalence guarantees of the generalised
//! release/buffer axes: a uniform [`BufferMap`] (with or without redundant
//! overrides) is bit-identical to the scalar-depth path, and a zero-burst
//! arrival curve is bit-identical to plain periodic-with-jitter release.

use noc_mpb::prelude::*;
use noc_mpb::workload::didactic;
use noc_mpb::workload::synthetic::SyntheticSpec;

fn synthetic_systems() -> Vec<(String, System)> {
    let mut out = Vec::new();
    for (seed, mesh, n_flows) in [(41u64, 3u16, 8usize), (42, 4, 14), (43, 4, 24)] {
        let mut spec = SyntheticSpec::paper(mesh, mesh, n_flows, 2);
        spec.period_range = (400, 8_000);
        spec.length_range = (4, 96);
        out.push((
            format!("seed={seed} mesh={mesh}x{mesh} n={n_flows}"),
            spec.generate(seed).into_system(),
        ));
    }
    // Cover the generalised axes too: bursty sources, per-router depths,
    // and both at once.
    out.push((
        "seed=44 bursty σ≤2".into(),
        SyntheticSpec::paper(4, 4, 14, 2)
            .with_burst_range(0, 2)
            .generate(44)
            .into_system(),
    ));
    out.push((
        "seed=45 hetero 2..=8 + bursty σ≤1".into(),
        SyntheticSpec::paper(4, 4, 18, 2)
            .with_buffer_depth_range(2, 8)
            .with_burst_range(0, 1)
            .generate(45)
            .into_system(),
    ));
    out.push(("didactic b=2".into(), didactic::system(2)));
    out.push(("figure2 b=4".into(), didactic::figure2_system(4)));
    out
}

#[test]
fn context_backed_reports_are_bit_identical_to_direct_path() {
    for (label, system) in synthetic_systems() {
        let ctx = AnalysisContext::new(&system).unwrap();
        for analysis in all_analyses() {
            let direct = analysis.analyze(&system).unwrap();
            let shared = analysis.analyze_with(&ctx).unwrap();
            assert_eq!(direct, shared, "[{label}] {}", analysis.name());
            let direct_expl = analysis.explain(&system).unwrap();
            let shared_expl = analysis.explain_with(&ctx).unwrap();
            assert_eq!(direct_expl, shared_expl, "[{label}] {}", analysis.name());
        }
    }
}

#[test]
fn rebased_buffer_depths_match_fresh_contexts() {
    for (label, system) in synthetic_systems() {
        let ctx = AnalysisContext::new(&system).unwrap();
        for depth in [1u32, 2, 10, 100] {
            let variant = system.with_buffer_depth(depth);
            let rebased = ctx.rebase(&variant).unwrap();
            let direct = BufferAware.analyze(&variant).unwrap();
            let shared = BufferAware.analyze_with(&rebased).unwrap();
            assert_eq!(direct, shared, "[{label}] depth={depth}");
        }
    }
}

#[test]
fn rebased_period_scales_match_fresh_contexts() {
    for (label, system) in synthetic_systems() {
        let ctx = AnalysisContext::new(&system).unwrap();
        for (num, den) in [(1u64, 2u64), (3, 4), (2, 1), (13, 7)] {
            let variant = system.with_scaled_periods(num, den).unwrap();
            let rebased = ctx.rebase(&variant).unwrap();
            for analysis in all_analyses() {
                let direct = analysis.analyze(&variant).unwrap();
                let shared = analysis.analyze_with(&rebased).unwrap();
                assert_eq!(
                    direct,
                    shared,
                    "[{label}] {} × {num}/{den}",
                    analysis.name()
                );
            }
        }
    }
}

/// Uniform `BufferMap`s — including maps carrying overrides equal to the
/// default — are the scalar-depth path, bit for bit, across every analysis
/// and its explanation.
#[test]
fn uniform_buffer_map_is_bit_identical_to_scalar_path() {
    for (label, system) in synthetic_systems() {
        if system.has_heterogeneous_buffers() {
            continue; // the degenerate claim is about uniform systems
        }
        for depth in [1u32, 2, 7, 64] {
            let scalar = system.with_buffer_depth(depth);
            let uniform = scalar.with_buffer_map(BufferMap::uniform(depth));
            // Redundant overrides (every router pinned to the default) must
            // still count as uniform and change nothing.
            let mut redundant_map = BufferMap::uniform(depth);
            for router in scalar.topology().router_ids() {
                redundant_map.set_router_depth(router, depth);
            }
            let redundant = scalar.with_buffer_map(redundant_map);
            assert!(!uniform.has_heterogeneous_buffers());
            assert!(!redundant.has_heterogeneous_buffers());
            for analysis in all_analyses() {
                let base = analysis.analyze(&scalar).unwrap();
                for (kind, variant) in [("uniform", &uniform), ("redundant", &redundant)] {
                    assert_eq!(
                        base,
                        analysis.analyze(variant).unwrap(),
                        "[{label}] depth={depth} {} via {kind} map",
                        analysis.name()
                    );
                    assert_eq!(
                        analysis.explain(&scalar).unwrap(),
                        analysis.explain(variant).unwrap(),
                        "[{label}] depth={depth} {} explanation via {kind} map",
                        analysis.name()
                    );
                }
            }
        }
    }
}

/// Rebuilds every flow with an explicit `σ = 0` burst allowance.
fn with_explicit_zero_burst(system: &System) -> System {
    let flows: Vec<Flow> = system
        .flows()
        .iter()
        .map(|(_, f)| {
            let mut b = Flow::builder(f.source(), f.dest())
                .priority(f.priority())
                .period(f.period())
                .deadline(f.deadline())
                .jitter(f.jitter())
                .burst(0)
                .length_flits(f.length_flits());
            if let Some(name) = f.name() {
                b = b.name(name);
            }
            b.build()
        })
        .collect();
    System::new(
        system.topology().clone(),
        *system.config(),
        FlowSet::new(flows).unwrap(),
        &XyRouting,
    )
    .unwrap()
}

/// A zero-burst leaky bucket is periodic-with-jitter release: flows rebuilt
/// with an explicit `σ = 0` produce bit-identical reports, explanations and
/// simulations to flows that never mention a burst at all.
#[test]
fn zero_burst_arrival_is_bit_identical_to_periodic() {
    for (label, system) in synthetic_systems() {
        if system.flows().iter().any(|(_, f)| f.burst() > 0) {
            continue; // only the σ = 0 degenerate case is equivalence
        }
        if label.starts_with("didactic") || label.starts_with("figure2") {
            continue; // hand-routed fixtures can't be rebuilt via XyRouting
        }
        let explicit = with_explicit_zero_burst(&system);
        for analysis in all_analyses() {
            assert_eq!(
                analysis.analyze(&system).unwrap(),
                analysis.analyze(&explicit).unwrap(),
                "[{label}] {}",
                analysis.name()
            );
            assert_eq!(
                analysis.explain(&system).unwrap(),
                analysis.explain(&explicit).unwrap(),
                "[{label}] {} explanation",
                analysis.name()
            );
        }
        // And the simulator sees the identical release schedule.
        let horizon = Cycles::new(20_000);
        let mut a = Simulator::new(&system, ReleasePlan::synchronous(&system));
        let mut b = Simulator::new(&explicit, ReleasePlan::synchronous(&explicit));
        a.run_until(horizon);
        b.run_until(horizon);
        for id in system.flows().ids() {
            let (sa, sb) = (a.flow_stats(id), b.flow_stats(id));
            assert_eq!(sa.delivered(), sb.delivered(), "[{label}] {id} delivered");
            assert_eq!(
                sa.worst_latency(),
                sb.worst_latency(),
                "[{label}] {id} worst latency"
            );
        }
    }
}

#[test]
fn rebased_heterogeneous_buffers_match_fresh_contexts() {
    let system = didactic::system(2);
    let ctx = AnalysisContext::new(&system).unwrap();
    // Deepen one router's buffers: per-router overrides keep the routes and
    // priorities, so the context rebases; the analysis must still pick the
    // override up from the new system.
    let router = system.topology().router_ids().next().expect("has routers");
    let variant = system.with_router_buffer_depth(router, 50);
    let rebased = ctx.rebase(&variant).unwrap();
    let direct = BufferAware.analyze(&variant).unwrap();
    let shared = BufferAware.analyze_with(&rebased).unwrap();
    assert_eq!(direct, shared);
}
