//! The end-to-end soundness invariant of the reproduction, asserted as a
//! single chain per flow and scenario:
//!
//! ```text
//! R^sim  ≤  R^IBN  ≤  R^XLWX
//! ```
//!
//! i.e. the cycle-accurate simulator never observes a latency above the
//! buffer-aware bound, and the buffer-aware bound never exceeds the coarser
//! XLWX baseline it refines (Eq. 8's `min()` guarantees containment). The
//! scenarios vary mesh size, flow count, buffer depth (uniform and
//! per-router heterogeneous), burst allowance σ and release jitter; the
//! randomized heterogeneous/bursty sweep at the bottom draws its scenarios
//! through the vendored proptest shim (seeded, deterministic per test).
//!
//! Case count of the randomized sweep: 12 by default, 100+ under
//! `NOC_MPB_SWEEP_EXHAUSTIVE=1` (the CI soundness leg).

use noc_mpb::prelude::*;
use noc_mpb::workload::synthetic::SyntheticSpec;
use proptest::prelude::*;

/// One synthetic scenario: the system plus how long to simulate it.
struct Scenario {
    system: System,
    horizon: Cycles,
    label: String,
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    // Buffer depths start at 2 — the simulator-fidelity precondition
    // buf(Ξ) ≥ 2 documented on noc_model::config::NocConfigBuilder::
    // buffer_depth and in the noc-sim crate docs. Depth 1 is exercised
    // analytically below.
    for (seed, mesh, n_flows, buffer) in [
        (11u64, 3u16, 6usize, 2u32),
        (12, 3, 8, 2),
        (13, 3, 10, 4),
        (14, 4, 12, 2),
        (15, 4, 16, 8),
        (16, 5, 12, 2),
    ] {
        let mut spec = SyntheticSpec::paper(mesh, mesh, n_flows, buffer);
        spec.period_range = (400, 8_000);
        spec.length_range = (4, 96);
        out.push(Scenario {
            system: spec.generate(seed).into_system(),
            horizon: Cycles::new(80_000),
            label: format!("seed={seed} mesh={mesh}x{mesh} n={n_flows} buf={buffer}"),
        });
    }
    out
}

/// Check `R^sim ≤ R^IBN ≤ R^XLWX` for every flow of `scenario` under the
/// given release plan.
fn assert_chain(scenario: &Scenario, plan: ReleasePlan, plan_label: &str) {
    let system = &scenario.system;
    let ibn = BufferAware.analyze(system).unwrap();
    let xlwx = Xlwx.analyze(system).unwrap();
    let mut sim = Simulator::new(system, plan);
    sim.run_until(scenario.horizon);

    let mut observed_any = false;
    for id in system.flows().ids() {
        // Analytical containment must hold whenever both bounds converge.
        if let (Some(r_ibn), Some(r_xlwx)) = (ibn.response_time(id), xlwx.response_time(id)) {
            assert!(
                r_ibn <= r_xlwx,
                "[{} / {plan_label}] {id}: R^IBN {r_ibn} > R^XLWX {r_xlwx}",
                scenario.label
            );
        }
        // The simulator is an existence proof: any observed latency is a
        // lower bound on the true worst case, so it may never cross R^IBN.
        let Some(observed) = sim.flow_stats(id).worst_latency() else {
            continue;
        };
        observed_any = true;
        if let Some(r_ibn) = ibn.response_time(id) {
            assert!(
                observed <= r_ibn,
                "[{} / {plan_label}] {id}: R^sim {observed} > R^IBN {r_ibn}",
                scenario.label
            );
        }
    }
    assert!(
        observed_any,
        "[{} / {plan_label}] simulation delivered no packets — vacuous scenario",
        scenario.label
    );
}

#[test]
fn sim_ibn_xlwx_chain_synchronous_release() {
    for scenario in scenarios() {
        let plan = ReleasePlan::synchronous(&scenario.system);
        assert_chain(&scenario, plan, "synchronous");
    }
}

#[test]
fn sim_ibn_xlwx_chain_with_release_jitter() {
    for (seed, buffer) in [(21u64, 2u32), (22, 4)] {
        let mut spec = SyntheticSpec::paper(3, 3, 8, buffer);
        spec.period_range = (500, 6_000);
        spec.length_range = (4, 64);
        spec.jitter = Cycles::new(120);
        let scenario = Scenario {
            system: spec.generate(seed).into_system(),
            horizon: Cycles::new(60_000),
            label: format!("jittered seed={seed} buf={buffer}"),
        };
        for pattern in [
            JitterPattern::Alternating,
            JitterPattern::Seeded(seed),
            JitterPattern::Fixed(Cycles::new(120)),
        ] {
            let mut plan = ReleasePlan::synchronous(&scenario.system);
            for id in scenario.system.flows().ids() {
                plan = plan.with_jitter(id, pattern);
            }
            assert_chain(&scenario, plan, &format!("{pattern:?}"));
        }
    }
}

/// Case count of the randomized heterogeneous/bursty sweeps: a quick
/// default for local runs, 100+ scenarios per seeded test in the CI
/// soundness leg (`NOC_MPB_SWEEP_EXHAUSTIVE=1`).
fn sweep_cases() -> u32 {
    if std::env::var("NOC_MPB_SWEEP_EXHAUSTIVE").map(|v| v == "1") == Ok(true) {
        100
    } else {
        12
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(sweep_cases()))]

    #[test]
    fn chain_holds_on_random_heterogeneous_depth_maps(
        seed in 0u64..1_000_000,
        depth_lo in 2u32..6,
        depth_span in 0u32..5,
    ) {
        // Per-router depths drawn from [depth_lo, depth_lo + depth_span],
        // all ≥ 2 — the simulator-fidelity precondition.
        let mut spec = SyntheticSpec::paper(3, 3, 8, depth_lo)
            .with_buffer_depth_range(depth_lo, depth_lo + depth_span);
        spec.period_range = (400, 6_000);
        spec.length_range = (4, 64);
        let scenario = Scenario {
            system: spec.generate(seed).into_system(),
            horizon: Cycles::new(40_000),
            label: format!("hetero seed={seed} depths={depth_lo}..={}", depth_lo + depth_span),
        };
        let plan = ReleasePlan::synchronous(&scenario.system);
        assert_chain(&scenario, plan, "synchronous");
    }

    #[test]
    fn chain_holds_on_random_bursty_arrivals(
        seed in 0u64..1_000_000,
        burst_hi in 1u32..4,
        jitter in 0u64..200,
    ) {
        let mut spec = SyntheticSpec::paper(3, 3, 7, 2).with_burst_range(0, burst_hi);
        spec.period_range = (600, 6_000);
        spec.length_range = (4, 48);
        spec.jitter = Cycles::new(jitter);
        let scenario = Scenario {
            system: spec.generate(seed).into_system(),
            horizon: Cycles::new(40_000),
            label: format!("bursty seed={seed} σ≤{burst_hi} J={jitter}"),
        };
        // Worst-case alignment: every flow releases its full burst at t=0.
        let plan = ReleasePlan::synchronous(&scenario.system);
        assert_chain(&scenario, plan, "synchronous-burst");
    }

    #[test]
    fn chain_holds_on_random_bursty_heterogeneous_scenarios(
        seed in 0u64..1_000_000,
        burst_hi in 0u32..3,
        depth_lo in 2u32..5,
        depth_span in 0u32..4,
    ) {
        let mut spec = SyntheticSpec::paper(4, 4, 10, depth_lo)
            .with_burst_range(0, burst_hi)
            .with_buffer_depth_range(depth_lo, depth_lo + depth_span);
        spec.period_range = (600, 8_000);
        spec.length_range = (4, 64);
        let scenario = Scenario {
            system: spec.generate(seed).into_system(),
            horizon: Cycles::new(50_000),
            label: format!(
                "hetero+bursty seed={seed} σ≤{burst_hi} depths={depth_lo}..={}",
                depth_lo + depth_span
            ),
        };
        let plan = ReleasePlan::synchronous(&scenario.system);
        assert_chain(&scenario, plan, "synchronous");

        // The conservative bound must dominate IBN on these axes too.
        let ctx = AnalysisContext::new(&scenario.system).unwrap();
        let conservative = noc_mpb::analysis::conservative_with(&ctx);
        let ibn = BufferAware.analyze(&scenario.system).unwrap();
        for id in scenario.system.flows().ids() {
            if let (Some(r_ibn), Some(r_cons)) =
                (ibn.response_time(id), conservative.response_time(id))
            {
                prop_assert!(
                    r_ibn <= r_cons,
                    "[{}] {id}: R^IBN {r_ibn} > conservative {r_cons}",
                    scenario.label
                );
            }
        }
    }
}

#[test]
fn chain_holds_across_buffer_depths() {
    // The same flow set at increasing buffer depth: each depth must satisfy
    // the chain independently, and R^IBN must be non-decreasing in depth
    // while never exceeding that depth's R^XLWX.
    let mut spec = SyntheticSpec::paper(3, 3, 9, 1);
    spec.period_range = (400, 8_000);
    spec.length_range = (4, 96);
    let base = spec.generate(31).into_system();

    let mut prev: Option<AnalysisReport> = None;
    for depth in [1u32, 2, 4, 16, 64] {
        let scenario = Scenario {
            system: base.with_buffer_depth(depth),
            horizon: Cycles::new(80_000),
            label: format!("seed=31 buf={depth}"),
        };
        // The simulated chain only applies inside the simulator's fidelity
        // domain (buf ≥ 2); the analytical monotonicity below covers buf=1.
        if depth >= 2 {
            let plan = ReleasePlan::synchronous(&scenario.system);
            assert_chain(&scenario, plan, "synchronous");
        }

        let report = BufferAware.analyze(&scenario.system).unwrap();
        if let Some(prev) = &prev {
            for id in scenario.system.flows().ids() {
                if let (Some(small), Some(big)) = (prev.response_time(id), report.response_time(id))
                {
                    assert!(
                        small <= big,
                        "{id}: R^IBN not monotone in buffer depth ({small} > {big})"
                    );
                }
            }
        }
        prev = Some(report);
    }
}
