//! Regression guard for the incremental delta path: an
//! [`IncrementalContext`] driven through randomized add/remove/resize
//! [`Delta`] sequences must report **bit-identically** — for all five
//! analyses — to a fresh [`AnalysisContext`] derived from scratch over the
//! same mutated system after every single step.
//!
//! The sequences deliberately recycle priorities freed by removals, so
//! additions land in the *middle* of the priority order (not just at the
//! bottom), exercising dirty-bit propagation through both the direct and
//! indirect interference sets of flows above and below the insertion
//! point. Interleaved [`Delta::ResizeBuffer`] steps retarget random
//! routers at random depths (including depth 1 and back), and candidate
//! flows carry random burst allowances, so the buffer-aware cache
//! invalidation and the arrival-curve plumbing are both exercised on the
//! same sequences.

use noc_mpb::prelude::*;
use noc_mpb::workload::didactic;
use noc_mpb::workload::synthetic::SyntheticSpec;

/// Minimal deterministic PRNG (xorshift64): the umbrella crate carries no
/// rand dependency, and the delta sequences must be reproducible anyway.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

/// Every analysis kind, incremental vs from-scratch, after one delta.
fn assert_matches_scratch(ctx: &mut IncrementalContext, label: &str, step: usize) {
    let system = ctx.system().clone();
    let scratch = AnalysisContext::new(&system).expect("mutated system stays analysable");
    for kind in AnalysisKind::ALL {
        let incremental = ctx.analyze(kind).expect("incremental analysis succeeds");
        let full = kind
            .as_analysis()
            .analyze_with(&scratch)
            .expect("from-scratch analysis succeeds");
        assert_eq!(
            incremental, full,
            "{label}, step {step}: incremental {kind:?} diverged from the from-scratch solve"
        );
    }
}

/// A candidate flow templated on existing flows so it is routable under
/// any fixture routing (including the didactic table). With
/// `cross_pairs`, source and destination may come from different
/// templates (mesh fixtures route any pair via XY).
fn random_candidate(
    rng: &mut XorShift,
    system: &System,
    priority: Priority,
    cross_pairs: bool,
) -> Flow {
    let ids: Vec<FlowId> = system.flows().ids().collect();
    let t1 = system
        .flows()
        .flow(ids[rng.below(ids.len() as u64) as usize]);
    let t2 = system
        .flows()
        .flow(ids[rng.below(ids.len() as u64) as usize]);
    let (source, dest) = if cross_pairs && t1.source() != t2.dest() {
        (t1.source(), t2.dest())
    } else {
        (t1.source(), t1.dest())
    };
    Flow::builder(source, dest)
        .priority(priority)
        .period(Cycles::new(500 + 250 * rng.below(16)))
        .length_flits(4 + rng.below(60) as u32)
        .burst(rng.below(3) as u32)
        .build()
}

/// Drives `steps` random deltas through one fixture, checking equivalence
/// after every step, then drains back to the original size and checks
/// once more.
fn exercise(
    label: &str,
    system: System,
    routing: &dyn RoutingAlgorithm,
    cross_pairs: bool,
    steps: usize,
    seed: u64,
) {
    let min_flows = system.flows().len();
    let max_flows = min_flows + 6;
    let mut next_priority = system
        .flows()
        .iter()
        .map(|(_, f)| f.priority().level())
        .max()
        .expect("fixtures are non-empty")
        + 1;
    let mut freed_priorities: Vec<Priority> = Vec::new();
    let mut rng = XorShift(seed | 1);
    let mut ctx = IncrementalContext::new(system).expect("fixture is analysable");

    for step in 0..steps {
        let len = ctx.len();
        if rng.chance(30) {
            // Interleave a per-router buffer resize with the flow churn.
            let routers = ctx.system().topology().router_count() as u64;
            let delta = Delta::ResizeBuffer {
                router: RouterId::new(rng.below(routers) as u32),
                depth: 1 + rng.below(16) as u32,
            };
            ctx.apply(delta, routing).expect("resize applies cleanly");
            assert_matches_scratch(&mut ctx, label, step);
            continue;
        }
        let add = len <= min_flows || (len < max_flows && rng.chance(60));
        let delta = if add {
            let priority = if !freed_priorities.is_empty() && rng.chance(50) {
                freed_priorities.remove(rng.below(freed_priorities.len() as u64) as usize)
            } else {
                next_priority += 1;
                Priority::new(next_priority - 1)
            };
            Delta::Add(random_candidate(
                &mut rng,
                ctx.system(),
                priority,
                cross_pairs,
            ))
        } else {
            let id = FlowId::new(rng.below(len as u64) as u32);
            freed_priorities.push(ctx.system().flows().flow(id).priority());
            Delta::Remove(id)
        };
        ctx.apply(delta, routing).expect("delta applies cleanly");
        assert_matches_scratch(&mut ctx, label, step);
    }

    while ctx.len() > min_flows {
        let id = FlowId::new(rng.below(ctx.len() as u64) as u32);
        ctx.remove_flow(id).expect("drain removal applies cleanly");
    }
    assert_matches_scratch(&mut ctx, label, steps);
}

/// A solve that trips the convergence cap poisons the whole cache (every
/// flow goes dirty), but must not poison the *context*: once the
/// offending flow is removed, every analysis reports bit-identically to a
/// from-scratch solve and to the pre-failure reports.
#[test]
fn convergence_cap_failure_recovers_to_scratch_equivalence() {
    let topology = Topology::mesh(3, 1);
    let victim = Flow::builder(NodeId::new(1), NodeId::new(2))
        .priority(Priority::new(2))
        .period(Cycles::new(10_000_000_000))
        .length_flits(32)
        .build();
    let flows = FlowSet::new(vec![victim]).expect("single victim flow is valid");
    let system =
        System::new(topology, NocConfig::default(), flows, &XyRouting).expect("3x1 mesh builds");
    let mut ctx = IncrementalContext::new(system).expect("victim-only system is analysable");
    let clean: Vec<AnalysisReport> = AnalysisKind::ALL
        .iter()
        .map(|&k| ctx.analyze(k).expect("victim-only system converges"))
        .collect();

    // A near-saturating high-priority interferer: each victim iteration
    // grows the window past another period, so the fixed point never
    // settles and the solver's convergence cap trips.
    let saturating = Flow::builder(NodeId::new(0), NodeId::new(2))
        .priority(Priority::new(1))
        .period(Cycles::new(19))
        .length_flits(16)
        .build();
    let id = ctx
        .apply(Delta::Add(saturating), &XyRouting)
        .expect("saturating flow routes")
        .expect("additions yield an id");
    let err = ctx.analyze(AnalysisKind::Xlwx);
    assert!(
        matches!(err, Err(AnalysisError::ConvergenceCap { .. })),
        "saturating fixture must trip the cap, got {err:?}"
    );

    // The conservative bound stays total where the fixed point gave up.
    let conservative = ctx.conservative_report();
    assert_eq!(
        conservative.len(),
        2,
        "conservative report covers all flows"
    );

    ctx.remove_flow(id)
        .expect("saturating flow removes cleanly");
    assert_matches_scratch(&mut ctx, "cap_recovery", 0);
    for (&kind, before) in AnalysisKind::ALL.iter().zip(&clean) {
        let after = ctx
            .analyze(kind)
            .expect("recovered context converges again");
        assert_eq!(
            &after, before,
            "post-recovery {kind:?} diverged from the pre-failure report"
        );
    }
}

#[test]
fn didactic_delta_sequences_match_from_scratch() {
    // The paper fixture pins vc(Ξ) = 3, which would veto a fourth
    // priority level; auto-sized VCs let admissions through. Didactic
    // routes come from Table I, so candidates reuse existing (src, dst)
    // pairs only.
    let (system, table) = didactic::system_with_routing(2);
    let system = system
        .with_virtual_channels(None)
        .expect("didactic VCs auto-size");
    exercise("didactic", system, &table, false, 12, 0x5EED_0001);
}

#[test]
fn mesh_4x4_delta_sequences_match_from_scratch() {
    let system = SyntheticSpec::paper(4, 4, 24, 2).generate(7).into_system();
    exercise("4x4_24", system, &XyRouting, true, 10, 0x5EED_0002);
}

#[test]
fn mesh_8x8_delta_sequences_match_from_scratch() {
    let system = SyntheticSpec::paper(8, 8, 80, 2).generate(11).into_system();
    exercise("8x8_80", system, &XyRouting, true, 8, 0x5EED_0003);
}

/// Sequences starting from an already-heterogeneous, already-bursty base:
/// resizes stack on top of generated per-router overrides, and removals
/// can evict bursty flows.
#[test]
fn bursty_hetero_delta_sequences_match_from_scratch() {
    let system = SyntheticSpec::paper(4, 4, 20, 2)
        .with_burst_range(0, 2)
        .with_buffer_depth_range(2, 8)
        .generate(13)
        .into_system();
    assert!(system.has_heterogeneous_buffers());
    exercise("4x4_20_hetero", system, &XyRouting, true, 10, 0x5EED_0004);
}
