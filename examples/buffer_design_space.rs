//! Buffer sizing as a design-space exploration: the paper's
//! counter-intuitive trade-off, applied.
//!
//! ```text
//! cargo run --release --example buffer_design_space
//! ```
//!
//! Large router buffers improve average-case throughput, but under the
//! buffer-aware IBN analysis they *worsen* the provable worst case: each
//! downstream preemption can convert a full contention domain of buffered
//! flits into extra interference. This example sweeps `buf(Ξ)` for the
//! didactic system and for a synthetic 4×4 workload, printing the bound on
//! the victim flow and the whole-set schedulability at every depth — the
//! data a NoC architect needs to size buffers for predictability.

use noc_mpb::prelude::*;
use noc_mpb::workload::synthetic::SyntheticSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: the didactic system's victim flow τ3.
    let flows = DidacticFlows::ids();
    println!("didactic example: IBN bound on the MPB victim τ3 vs buffer depth\n");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "buf(Ξ)", "bi(3,2)", "R_IBN(τ3)", "slack"
    );
    let depths = [1u32, 2, 4, 6, 8, 10, 15, 20, 21, 30, 50, 100];
    for &b in &depths {
        let system = didactic::system(b);
        let report = BufferAware.analyze(&system)?;
        let r = report.response_time(flows.tau3).expect("schedulable");
        let bi = u64::from(b) * 3; // buf · linkl · |cd(3,2)|
        let d = system.flow(flows.tau3).deadline();
        println!(
            "{:>8} {:>12} {:>12} {:>10}",
            b,
            bi,
            r.as_u64(),
            (d - r).as_u64()
        );
    }
    println!(
        "\nNote the saturation at buf ≥ 21: once bi(3,2) ≥ C1 the min() of\n\
         Equation 8 selects the XLWX charge and extra buffering stops hurting\n\
         the bound (it already hurts nothing else — zero-load latency is\n\
         buffer-independent in this regime).\n"
    );

    // Part 2: whole-set schedulability on a loaded 4x4 platform.
    println!("synthetic 4x4, 160 flows x 40 sets: % schedulable vs buffer depth\n");
    println!("{:>8} {:>14}", "buf(Ξ)", "% schedulable");
    let spec = SyntheticSpec::paper(4, 4, 160, 2);
    let systems: Vec<System> = (0..40)
        .map(|s| spec.generate(0xD51 + s).into_system())
        .collect();
    for &b in &[2u32, 4, 8, 16, 32, 64, 100] {
        let ok = systems
            .iter()
            .filter(|sys| {
                BufferAware
                    .analyze(&sys.with_buffer_depth(b))
                    .map(|r| r.is_schedulable())
                    .unwrap_or(false)
            })
            .count();
        println!(
            "{:>8} {:>13.0}%",
            b,
            100.0 * ok as f64 / systems.len() as f64
        );
    }
    println!(
        "\nSmaller buffers ⇒ more guaranteed-schedulable systems: time\n\
         predictability argues for exactly the cheap 2-flit buffers that\n\
         wormhole switching was designed around."
    );
    Ok(())
}
