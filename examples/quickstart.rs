//! Quickstart: build a system, bound it with every analysis, check it
//! against the cycle-accurate simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use noc_mpb::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4x4 mesh NoC; routers have one virtual channel per priority level,
    // each with a 2-flit FIFO (the paper's recommended small buffers).
    let topology = Topology::mesh(4, 4);
    let config = NocConfig::builder()
        .buffer_depth(2)
        .link_latency(Cycles::ONE)
        .routing_latency(Cycles::ZERO)
        .build();

    // Three real-time flows. Priority 1 is the highest; deadlines default
    // to the periods.
    let flows = FlowSet::new(vec![
        Flow::builder(NodeId::new(12), NodeId::new(15))
            .name("control-loop")
            .priority(Priority::new(1))
            .period(Cycles::new(1_000))
            .length_flits(16)
            .build(),
        Flow::builder(NodeId::new(0), NodeId::new(15))
            .name("sensor-stream")
            .priority(Priority::new(2))
            .period(Cycles::new(4_000))
            .length_flits(256)
            .build(),
        Flow::builder(NodeId::new(1), NodeId::new(11))
            .name("camera-frame")
            .priority(Priority::new(3))
            .period(Cycles::new(20_000))
            .length_flits(1_024)
            .build(),
    ])?;
    let system = System::new(topology, config, flows, &XyRouting)?;

    println!("Worst-case response-time bounds (cycles):\n");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8}",
        "flow", "C", "SB", "XLWX", "IBN"
    );
    for (id, flow) in system.flows().iter() {
        let c = system.zero_load_latency(id);
        let bound = |a: &dyn Analysis| -> String {
            a.analyze(&system)
                .ok()
                .and_then(|r| r.response_time(id))
                .map_or("miss".into(), |r| r.as_u64().to_string())
        };
        println!(
            "{:<16} {:>8} {:>8} {:>8} {:>8}",
            flow.name().unwrap_or("flow"),
            c.as_u64(),
            bound(&ShiBurns),
            bound(&Xlwx),
            bound(&BufferAware),
        );
    }

    // The buffer-aware analysis is safe: simulated latencies stay below it.
    let report = BufferAware.analyze(&system)?;
    let mut sim = Simulator::new(&system, ReleasePlan::synchronous(&system));
    sim.run_until(Cycles::new(100_000));
    println!("\nSimulation cross-check (100k cycles, synchronous releases):\n");
    for (id, flow) in system.flows().iter() {
        let stats = sim.flow_stats(id);
        println!(
            "{:<16} observed worst {:>6}  <=  IBN bound {:>6}   ({} packets)",
            flow.name().unwrap_or("flow"),
            stats.worst_latency().map_or(0, |c| c.as_u64()),
            report.response_time(id).map_or(0, |c| c.as_u64()),
            stats.delivered(),
        );
        assert!(stats.worst_latency() <= report.response_time(id));
    }
    println!("\nAll observations within the IBN bounds.");
    Ok(())
}
