//! Where does a latency bound come from? Auditing the analyses term by
//! term with the explanation API.
//!
//! ```text
//! cargo run --release --example explain_bound
//! ```
//!
//! Prints, for the didactic MPB victim τ3, the full interference breakdown
//! under each analysis — the number of hits charged per interferer, the
//! per-hit charge, and how much of it is the multi-point progressive
//! blocking term the paper's Equations 6–8 tighten.

use noc_mpb::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flows = DidacticFlows::ids();
    for buffer in [2u32, 10] {
        let system = didactic::system(buffer);
        println!("=== didactic system, buf(Ξ) = {buffer} ===\n");
        for analysis in all_analyses() {
            let explanations = analysis.explain(&system)?;
            let ex = &explanations[flows.tau3.index()];
            println!("[{}] τ3 breakdown:", analysis.name());
            print!("{ex}");
            if let Some(r) = ex.verdict.response_time() {
                assert_eq!(ex.reconstructed_bound(), r);
                println!("  = C + Σ hits·charge = {r}\n");
            } else {
                println!();
            }
        }
    }

    println!(
        "Reading the IBN rows: the MPB part of τ2's charge is capped by the\n\
         buffered interference bi(3,2) = buf·linkl·|cd| per downstream hit —\n\
         6 cycles per hit at buf=2, 30 at buf=10 — while XLWX charges the\n\
         full C1 = 62 per hit regardless of how few flits fit in the buffers."
    );
    Ok(())
}
