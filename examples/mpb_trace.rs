//! Figure 2, live: watch multi-point progressive blocking happen.
//!
//! ```text
//! cargo run --release --example mpb_trace
//! ```
//!
//! Runs the didactic system (10-flit buffers) with τ1 released mid-way
//! through τ2's packet and renders, cycle by cycle:
//!
//! * who occupies the first link of the τ2/τ3 contention domain,
//! * who occupies the link where τ1 preempts τ2 (downstream of it),
//! * how many τ2 flits are buffered inside the contention domain —
//!   the "stacked dots" of the paper's Figure 2.
//!
//! The MPB effect is visible as the contention-domain link switching
//! 2→3→2→3: every time τ1 stalls τ2 downstream, τ3 slips forward, and the
//! *buffered* τ2 flits block it again when they drain.

use noc_mpb::prelude::*;
use noc_mpb::sim::TraceEvent;

fn main() {
    let flows = DidacticFlows::ids();
    let system = didactic::system(10);

    // Links shared by τ2 and τ3 (the contention domain cd(3,2)) and by
    // τ1 and τ2 (where the downstream preemption happens).
    let shared = |a: FlowId, b: FlowId| -> Vec<LinkId> {
        system
            .route(a)
            .links()
            .iter()
            .copied()
            .filter(|l| system.route(b).contains(*l))
            .collect()
    };
    let cd_32 = shared(flows.tau3, flows.tau2);
    let cd_12 = shared(flows.tau1, flows.tau2);
    let watch_cd = cd_32[0]; // first link of cd(3,2)
    let watch_down = cd_12[0]; // first link τ1 and τ2 share

    let plan = ReleasePlan::synchronous(&system)
        .with_offset(flows.tau1, Cycles::new(40))
        .with_packet_limit(flows.tau1, 2)
        .with_packet_limit(flows.tau2, 1)
        .with_packet_limit(flows.tau3, 1);
    let mut sim = Simulator::new(&system, plan);
    sim.enable_trace();

    const HORIZON: usize = 560;
    let tau2_prio = system.flow(flows.tau2).priority();
    let mut buffered = Vec::with_capacity(HORIZON);
    for _ in 0..HORIZON {
        sim.step();
        buffered.push(
            cd_32
                .iter()
                .map(|&l| sim.vc_occupancy(l, tau2_prio))
                .sum::<usize>(),
        );
    }

    // Per-cycle occupancy of the two watched links, from the trace.
    let mut on_cd = vec!['.'; HORIZON];
    let mut on_down = vec!['.'; HORIZON];
    let glyph = |f: FlowId| match f.index() {
        0 => '1',
        1 => '2',
        _ => '3',
    };
    for event in sim.trace() {
        if let TraceEvent::FlitLaunched { cycle, link, flit } = *event {
            let c = cycle.as_u64() as usize;
            if c < HORIZON {
                if link == watch_cd {
                    on_cd[c] = glyph(flit.flow());
                } else if link == watch_down {
                    on_down[c] = glyph(flit.flow());
                }
            }
        }
    }

    println!("MPB in action (didactic system, buf = 10, τ1 released at t = 40):\n");
    println!("  legend: digits = flow using the link that cycle, '.' = idle\n");
    const WIDTH: usize = 80;
    for start in (0..HORIZON).step_by(WIDTH) {
        let end = (start + WIDTH).min(HORIZON);
        let line = |chars: &[char]| chars[start..end].iter().collect::<String>();
        println!("cycles {start:>4}..{:<4}", end - 1);
        println!("  cd(3,2) first link : {}", line(&on_cd));
        println!("  τ1⋂τ2 (downstream) : {}", line(&on_down));
        let occ: String = buffered[start..end]
            .iter()
            .map(|&o| match o {
                0 => '.',
                1..=9 => char::from_digit(o as u32, 10).unwrap(),
                10..=29 => 'x',
                _ => 'X',
            })
            .collect();
        println!("  τ2 flits buffered  : {}   (x = 10..29, X = 30)", occ);
        println!();
    }

    for (id, name) in [(flows.tau1, "τ1"), (flows.tau2, "τ2"), (flows.tau3, "τ3")] {
        if let Some(worst) = sim.flow_stats(id).worst_latency() {
            println!(
                "{name}: worst latency {worst} (zero-load C = {})",
                system.zero_load_latency(id)
            );
        }
    }
    let max_buffered = buffered.iter().max().copied().unwrap_or(0);
    println!(
        "\npeak τ2 buffering inside cd(3,2): {max_buffered} flits \
         (capacity = 3 links x 10 = 30)"
    );
    println!(
        "every τ1 hit converts up to that much buffered τ2 data into *extra*\n\
         interference on τ3 — the buffered interference bi(i,j) of Equation 6."
    );
}
