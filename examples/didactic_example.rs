//! The paper's didactic example (§V): regenerates Tables I and II.
//!
//! ```text
//! cargo run --release --example didactic_example
//! ```
//!
//! Three flows on a six-router network, crafted so that τ1 indirectly
//! interferes with τ3 *downstream* of τ3's contention with τ2 — the
//! multi-point progressive blocking (MPB) scenario. Expected output:
//!
//! * SB is optimistic for τ3 (bound 336, but 350 is observable with 10-flit
//!   buffers);
//! * XLWX is safe but pessimistic (460);
//! * IBN tightens the bound as buffers shrink: 396 (b=10), 348 (b=2).

use noc_mpb::experiments::table2;

fn main() {
    println!("TABLE I: Flow parameters (didactic example, Figure 3)\n");
    println!("{}", table2::render_table_i());

    // Exhaustive 1-cycle offset sweep, as in the paper's methodology.
    let results = table2::run(1);
    println!("TABLE II: Analysis bounds and worst observed latencies\n");
    println!("{}", table2::render_table_ii(&results));

    let tau3 = results.rows[2];
    println!("Headline observations for τ3:");
    println!(
        "  – simulated worst case with b=10 ({}) EXCEEDS the SB bound ({}) → SB unsafe under MPB",
        tau3.sim_b10, tau3.r_sb
    );
    println!(
        "  – IBN tightens XLWX ({}) to {} with b=10 and {} with b=2",
        tau3.r_xlwx, tau3.r_ibn_b10, tau3.r_ibn_b2
    );
    println!("  – smaller buffers ⇒ tighter guarantees (the paper's counter-intuitive result)");
}
