//! Platform sizing for the autonomous-vehicle benchmark: how big a NoC do
//! you need, and how much silicon does a tighter analysis save?
//!
//! ```text
//! cargo run --release --example av_platform_sizing
//! ```
//!
//! For each mesh size, maps the AV application onto 40 random placements
//! and reports the fraction a designer could sign off under the safe
//! analyses (XLWX vs buffer-aware IBN). The tighter IBN bound certifies
//! smaller platforms — real silicon savings from analysis alone.

use noc_mpb::prelude::*;
use noc_mpb::workload::av::av_benchmark;
use noc_mpb::workload::mapping::random_mapping;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = av_benchmark();
    println!(
        "AV benchmark: {} tasks, {} messages\n",
        app.task_count(),
        app.message_count()
    );
    println!(
        "{:>9} {:>7} {:>12} {:>12} {:>12}",
        "topology", "nodes", "XLWX ok", "IBN(b=2) ok", "IBN(b=100) ok"
    );

    const MAPPINGS: u64 = 40;
    let mut first_certified: [Option<String>; 2] = [None, None];
    for (w, h) in [
        (2u16, 2u16),
        (3, 2),
        (3, 3),
        (4, 3),
        (4, 4),
        (5, 4),
        (5, 5),
        (6, 6),
        (8, 8),
    ] {
        let config = NocConfig::builder().buffer_depth(2).build();
        let mut ok = [0u32; 3];
        for seed in 0..MAPPINGS {
            let mapped = random_mapping(&app, w, h, config, 0xA0 + seed)?;
            let system = mapped.system();
            let verdict = |a: &dyn Analysis, sys: &System| {
                a.analyze(sys).map(|r| r.is_schedulable()).unwrap_or(false)
            };
            ok[0] += u32::from(verdict(&Xlwx, system));
            ok[1] += u32::from(verdict(&BufferAware, system));
            ok[2] += u32::from(verdict(&BufferAware, &system.with_buffer_depth(100)));
        }
        let pct = |c: u32| 100.0 * f64::from(c) / MAPPINGS as f64;
        println!(
            "{:>9} {:>7} {:>11.0}% {:>11.0}% {:>11.0}%",
            format!("{w}x{h}"),
            w as u32 * h as u32,
            pct(ok[0]),
            pct(ok[1]),
            pct(ok[2])
        );
        // "Certified" = at least half of random mappings schedulable: a
        // platform a designer can realistically target.
        if first_certified[0].is_none() && pct(ok[0]) >= 50.0 {
            first_certified[0] = Some(format!("{w}x{h}"));
        }
        if first_certified[1].is_none() && pct(ok[1]) >= 50.0 {
            first_certified[1] = Some(format!("{w}x{h}"));
        }
    }
    println!();
    match (&first_certified[1], &first_certified[0]) {
        (Some(ibn), Some(xlwx)) if ibn != xlwx => println!(
            "IBN certifies the {ibn} platform; XLWX needs {xlwx}. The tighter\n\
             analysis ships the same application on a smaller NoC."
        ),
        (Some(ibn), Some(_)) => println!(
            "Both analyses certify {ibn} at the 50% threshold here, but IBN\n\
             accepts more mappings on every platform — more placement freedom."
        ),
        (Some(ibn), None) => {
            println!("Only IBN certifies any platform in this range (first: {ibn}).")
        }
        _ => println!("No platform in this range reaches the 50% threshold."),
    }
    Ok(())
}
